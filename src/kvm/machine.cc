#include "kvm/machine.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "base/endian.h"
#include "base/faultinject.h"
#include "base/logging.h"
#include "base/metrics.h"
#include "base/strings.h"
#include "base/trace.h"

namespace kvm {

namespace {

constexpr uint32_t kGuardPage = 0x1000;  // [0, kGuardPage) never mapped
constexpr uint32_t kPageAlign = 0x1000;

uint32_t AlignUp(uint32_t value, uint32_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Machine::Machine(const MachineConfig& config) : config_(config) {
  rand_state_ = config.rand_seed;
}

Machine::~Machine() { StopCpus(); }

ks::Result<std::unique_ptr<Machine>> Machine::Boot(
    std::vector<kelf::ObjectFile> kernel_objects,
    const MachineConfig& config) {
  ks::TraceSpan span("kvm.boot");
  if (config.kernel_base < kGuardPage) {
    return ks::InvalidArgument("kernel base inside the guard page");
  }
  kelf::Linker linker;
  for (kelf::ObjectFile& obj : kernel_objects) {
    linker.AddObject(std::move(obj));
  }
  ks::Result<kelf::LinkedImage> image = linker.Link(config.kernel_base);
  if (!image.ok()) {
    return ks::Status(image.status()).WithContext("booting kernel");
  }

  auto machine = std::unique_ptr<Machine>(new Machine(config));
  machine->memory_.assign(config.memory_bytes, 0);
  if (image->end() + (1u << 20) > config.memory_bytes) {
    return ks::ResourceExhausted("kernel image does not fit in memory");
  }
  std::copy(image->bytes.begin(), image->bytes.end(),
            machine->memory_.begin() + config.kernel_base);
  machine->kernel_end_ = image->end();

  machine->kallsyms_ = std::move(image->symbols);
  for (size_t i = 0; i < machine->kallsyms_.size(); ++i) {
    machine->symbol_index_.emplace(machine->kallsyms_[i].name, i);
  }
  machine->RegisterHowtoRegions(image->placements, /*module_id=*/-1);

  // Memory map after the kernel: module arena, heap, then stacks from the
  // top of memory growing down.
  uint32_t cursor = AlignUp(machine->kernel_end_, kPageAlign);
  uint32_t remaining = config.memory_bytes - cursor;
  uint32_t arena_size = remaining / 4;
  uint32_t heap_size = remaining / 4;
  machine->arena_base_ = cursor;
  machine->arena_cursor_ = cursor;
  machine->arena_limit_ = cursor + arena_size;
  machine->heap_base_ = machine->arena_limit_;
  machine->heap_limit_ = machine->heap_base_ + heap_size;
  machine->stack_limit_ = machine->heap_limit_;
  machine->stack_cursor_ = config.memory_bytes;
  return machine;
}

// ---------------------------------------------------------------------------
// Memory

bool Machine::InBounds(uint32_t addr, uint32_t size) const {
  return addr >= kGuardPage && addr + size >= addr &&
         addr + size <= memory_.size();
}

ks::Result<uint32_t> Machine::ReadWordLocked(uint32_t addr) const {
  if (!InBounds(addr, 4)) {
    return ks::InvalidArgument(
        ks::StrPrintf("bad read at %s", ks::Hex32(addr).c_str()));
  }
  return ks::ReadLe32(memory_.data() + addr);
}

ks::Status Machine::WriteWordLocked(uint32_t addr, uint32_t value) {
  if (!InBounds(addr, 4)) {
    return ks::InvalidArgument(
        ks::StrPrintf("bad write at %s", ks::Hex32(addr).c_str()));
  }
  ks::WriteLe32(memory_.data() + addr, value);
  return ks::OkStatus();
}

ks::Result<uint32_t> Machine::ReadWord(uint32_t addr) const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  return ReadWordLocked(addr);
}

ks::Result<uint8_t> Machine::ReadByte(uint32_t addr) const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  if (!InBounds(addr, 1)) {
    return ks::InvalidArgument(
        ks::StrPrintf("bad read at %s", ks::Hex32(addr).c_str()));
  }
  return memory_[addr];
}

ks::Status Machine::WriteWord(uint32_t addr, uint32_t value) {
  KS_FAULT_POINT("kvm.write_word");
  std::unique_lock<std::recursive_mutex> lock(mu_);
  return WriteWordLocked(addr, value);
}

ks::Status Machine::WriteByte(uint32_t addr, uint8_t value) {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  if (!InBounds(addr, 1)) {
    return ks::InvalidArgument(
        ks::StrPrintf("bad write at %s", ks::Hex32(addr).c_str()));
  }
  memory_[addr] = value;
  return ks::OkStatus();
}

ks::Result<std::vector<uint8_t>> Machine::ReadBytes(uint32_t addr,
                                                    uint32_t size) const {
  KS_FAULT_POINT("kvm.read_bytes");
  std::unique_lock<std::recursive_mutex> lock(mu_);
  if (!InBounds(addr, size)) {
    return ks::InvalidArgument(ks::StrPrintf(
        "bad read of %u bytes at %s", size, ks::Hex32(addr).c_str()));
  }
  return std::vector<uint8_t>(memory_.begin() + addr,
                              memory_.begin() + addr + size);
}

ks::Status Machine::WriteBytes(uint32_t addr,
                               const std::vector<uint8_t>& bytes) {
  KS_FAULT_POINT("kvm.write_bytes");
  std::unique_lock<std::recursive_mutex> lock(mu_);
  if (!InBounds(addr, static_cast<uint32_t>(bytes.size()))) {
    return ks::InvalidArgument(ks::StrPrintf(
        "bad write of %zu bytes at %s", bytes.size(),
        ks::Hex32(addr).c_str()));
  }
  std::copy(bytes.begin(), bytes.end(), memory_.begin() + addr);
  return ks::OkStatus();
}

// ---------------------------------------------------------------------------
// Symbols

std::vector<kelf::LinkedSymbol> Machine::Kallsyms() const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  return kallsyms_;
}

std::vector<kelf::LinkedSymbol> Machine::SymbolsNamed(
    const std::string& name) const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  std::vector<kelf::LinkedSymbol> out;
  auto [begin, end] = symbol_index_.equal_range(name);
  for (auto it = begin; it != end; ++it) {
    out.push_back(kallsyms_[it->second]);
  }
  return out;
}

ks::Result<uint32_t> Machine::GlobalSymbol(const std::string& name) const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  auto [begin, end] = symbol_index_.equal_range(name);
  for (auto it = begin; it != end; ++it) {
    if (kallsyms_[it->second].binding == kelf::SymbolBinding::kGlobal) {
      return kallsyms_[it->second].address;
    }
  }
  return ks::NotFound(
      ks::StrPrintf("no exported symbol '%s'", name.c_str()));
}

// ---------------------------------------------------------------------------
// Modules

ks::Result<uint32_t> Machine::ArenaAlloc(uint32_t size, uint32_t align) {
  size = AlignUp(size, kPageAlign);
  for (ArenaBlock& block : arena_blocks_) {
    if (block.free && block.size >= size) {
      block.free = false;
      return block.base;
    }
  }
  uint32_t base = AlignUp(arena_cursor_, align);
  if (base + size > arena_limit_) {
    return ks::ResourceExhausted("module arena exhausted");
  }
  arena_cursor_ = base + size;
  arena_blocks_.push_back(ArenaBlock{base, size, false});
  return base;
}

void Machine::ArenaFree(uint32_t base) {
  for (ArenaBlock& block : arena_blocks_) {
    if (block.base == base) {
      block.free = true;
      // Poison so stale code faults loudly instead of executing.
      std::fill(memory_.begin() + base, memory_.begin() + base + block.size,
                0xee);
      return;
    }
  }
}

ks::Result<ModuleHandle> Machine::LoadModule(
    const std::vector<kelf::ObjectFile>& objects, const std::string& name,
    SymbolResolver extra_resolver, const std::string& group) {
  KS_FAULT_POINT("kvm.load_module");
  std::unique_lock<std::recursive_mutex> lock(mu_);

  // Reject modules that redefine exported globals.
  for (const kelf::ObjectFile& obj : objects) {
    for (const kelf::Symbol& sym : obj.symbols()) {
      if (sym.defined() && sym.binding == kelf::SymbolBinding::kGlobal) {
        auto [begin, end] = symbol_index_.equal_range(sym.name);
        for (auto it = begin; it != end; ++it) {
          if (kallsyms_[it->second].binding == kelf::SymbolBinding::kGlobal) {
            return ks::AlreadyExists(ks::StrPrintf(
                "module %s redefines exported symbol '%s'", name.c_str(),
                sym.name.c_str()));
          }
        }
      }
    }
  }

  kelf::Linker linker;
  for (const kelf::ObjectFile& obj : objects) {
    linker.AddObject(obj);
  }
  // Record every external resolution so the module's import bindings can
  // be inspected after the fact (ModuleImports). The link runs twice (once
  // to measure, once to place); imports are base-independent, so the map
  // simply deduplicates.
  std::map<std::string, uint32_t> imports;
  linker.set_external_resolver(
      [this, &extra_resolver, &imports](
          const std::string& symbol) -> std::optional<uint32_t> {
        std::optional<uint32_t> value;
        ks::Result<uint32_t> addr = GlobalSymbol(symbol);
        if (addr.ok()) {
          value = *addr;
        } else if (extra_resolver != nullptr) {
          value = extra_resolver(symbol);
        }
        if (value.has_value()) {
          imports[symbol] = *value;
        }
        return value;
      });

  // First link to measure, then place.
  ks::Result<kelf::LinkedImage> sized = linker.Link(config_.kernel_base);
  if (!sized.ok()) {
    return ks::Status(sized.status())
        .WithContext(ks::StrPrintf("loading module %s", name.c_str()));
  }
  uint32_t size = sized->end() - sized->base;
  KS_ASSIGN_OR_RETURN(uint32_t base, ArenaAlloc(size, kPageAlign));
  ks::Result<kelf::LinkedImage> image = linker.Link(base);
  if (!image.ok()) {
    ArenaFree(base);
    return ks::Status(image.status())
        .WithContext(ks::StrPrintf("loading module %s", name.c_str()));
  }
  std::copy(image->bytes.begin(), image->bytes.end(),
            memory_.begin() + base);

  Module module;
  module.name = name;
  module.group = group;
  module.base = base;
  module.size = static_cast<uint32_t>(image->bytes.size());
  module.loaded = true;
  module.placements = std::move(image->placements);
  module.imports.assign(imports.begin(), imports.end());
  module.first_symbol = kallsyms_.size();
  module.symbol_count = image->symbols.size();
  for (kelf::LinkedSymbol& sym : image->symbols) {
    symbol_index_.emplace(sym.name, kallsyms_.size());
    kallsyms_.push_back(std::move(sym));
  }
  modules_.push_back(std::move(module));
  ks::Metrics().GetGauge("kvm.module_arena_bytes").Set(
      ModuleArenaBytesInUse());
  ModuleHandle handle;
  handle.id = static_cast<int>(modules_.size()) - 1;
  RegisterHowtoRegions(modules_.back().placements, handle.id);
  return handle;
}

ks::Status Machine::UnloadModule(ModuleHandle handle) {
  KS_FAULT_POINT("kvm.unload_module");
  std::unique_lock<std::recursive_mutex> lock(mu_);
  if (handle.id < 0 || handle.id >= static_cast<int>(modules_.size())) {
    return ks::InvalidArgument("bad module handle");
  }
  Module& module = modules_[static_cast<size_t>(handle.id)];
  if (!module.loaded) {
    return ks::FailedPrecondition(
        ks::StrPrintf("module %s already unloaded", module.name.c_str()));
  }
  module.loaded = false;
  ArenaFree(module.base);
  UnregisterHowtoRegions(handle.id);

  // Drop the module's kallsyms range and rebuild indexes.
  kallsyms_.erase(
      kallsyms_.begin() + static_cast<long>(module.first_symbol),
      kallsyms_.begin() +
          static_cast<long>(module.first_symbol + module.symbol_count));
  for (Module& other : modules_) {
    if (other.loaded && other.first_symbol > module.first_symbol) {
      other.first_symbol -= module.symbol_count;
    }
  }
  symbol_index_.clear();
  for (size_t i = 0; i < kallsyms_.size(); ++i) {
    symbol_index_.emplace(kallsyms_[i].name, i);
  }
  module.symbol_count = 0;
  ks::Metrics().GetGauge("kvm.module_arena_bytes").Set(
      ModuleArenaBytesInUse());
  return ks::OkStatus();
}

ks::Result<ModuleInfo> Machine::GetModuleInfo(ModuleHandle handle) const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  if (handle.id < 0 || handle.id >= static_cast<int>(modules_.size())) {
    return ks::InvalidArgument("bad module handle");
  }
  const Module& module = modules_[static_cast<size_t>(handle.id)];
  ModuleInfo info;
  info.name = module.name;
  info.base = module.base;
  info.size = module.size;
  info.loaded = module.loaded;
  return info;
}

uint32_t Machine::ModuleArenaBytesForGroup(const std::string& group) const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  uint32_t bytes = 0;
  for (const Module& module : modules_) {
    if (module.loaded && module.group == group) {
      bytes += module.size;
    }
  }
  return bytes;
}

ks::Result<int> Machine::UnloadGroup(const std::string& group) {
  KS_FAULT_POINT("kvm.unload_group");
  std::unique_lock<std::recursive_mutex> lock(mu_);
  if (group.empty()) {
    return ks::InvalidArgument("cannot unload the ungrouped modules");
  }
  int unloaded = 0;
  // Newest first: later modules of a group may resolve against earlier
  // ones, and unloading in reverse keeps kallsyms consistent throughout.
  for (int id = static_cast<int>(modules_.size()) - 1; id >= 0; --id) {
    if (modules_[static_cast<size_t>(id)].loaded &&
        modules_[static_cast<size_t>(id)].group == group) {
      ModuleHandle handle;
      handle.id = id;
      KS_RETURN_IF_ERROR(UnloadModule(handle));
      ++unloaded;
    }
  }
  return unloaded;
}

ks::Result<std::vector<std::pair<std::string, uint32_t>>>
Machine::ModuleImports(ModuleHandle handle) const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  if (handle.id < 0 || handle.id >= static_cast<int>(modules_.size())) {
    return ks::InvalidArgument("bad module handle");
  }
  return modules_[static_cast<size_t>(handle.id)].imports;
}

ks::Result<ModuleHandle> Machine::LoadBlob(const std::string& name,
                                           uint32_t size,
                                           const std::string& group) {
  KS_FAULT_POINT("kvm.load_blob");
  std::unique_lock<std::recursive_mutex> lock(mu_);
  KS_ASSIGN_OR_RETURN(uint32_t base, ArenaAlloc(size, kPageAlign));
  Module module;
  module.name = name;
  module.group = group;
  module.base = base;
  module.size = size;
  module.loaded = true;
  module.first_symbol = kallsyms_.size();
  module.symbol_count = 0;
  modules_.push_back(std::move(module));
  ks::Metrics().GetGauge("kvm.module_arena_bytes").Set(
      ModuleArenaBytesInUse());
  ModuleHandle handle;
  handle.id = static_cast<int>(modules_.size()) - 1;
  return handle;
}

ks::Result<std::vector<kelf::PlacedSection>> Machine::ModulePlacements(
    ModuleHandle handle) const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  if (handle.id < 0 || handle.id >= static_cast<int>(modules_.size())) {
    return ks::InvalidArgument("bad module handle");
  }
  const Module& module = modules_[static_cast<size_t>(handle.id)];
  if (!module.loaded) {
    return ks::FailedPrecondition("module is unloaded");
  }
  return module.placements;
}

// ---------------------------------------------------------------------------
// Howto regions

void Machine::RegisterHowtoRegions(
    const std::vector<kelf::PlacedSection>& placements, int module_id) {
  for (const kelf::PlacedSection& placement : placements) {
    if (placement.howto == kelf::Howto::kNone || placement.size == 0) {
      continue;
    }
    howto_regions_.push_back(HowtoRegion{
        .howto = placement.howto,
        .base = placement.address,
        .size = placement.size,
        .name = placement.name,
        .module_id = module_id,
    });
  }
}

void Machine::UnregisterHowtoRegions(int module_id) {
  howto_regions_.erase(
      std::remove_if(howto_regions_.begin(), howto_regions_.end(),
                     [module_id](const HowtoRegion& region) {
                       return region.module_id == module_id;
                     }),
      howto_regions_.end());
}

std::optional<uint32_t> Machine::ExtableFixupFor(uint32_t pc) const {
  for (const HowtoRegion& region : howto_regions_) {
    if (region.howto != kelf::Howto::kExtable) {
      continue;
    }
    // Entries are (faulting insn addr, fixup addr) word pairs, read from
    // guest memory so patched table bytes take effect immediately.
    for (uint32_t off = 0; off + kelf::kHowtoEntrySize <= region.size;
         off += kelf::kHowtoEntrySize) {
      if (!InBounds(region.base + off, kelf::kHowtoEntrySize)) {
        break;
      }
      uint32_t insn = ks::ReadLe32(memory_.data() + region.base + off);
      if (insn == pc) {
        return ks::ReadLe32(memory_.data() + region.base + off + 4);
      }
    }
  }
  return std::nullopt;
}

std::optional<std::pair<std::string, uint32_t>> Machine::BugEntryFor(
    uint32_t pc) const {
  for (const HowtoRegion& region : howto_regions_) {
    if (region.howto != kelf::Howto::kBug) {
      continue;
    }
    // Entries are (trap addr, source line) word pairs.
    for (uint32_t off = 0; off + kelf::kHowtoEntrySize <= region.size;
         off += kelf::kHowtoEntrySize) {
      if (!InBounds(region.base + off, kelf::kHowtoEntrySize)) {
        break;
      }
      uint32_t trap = ks::ReadLe32(memory_.data() + region.base + off);
      if (trap == pc) {
        return std::make_pair(
            region.name, ks::ReadLe32(memory_.data() + region.base + off + 4));
      }
    }
  }
  return std::nullopt;
}

std::vector<HowtoRegion> Machine::HowtoRegions() const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  return howto_regions_;
}

uint64_t Machine::ExtableFixups() const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  return extable_fixups_;
}

ks::Result<uint32_t> Machine::CallFunction(uint32_t entry, uint32_t arg,
                                           uint64_t max_ticks) {
  KS_FAULT_POINT("kvm.call_function");
  std::unique_lock<std::recursive_mutex> lock(mu_);
  if (hook_stack_top_ == 0) {
    uint32_t bytes = AlignUp(config_.default_stack_bytes, 16);
    if (stack_cursor_ < stack_limit_ + bytes) {
      return ks::ResourceExhausted("out of stack space for hook calls");
    }
    hook_stack_top_ = stack_cursor_;
    stack_cursor_ -= bytes;
  }
  Thread thread;
  thread.tid = 0;  // synthetic; not in threads_, invisible to the scheduler
  thread.stack_top = hook_stack_top_;
  thread.stack_base = hook_stack_top_ - config_.default_stack_bytes;
  thread.pc = entry;
  uint32_t sp = hook_stack_top_;
  sp -= 4;
  ks::WriteLe32(memory_.data() + sp, arg);
  sp -= 4;
  ks::WriteLe32(memory_.data() + sp, kThreadExitMagic);
  thread.regs[7] = sp;
  thread.regs[6] = sp;

  uint64_t spent = 0;
  while (thread.state == ThreadState::kRunnable && spent < max_ticks) {
    spent += ExecThread(thread, config_.slice_instructions);
  }
  switch (thread.state) {
    case ThreadState::kDone:
      return thread.regs[0];
    case ThreadState::kFaulted:
      return ks::Aborted(
          ks::StrPrintf("hook call faulted: %s", thread.fault.c_str()));
    case ThreadState::kSleeping:
    case ThreadState::kLockWait:
      return ks::FailedPrecondition(
          "hook call blocked (hooks must not sleep or take the kernel lock)");
    case ThreadState::kRunnable:
      return ks::Aborted("hook call exceeded its tick budget");
  }
  return ks::Internal("unreachable hook state");
}

uint32_t Machine::ModuleArenaBytesInUse() const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  uint32_t total = 0;
  for (const ArenaBlock& block : arena_blocks_) {
    if (!block.free) {
      total += block.size;
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Heap

ks::Result<uint32_t> Machine::HeapAlloc(uint32_t size) {
  if (size == 0) {
    size = 4;
  }
  size = AlignUp(size, 16);
  for (ArenaBlock& block : heap_blocks_) {
    if (block.free && block.size >= size) {
      block.free = false;
      std::fill(memory_.begin() + block.base,
                memory_.begin() + block.base + block.size, 0);
      return block.base;
    }
  }
  uint32_t base = heap_blocks_.empty()
                      ? heap_base_
                      : heap_blocks_.back().base + heap_blocks_.back().size;
  if (base + size > heap_limit_) {
    return ks::ResourceExhausted("kernel heap exhausted");
  }
  heap_blocks_.push_back(ArenaBlock{base, size, false});
  return base;
}

ks::Status Machine::HeapFree(uint32_t addr) {
  for (ArenaBlock& block : heap_blocks_) {
    if (block.base == addr && !block.free) {
      block.free = true;
      return ks::OkStatus();
    }
  }
  return ks::InvalidArgument(
      ks::StrPrintf("bad kfree of %s", ks::Hex32(addr).c_str()));
}

ks::Result<uint32_t> Machine::HostKmalloc(uint32_t size) {
  KS_FAULT_POINT("kvm.host_kmalloc");
  std::unique_lock<std::recursive_mutex> lock(mu_);
  return HeapAlloc(size);
}

ks::Status Machine::HostKfree(uint32_t addr) {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  return HeapFree(addr);
}

ks::Result<uint32_t> Machine::HostShadowGet(uint32_t obj, uint32_t key) const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  auto it = shadows_.find({obj, key});
  if (it == shadows_.end()) {
    return ks::NotFound("no shadow for object");
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Threads and scheduling

ks::Result<int> Machine::Spawn(uint32_t entry, uint32_t arg,
                               uint32_t stack_bytes) {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  if (stack_bytes == 0) {
    stack_bytes = config_.default_stack_bytes;
  }
  stack_bytes = AlignUp(stack_bytes, 16);
  if (stack_cursor_ < stack_limit_ + stack_bytes) {
    return ks::ResourceExhausted("out of stack space");
  }
  uint32_t top = stack_cursor_;
  stack_cursor_ -= stack_bytes;

  Thread thread;
  thread.tid = next_tid_++;
  thread.stack_base = stack_cursor_;
  thread.stack_top = top;
  thread.pc = entry;
  // The thread starts as if called with one argument: [arg][return->exit].
  uint32_t sp = top;
  sp -= 4;
  ks::WriteLe32(memory_.data() + sp, arg);
  sp -= 4;
  ks::WriteLe32(memory_.data() + sp, kThreadExitMagic);
  thread.regs[7] = sp;
  thread.regs[6] = sp;  // fp; callee prologue re-establishes it
  threads_.push_back(thread);
  return thread.tid;
}

ks::Result<int> Machine::SpawnNamed(const std::string& function_name,
                                    uint32_t arg, uint32_t stack_bytes) {
  KS_ASSIGN_OR_RETURN(uint32_t entry, GlobalSymbol(function_name));
  return Spawn(entry, arg, stack_bytes);
}

std::vector<ThreadInfo> Machine::Threads() const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  std::vector<ThreadInfo> out;
  out.reserve(threads_.size());
  for (const Thread& thread : threads_) {
    ThreadInfo info;
    info.tid = thread.tid;
    info.state = thread.state;
    info.pc = thread.pc;
    info.sp = thread.regs[7];
    info.stack_base = thread.stack_base;
    info.stack_top = thread.stack_top;
    info.fault = thread.fault;
    out.push_back(std::move(info));
  }
  return out;
}

bool Machine::HasLiveThreads() const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  for (const Thread& thread : threads_) {
    if (thread.state == ThreadState::kRunnable ||
        thread.state == ThreadState::kSleeping ||
        thread.state == ThreadState::kLockWait) {
      return true;
    }
  }
  return false;
}

uint64_t Machine::Ticks() const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  return ticks_;
}

uint64_t Machine::ContextSwitches() const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  return context_switches_;
}

void Machine::WakeSleepers() {
  for (Thread& thread : threads_) {
    if (thread.state == ThreadState::kSleeping &&
        thread.wake_tick <= ticks_) {
      thread.state = ThreadState::kRunnable;
    }
  }
}

int Machine::NextRunnable(size_t start_hint, uint64_t deadline) {
  WakeSleepers();
  size_t n = threads_.size();
  for (size_t i = 0; i < n; ++i) {
    size_t idx = (start_hint + i) % n;
    if (threads_[idx].state == ThreadState::kRunnable) {
      return static_cast<int>(idx);
    }
  }
  // Nobody runnable: fast-forward virtual time to the next wake, if any,
  // but never past the caller's deadline.
  uint64_t min_wake = UINT64_MAX;
  for (const Thread& thread : threads_) {
    if (thread.state == ThreadState::kSleeping) {
      min_wake = std::min(min_wake, thread.wake_tick);
    }
  }
  if (min_wake == UINT64_MAX) {
    return -1;
  }
  if (min_wake > deadline) {
    ticks_ = std::max(ticks_, deadline);
    return -1;
  }
  ticks_ = min_wake;
  WakeSleepers();
  for (size_t i = 0; i < n; ++i) {
    size_t idx = (start_hint + i) % n;
    if (threads_[idx].state == ThreadState::kRunnable) {
      return static_cast<int>(idx);
    }
  }
  return -1;
}

ks::Status Machine::RunLocked(uint64_t max_ticks) {
  uint64_t deadline = ticks_ + max_ticks;
  while (ticks_ < deadline && !halted_) {
    if (threads_.empty()) {
      return ks::OkStatus();
    }
    int idx = NextRunnable(sched_cursor_, deadline);
    if (idx < 0) {
      return ks::OkStatus();  // idle until the deadline
    }
    sched_cursor_ = static_cast<size_t>(idx) + 1;
    uint64_t budget =
        std::min<uint64_t>(static_cast<uint64_t>(config_.slice_instructions),
                           deadline - ticks_);
    ExecThread(threads_[static_cast<size_t>(idx)],
               static_cast<int>(budget));
  }
  return ks::OkStatus();
}

ks::Status Machine::Run(uint64_t max_ticks) {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  return RunLocked(max_ticks);
}

ks::Status Machine::RunToCompletion(uint64_t safety_cap) {
  uint64_t executed = 0;
  while (executed < safety_cap) {
    uint64_t before = Ticks();
    KS_RETURN_IF_ERROR(Run(100'000));
    uint64_t after = Ticks();
    executed += after - before;
    if (halted_) {
      return ks::Aborted("machine halted (kernel panic)");
    }
    if (!HasLiveThreads()) {
      return ks::OkStatus();
    }
    if (after == before) {
      return ks::Aborted(
          "machine stalled: live threads but no runnable/sleeping progress");
    }
  }
  return ks::Aborted("run-to-completion safety cap reached");
}

void Machine::StartCpus(int count) {
  StopCpus();
  {
    std::unique_lock<std::recursive_mutex> lock(mu_);
    cpus_should_stop_ = false;
  }
  for (int i = 0; i < count; ++i) {
    cpus_.emplace_back([this]() {
      while (true) {
        {
          std::unique_lock<std::recursive_mutex> lock(mu_);
          if (cpus_should_stop_) {
            return;
          }
          if (!threads_.empty() && !halted_) {
            int idx = NextRunnable(sched_cursor_, UINT64_MAX);
            if (idx >= 0) {
              sched_cursor_ = static_cast<size_t>(idx) + 1;
              ExecThread(threads_[static_cast<size_t>(idx)],
                         config_.slice_instructions);
            }
          }
        }
        std::this_thread::yield();
      }
    });
  }
}

void Machine::StopCpus() {
  {
    std::unique_lock<std::recursive_mutex> lock(mu_);
    cpus_should_stop_ = true;
  }
  for (std::thread& cpu : cpus_) {
    if (cpu.joinable()) {
      cpu.join();
    }
  }
  cpus_.clear();
}

int Machine::ActiveCpus() const {
  return static_cast<int>(cpus_.size());
}

ks::Status Machine::Advance(uint64_t ticks) {
  if (!cpus_.empty()) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return ks::OkStatus();
  }
  return Run(ticks);
}

ks::Status Machine::StopMachine(
    const std::function<ks::Status(Machine&)>& fn) {
  KS_FAULT_POINT("kvm.stop_machine");
  static ks::Counter& calls =
      ks::Metrics().GetCounter("kvm.stop_machine_calls");
  static ks::Histogram& rendezvous =
      ks::Metrics().GetHistogram("kvm.stop_rendezvous_ns");
  // Taking the machine lock captures every virtual CPU: slices are atomic
  // with respect to it, so no thread is mid-instruction while fn runs. The
  // wait for the lock is the rendezvous latency.
  auto wait_begin = std::chrono::steady_clock::now();
  std::unique_lock<std::recursive_mutex> lock(mu_);
  calls.Add(1);
  rendezvous.Observe(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wait_begin)
          .count()));
  return fn(*this);
}

std::vector<uint32_t> Machine::RecordsWithKey(uint32_t key) const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  std::vector<uint32_t> out;
  for (const auto& [k, v] : records_) {
    if (k == key) {
      out.push_back(v);
    }
  }
  return out;
}

std::vector<std::string> Machine::Faults() const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  return fault_log_;
}

std::vector<FaultRecord> Machine::FaultRecords() const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  return fault_records_;
}

uint64_t Machine::FaultCount() const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  return total_faults_;
}

std::vector<FaultRecord> Machine::ExtableFixupRecords() const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  return extable_records_;
}

uint64_t Machine::DroppedLogLines() const {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  return dropped_log_lines_;
}

}  // namespace kvm
