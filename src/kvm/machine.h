// kvm: the simulated kernel that Ksplice hot-updates.
//
// A Machine is a flat little-endian memory image executing KVX code, plus
// the kernel facilities Ksplice interacts with:
//
//  - a kallsyms-style symbol table (locals included, names may collide);
//  - a module loader that links kelf objects against exported globals
//    (Ksplice's helper and primary modules load through it, §5.1);
//  - kernel threads with in-image stacks, round-robin scheduled with
//    preemption, sleep/wake, a big kernel lock, and kthread spawning —
//    everything the stack safety check must reason about (§5.2);
//  - stop_machine(): runs a host function with every virtual CPU captured;
//  - a kmalloc heap and the shadow data-structure registry used by
//    DynAMOS-style struct extensions (§5.3, §7.1);
//  - observation channels for tests: printk log, record() log, fault log.
//
// Concurrency model: all VM state is guarded by one lock (the analogue of
// running on real CPUs with stop_machine available). Virtual CPUs are host
// threads that repeatedly execute bounded instruction slices while holding
// the lock; stop_machine simply acquires it, so the pause it induces is the
// in-flight slice remainder — the quantity bench_stopmachine_latency
// measures. Single-threaded tests drive the scheduler with Run()/Advance()
// and never start CPUs.

#ifndef KSPLICE_KVM_MACHINE_H_
#define KSPLICE_KVM_MACHINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <thread>
#include <vector>

#include "base/status.h"
#include "kelf/link.h"
#include "kelf/objfile.h"

namespace kvm {

struct MachineConfig {
  uint32_t memory_bytes = 16u << 20;   // image size
  uint32_t kernel_base = 0x00100000;   // kernel link address
  uint32_t default_stack_bytes = 8192;
  int slice_instructions = 1000;       // preemption quantum
  uint32_t rand_seed = 0x12345678;
  bool log_printk = false;             // echo printk to the host log
  // Cap on each observation log (printk, fault log, fault/fixup records):
  // oldest entries are dropped past this and counted in DroppedLogLines().
  // 0 = unbounded (tests that assert exact log contents).
  uint32_t max_log_lines = 4096;
};

enum class ThreadState : uint8_t {
  kRunnable,
  kSleeping,   // waiting for wake_tick
  kLockWait,   // waiting for the big kernel lock
  kDone,
  kFaulted,
};

struct ThreadInfo {
  int tid = 0;
  ThreadState state = ThreadState::kRunnable;
  uint32_t pc = 0;
  uint32_t sp = 0;
  uint32_t stack_base = 0;   // lowest address of the stack region
  uint32_t stack_top = 0;    // one past the highest
  std::string fault;         // non-empty iff kFaulted
};

// Structured counterpart of one fault-log line: who faulted, where, when.
// The PC is the health-attribution surface — Ksplice's watchdog maps it
// against applied updates' replacement-code ranges to decide whether a
// fault is the fault of a hot patch.
struct FaultRecord {
  int tid = 0;
  uint32_t pc = 0;
  uint64_t tick = 0;    // Ticks() when the fault was taken
  std::string reason;   // same text as the fault-log line's suffix
};

// Handle to a loaded module.
struct ModuleHandle {
  int id = -1;
  bool valid() const { return id >= 0; }
};

struct ModuleInfo {
  std::string name;
  uint32_t base = 0;
  uint32_t size = 0;
  bool loaded = false;
};

// A howto-tagged region of the live image: an exception table, bug table,
// or build-timestamp string, registered at boot (kernel sections) and at
// module load. Fault dispatch consults extable regions; BUG traps consult
// bug regions. Entries are read from guest memory at fault time, so a
// patch that rewrites table bytes (or a module that brings new tables)
// takes effect with no further registration.
struct HowtoRegion {
  kelf::Howto howto = kelf::Howto::kNone;
  uint32_t base = 0;
  uint32_t size = 0;
  std::string name;     // section name, for diagnostics
  int module_id = -1;   // owning module, -1 for the kernel image
};

class Machine {
 public:
  // Links `kernel_objects` at the kernel base and prepares the image.
  // No threads are created; callers Spawn() entry points explicitly.
  static ks::Result<std::unique_ptr<Machine>> Boot(
      std::vector<kelf::ObjectFile> kernel_objects,
      const MachineConfig& config);

  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Memory ---------------------------------------------------------------
  // All accessors bounds-check; the first page is never mapped (null-deref
  // traps). External (host) accessors take the machine lock.
  ks::Result<uint32_t> ReadWord(uint32_t addr) const;
  ks::Result<uint8_t> ReadByte(uint32_t addr) const;
  ks::Status WriteWord(uint32_t addr, uint32_t value);
  ks::Status WriteByte(uint32_t addr, uint8_t value);
  ks::Result<std::vector<uint8_t>> ReadBytes(uint32_t addr,
                                             uint32_t size) const;
  ks::Status WriteBytes(uint32_t addr, const std::vector<uint8_t>& bytes);

  // Symbols ----------------------------------------------------------------
  // The kallsyms table: kernel symbols plus those of loaded modules.
  std::vector<kelf::LinkedSymbol> Kallsyms() const;
  // All addresses bound to `name` (locals from any unit included).
  std::vector<kelf::LinkedSymbol> SymbolsNamed(const std::string& name) const;
  // The unique *global* symbol named `name`, as a module link would see it.
  ks::Result<uint32_t> GlobalSymbol(const std::string& name) const;

  // Modules ----------------------------------------------------------------
  // Links `objects` against exported kernel symbols and loads the result
  // into the module arena. `extra_resolver`, when given, supplies values
  // for imports that are not exported symbols (Ksplice uses it to feed
  // run-pre recovered values for unit-scoped names); it is consulted after
  // the exported-symbol table.
  using SymbolResolver =
      std::function<std::optional<uint32_t>(const std::string&)>;
  // `group` tags the module so related loads (e.g. every module of one
  // update transaction) can be accounted for and unloaded together.
  ks::Result<ModuleHandle> LoadModule(
      const std::vector<kelf::ObjectFile>& objects, const std::string& name,
      SymbolResolver extra_resolver = nullptr, const std::string& group = "");
  ks::Status UnloadModule(ModuleHandle handle);
  ks::Result<ModuleInfo> GetModuleInfo(ModuleHandle handle) const;
  // Bytes currently allocated to loaded modules (memory-cost accounting;
  // helper unload should reduce this, §5.1).
  uint32_t ModuleArenaBytesInUse() const;
  // Group bookkeeping: bytes held by loaded modules tagged `group`, and a
  // bulk unload of all of them (transaction rollback drops every module an
  // aborted batch loaded in one call). Returns the number unloaded.
  uint32_t ModuleArenaBytesForGroup(const std::string& group) const;
  ks::Result<int> UnloadGroup(const std::string& group);
  // External symbols the module link resolved, with the address each bound
  // to (name -> value, deduplicated). Ksplice's out-of-order undo uses this
  // to refuse removing a module that a later module's imports point into.
  ks::Result<std::vector<std::pair<std::string, uint32_t>>> ModuleImports(
      ModuleHandle handle) const;

  // Threads ---------------------------------------------------------------
  // Spawns a kernel thread at `entry` with a single argument, giving it a
  // fresh stack in the image. Returns the tid.
  ks::Result<int> Spawn(uint32_t entry, uint32_t arg,
                        uint32_t stack_bytes = 0);
  ks::Result<int> SpawnNamed(const std::string& function_name, uint32_t arg,
                             uint32_t stack_bytes = 0);
  std::vector<ThreadInfo> Threads() const;
  // True if some thread is runnable or sleeping (i.e. work remains).
  bool HasLiveThreads() const;

  // Execution ---------------------------------------------------------------
  uint64_t Ticks() const;
  // Scheduler slices that retired at least one instruction (the virtual
  // analogue of a context switch). Also published as "kvm.context_switches".
  uint64_t ContextSwitches() const;
  // Cooperative driver: schedules threads round-robin until all are done,
  // faulted, or `max_ticks` instructions have executed. Sleeping threads
  // fast-forward virtual time when everyone sleeps.
  ks::Status Run(uint64_t max_ticks);
  // Runs until no live threads remain (or the safety cap is hit).
  ks::Status RunToCompletion(uint64_t safety_cap = 100'000'000);

  // Virtual CPUs: host threads that execute slices until StopCpus. Used by
  // benches; tests normally use Run().
  void StartCpus(int count);
  void StopCpus();
  int ActiveCpus() const;

  // Makes progress regardless of mode: with CPUs running, briefly yields
  // the host; otherwise runs `ticks` cooperatively. Used by apply-retry.
  ks::Status Advance(uint64_t ticks);

  // Runs `fn` with the machine quiesced: no virtual CPU mid-instruction,
  // no slice in flight (§5.2 stop_machine). Returns fn's status.
  ks::Status StopMachine(const std::function<ks::Status(Machine&)>& fn);

  // Synchronously calls the guest function at `entry` with one argument on
  // a dedicated stack and returns its r0. Usable inside StopMachine (this
  // is how ksplice_apply hooks run while the machine is stopped, §5.3) and
  // outside it. The call is bounded by `max_ticks`; faults become errors.
  ks::Result<uint32_t> CallFunction(uint32_t entry, uint32_t arg,
                                    uint64_t max_ticks = 1'000'000);

  // Raw arena blobs: allocation without linking, used to account for the
  // memory a loaded-but-unlinked module image occupies (the helper module,
  // §5.1). Freed with UnloadModule.
  ks::Result<ModuleHandle> LoadBlob(const std::string& name, uint32_t size,
                                    const std::string& group = "");

  // Section placements of a loaded module (where each input section
  // landed). Ksplice reads its .ksplice.* hook tables through this.
  ks::Result<std::vector<kelf::PlacedSection>> ModulePlacements(
      ModuleHandle handle) const;

  // Instrumentation ----------------------------------------------------------
  std::vector<std::string> PrintkLog() const {
    std::unique_lock<std::recursive_mutex> lock(mu_);
    return printk_log_;
  }
  std::vector<std::pair<uint32_t, uint32_t>> Records() const {
    std::unique_lock<std::recursive_mutex> lock(mu_);
    return records_;
  }
  // record() entries with key == `key`, values only.
  std::vector<uint32_t> RecordsWithKey(uint32_t key) const;
  std::vector<std::string> Faults() const;
  // Structured fault records (FaultRecord above). Bounded like the text
  // logs; FaultCount() is the monotonic total and never decreases when the
  // ring drops old entries, so health monitors can sample by delta.
  std::vector<FaultRecord> FaultRecords() const;
  uint64_t FaultCount() const;
  // Per-fixup records of extable-recovered loads (tid, pc of the LOADF).
  // ExtableFixups() stays the monotonic count.
  std::vector<FaultRecord> ExtableFixupRecords() const;
  // Lines evicted from the bounded logs (config().max_log_lines).
  uint64_t DroppedLogLines() const;
  bool Halted() const {
    std::unique_lock<std::recursive_mutex> lock(mu_);
    return halted_;
  }

  // Heap / shadow registry (host-side views used by tests) -------------------
  ks::Result<uint32_t> HostKmalloc(uint32_t size);
  ks::Status HostKfree(uint32_t addr);
  ks::Result<uint32_t> HostShadowGet(uint32_t obj, uint32_t key) const;

  // Howto regions currently registered (kernel + loaded modules).
  std::vector<HowtoRegion> HowtoRegions() const;
  // Number of faulting loads recovered through an exception-table fixup.
  uint64_t ExtableFixups() const;

  const MachineConfig& config() const { return config_; }
  uint32_t kernel_end() const { return kernel_end_; }

 private:
  explicit Machine(const MachineConfig& config);

  struct Thread {
    int tid = 0;
    ThreadState state = ThreadState::kRunnable;
    uint32_t regs[8] = {0};
    uint32_t pc = 0;
    bool flag_zero = false;
    bool flag_lt = false;
    uint32_t stack_base = 0;
    uint32_t stack_top = 0;
    uint64_t wake_tick = 0;
    std::string fault;
  };

  struct ArenaBlock {
    uint32_t base = 0;
    uint32_t size = 0;
    bool free = false;
  };

  // Internal (lock already held) ------------------------------------------
  bool InBounds(uint32_t addr, uint32_t size) const;
  ks::Result<uint32_t> ReadWordLocked(uint32_t addr) const;
  ks::Status WriteWordLocked(uint32_t addr, uint32_t value);

  ks::Result<uint32_t> ArenaAlloc(uint32_t size, uint32_t align);
  void ArenaFree(uint32_t base);

  ks::Result<uint32_t> HeapAlloc(uint32_t size);
  ks::Status HeapFree(uint32_t addr);

  // Executes up to `budget` instructions of `thread`; returns instructions
  // retired. Updates thread state on sleep/exit/fault.
  uint64_t ExecThread(Thread& thread, int budget);
  // One instruction; false ends the slice (sleep/exit/fault/yield).
  bool StepLocked(Thread& thread);
  void FaultThread(Thread& thread, std::string reason);
  ks::Status RunLocked(uint64_t max_ticks);
  // Picks the next runnable thread index after `start`, handling wakes.
  int NextRunnable(size_t start_hint, uint64_t deadline);
  void WakeSleepers();
  bool DoSys(Thread& thread, uint8_t number);

  // Howto-region bookkeeping (lock already held). Regions are registered
  // from section placements at boot/module-load and dropped on unload;
  // lookups read guest memory at fault time.
  void RegisterHowtoRegions(const std::vector<kelf::PlacedSection>& placements,
                            int module_id);
  void UnregisterHowtoRegions(int module_id);
  // Scans extable regions for an entry whose faulting-insn word equals
  // `pc`; returns the fixup address, or nullopt.
  std::optional<uint32_t> ExtableFixupFor(uint32_t pc) const;
  // Scans bug-table regions for an entry whose trap word equals `pc`;
  // returns (section name, source line), or nullopt.
  std::optional<std::pair<std::string, uint32_t>> BugEntryFor(
      uint32_t pc) const;

  MachineConfig config_;
  mutable std::recursive_mutex mu_;

  std::vector<uint8_t> memory_;
  uint32_t kernel_end_ = 0;     // first address past the kernel image
  uint32_t arena_base_ = 0;     // module arena start
  uint32_t arena_cursor_ = 0;
  uint32_t arena_limit_ = 0;
  std::vector<ArenaBlock> arena_blocks_;
  uint32_t heap_base_ = 0;
  uint32_t heap_limit_ = 0;
  std::vector<ArenaBlock> heap_blocks_;
  uint32_t stack_cursor_ = 0;  // stacks grow downward from memory end
  uint32_t stack_limit_ = 0;

  std::vector<kelf::LinkedSymbol> kallsyms_;
  std::multimap<std::string, size_t> symbol_index_;
  struct Module {
    std::string name;
    std::string group;  // load-group tag ("" = ungrouped)
    uint32_t base = 0;
    uint32_t size = 0;
    bool loaded = false;
    size_t first_symbol = 0;
    size_t symbol_count = 0;
    std::vector<kelf::PlacedSection> placements;
    // name -> value of every external import the link resolved.
    std::vector<std::pair<std::string, uint32_t>> imports;
  };
  std::vector<Module> modules_;
  std::vector<HowtoRegion> howto_regions_;
  uint64_t extable_fixups_ = 0;  // faulting loads recovered via extable
  uint32_t hook_stack_top_ = 0;  // lazily allocated CallFunction stack

  std::vector<Thread> threads_;
  size_t sched_cursor_ = 0;
  uint64_t ticks_ = 0;
  uint64_t context_switches_ = 0;
  int next_tid_ = 1;
  bool halted_ = false;
  uint32_t rand_state_ = 0;

  // Big kernel lock.
  int bkl_owner_ = -1;  // tid, -1 free

  // Shadow registry: (object addr, key) -> shadow allocation.
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> shadows_;

  // Observation logs. printk/fault/record logs and the structured fault
  // and fixup records are rings bounded by config_.max_log_lines (except
  // records_, whose exact counts tests depend on); evictions are counted
  // in dropped_log_lines_. total_faults_ is monotonic and survives ring
  // eviction.
  template <typename T>
  void CapLog(std::vector<T>& log);
  std::vector<std::string> printk_log_;
  std::vector<std::pair<uint32_t, uint32_t>> records_;
  std::vector<std::string> fault_log_;
  std::vector<FaultRecord> fault_records_;
  std::vector<FaultRecord> extable_records_;
  uint64_t total_faults_ = 0;
  uint64_t dropped_log_lines_ = 0;

  // Virtual CPU pool.
  std::vector<std::thread> cpus_;
  bool cpus_should_stop_ = false;
};

// Exit sentinel: RET to this address terminates the thread. Placed outside
// mapped memory.
inline constexpr uint32_t kThreadExitMagic = 0xfffffff0;

}  // namespace kvm

#endif  // KSPLICE_KVM_MACHINE_H_
