#include "kvx/asm.h"

#include <map>
#include <optional>
#include <vector>

#include "base/endian.h"
#include "base/strings.h"
#include "kvx/isa.h"

namespace kvx {

namespace {

using kelf::ObjectFile;
using kelf::RelocType;
using kelf::Section;
using kelf::SectionKind;
using kelf::Symbol;
using kelf::SymbolBinding;
using kelf::SymbolKind;

struct ItemReloc {
  uint32_t offset = 0;  // within the item
  std::string symbol;
  int32_t addend = 0;
  RelocType type = RelocType::kAbs32;
};

struct AsmItem {
  enum class Kind { kBytes, kBranch, kAlign };
  Kind kind = Kind::kBytes;
  std::vector<uint8_t> bytes;       // kBytes payload (zeroes for .space)
  std::vector<ItemReloc> relocs;    // kBytes relocations
  Op branch_op = Op::kJmp32;        // kBranch: long form, or kCall
  std::string target;               // kBranch target name
  uint32_t align = 1;               // kAlign
  bool is_long = false;             // kBranch relaxation state
  int line = 0;
};

struct AsmSection {
  std::string name;
  SectionKind kind = SectionKind::kText;
  uint32_t align = 1;
  std::vector<AsmItem> items;
  // Label/symbol name -> position: offset of the label is the offset just
  // before items[position].
  std::map<std::string, size_t> labels;
};

struct DefinedSym {
  std::string name;
  size_t section = 0;  // index into sections vector
  size_t position = 0; // item position within the section
};

// A pending exception-table or bug-table entry. Entries reference local
// labels whose offsets are only known after branch relaxation, so the
// directives record them here and Finish() materializes the 8-byte items
// (with ABS32 relocations against the enclosing function symbol) into a
// per-function `.extable.<fn>` / `.bug_table.<fn>` section.
struct DeferredEntry {
  enum class Kind { kExtable, kBug };
  Kind kind = Kind::kExtable;
  size_t section = 0;  // text section holding fn and the labels
  std::string fn;      // enclosing function symbol
  std::string label1;  // faulting-insn / trap-site label
  std::string label2;  // fixup label (extable only)
  uint32_t bug_line = 0;  // source line (bug only)
  int src_line = 0;       // assembly line, for diagnostics
};

class Assembler {
 public:
  Assembler(std::string source_name, const AsmOptions& options)
      : source_name_(std::move(source_name)), options_(options) {}

  ks::Result<ObjectFile> Run(std::string_view source);

 private:
  enum class Segment { kText, kData, kBss };

  ks::Status ParseLine(std::string_view line);
  ks::Status ParseDirective(const std::vector<std::string>& tokens);
  ks::Status ParseInstruction(const std::vector<std::string>& tokens);
  ks::Status DefineLabel(const std::string& name);

  // Section management -------------------------------------------------
  AsmSection& CurrentSection();
  size_t EnsureSection(const std::string& name, SectionKind kind,
                       uint32_t align);
  ks::Status SwitchSegment(Segment segment);

  // Emission helpers ----------------------------------------------------
  void EmitBytes(std::vector<uint8_t> bytes,
                 std::vector<ItemReloc> relocs = {});
  void EmitBranch(Op long_op, std::string target);
  void EmitAlign(uint32_t align);

  ks::Status Error(const std::string& message) const {
    return ks::InvalidArgument(ks::StrPrintf(
        "%s:%d: %s", source_name_.c_str(), line_number_, message.c_str()));
  }

  // Operand parsing -----------------------------------------------------
  std::optional<uint8_t> ParseRegister(std::string_view token) const;
  std::optional<int64_t> ParseNumber(std::string_view token) const;
  // Parses "name", "name+4", "name-4" into (symbol, addend).
  std::optional<std::pair<std::string, int32_t>> ParseSymbolExpr(
      std::string_view token) const;

  // Final assembly ------------------------------------------------------
  ks::Result<ObjectFile> Finish();
  ks::Status MaterializeDeferredEntries();
  static std::vector<uint32_t> ComputeOffsets(const AsmSection& section);
  static ks::Status Relax(AsmSection& section);

  std::string source_name_;
  AsmOptions options_;
  int line_number_ = 0;
  Segment segment_ = Segment::kText;
  std::vector<AsmSection> sections_;
  size_t current_section_ = 0;
  std::vector<DefinedSym> defined_;
  std::vector<std::string> globals_;
  std::vector<DeferredEntry> deferred_;
  // True while inside a `.howto_section`: labels define symbols in place
  // instead of splitting into fresh `.data.<name>` sections.
  bool custom_section_ = false;
  bool initialized_ = false;
};

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '$';
}

// Splits an assembly line into tokens; commas separate operands, quoted
// strings stay whole (including quotes).
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (c == ' ' || c == '\t' || c == ',') {
      ++i;
      continue;
    }
    if (c == '"') {
      size_t j = i + 1;
      while (j < line.size() && line[j] != '"') {
        if (line[j] == '\\' && j + 1 < line.size()) {
          ++j;
        }
        ++j;
      }
      tokens.emplace_back(line.substr(i, j + 1 - i));
      i = j + 1;
      continue;
    }
    if (c == '[' || c == ']' || c == ':') {
      tokens.emplace_back(1, c);
      ++i;
      continue;
    }
    size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t' &&
           line[j] != ',' && line[j] != '[' && line[j] != ']' &&
           line[j] != ':') {
      ++j;
    }
    tokens.emplace_back(line.substr(i, j - i));
    i = j;
  }
  return tokens;
}

ks::Result<ObjectFile> Assembler::Run(std::string_view source) {
  EnsureSection(".text", SectionKind::kText, options_.func_align);
  initialized_ = true;
  for (const std::string& raw_line : ks::SplitLines(source)) {
    ++line_number_;
    std::string_view line = raw_line;
    size_t comment = line.find_first_of(";#");
    // '#' inside a string would break here; our sources don't use it.
    if (comment != std::string_view::npos) {
      size_t quote = line.find('"');
      if (quote == std::string_view::npos || comment < quote) {
        line = line.substr(0, comment);
      }
    }
    line = ks::Trim(line);
    if (line.empty()) {
      continue;
    }
    KS_RETURN_IF_ERROR(ParseLine(line));
  }
  return Finish();
}

ks::Status Assembler::ParseLine(std::string_view line) {
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) {
    return ks::OkStatus();
  }
  // Labels: NAME : [rest...]
  while (tokens.size() >= 2 && tokens[1] == ":") {
    KS_RETURN_IF_ERROR(DefineLabel(tokens[0]));
    tokens.erase(tokens.begin(), tokens.begin() + 2);
  }
  if (tokens.empty()) {
    return ks::OkStatus();
  }
  if (tokens[0][0] == '.') {
    return ParseDirective(tokens);
  }
  return ParseInstruction(tokens);
}

AsmSection& Assembler::CurrentSection() { return sections_[current_section_]; }

size_t Assembler::EnsureSection(const std::string& name, SectionKind kind,
                                uint32_t align) {
  for (size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].name == name) {
      current_section_ = i;
      return i;
    }
  }
  AsmSection sec;
  sec.name = name;
  sec.kind = kind;
  sec.align = align;
  sections_.push_back(std::move(sec));
  current_section_ = sections_.size() - 1;
  return current_section_;
}

ks::Status Assembler::SwitchSegment(Segment segment) {
  segment_ = segment;
  custom_section_ = false;
  switch (segment) {
    case Segment::kText:
      EnsureSection(".text", SectionKind::kText, options_.func_align);
      break;
    case Segment::kData:
      EnsureSection(".data", SectionKind::kData, 4);
      break;
    case Segment::kBss:
      EnsureSection(".bss", SectionKind::kBss, 4);
      break;
  }
  return ks::OkStatus();
}

ks::Status Assembler::DefineLabel(const std::string& name) {
  if (name.empty() || !IsIdentChar(name[0])) {
    return Error(ks::StrPrintf("bad label '%s'", name.c_str()));
  }
  bool local_label = name[0] == '.';
  if (!local_label && custom_section_) {
    // Inside a `.howto_section`: the label defines a symbol at the
    // current position of the custom section, never a split section.
    AsmSection& sec = CurrentSection();
    if (sec.labels.count(name) != 0) {
      return Error(ks::StrPrintf("duplicate label '%s'", name.c_str()));
    }
    sec.labels.emplace(name, sec.items.size());
    defined_.push_back(DefinedSym{name, current_section_, sec.items.size()});
    return ks::OkStatus();
  }
  if (!local_label) {
    // A symbol definition. With function/data sections, it opens a fresh
    // section; otherwise we pad to the function/object alignment in place.
    bool split = false;
    SectionKind kind = SectionKind::kText;
    uint32_t align = 4;
    std::string prefix;
    switch (segment_) {
      case Segment::kText:
        split = options_.function_sections;
        kind = SectionKind::kText;
        align = options_.func_align;
        prefix = ".text.";
        break;
      case Segment::kData:
        split = options_.data_sections;
        kind = SectionKind::kData;
        prefix = ".data.";
        break;
      case Segment::kBss:
        split = options_.data_sections;
        kind = SectionKind::kBss;
        prefix = ".bss.";
        break;
    }
    if (split) {
      size_t idx = EnsureSection(prefix + name, kind, align);
      AsmSection& sec = sections_[idx];
      if (sec.labels.count(name) != 0) {
        return Error(ks::StrPrintf("duplicate label '%s'", name.c_str()));
      }
      sec.labels.emplace(name, sec.items.size());
      defined_.push_back(DefinedSym{name, idx, sec.items.size()});
      return ks::OkStatus();
    }
    EmitAlign(align);
  }
  AsmSection& sec = CurrentSection();
  if (sec.labels.count(name) != 0) {
    return Error(ks::StrPrintf("duplicate label '%s'", name.c_str()));
  }
  sec.labels.emplace(name, sec.items.size());
  if (!local_label) {
    defined_.push_back(DefinedSym{name, current_section_, sec.items.size()});
  }
  return ks::OkStatus();
}

void Assembler::EmitBytes(std::vector<uint8_t> bytes,
                          std::vector<ItemReloc> relocs) {
  AsmSection& sec = CurrentSection();
  // Merge adjacent byte items without relocations to keep item counts low.
  AsmItem item;
  item.kind = AsmItem::Kind::kBytes;
  item.bytes = std::move(bytes);
  item.relocs = std::move(relocs);
  item.line = line_number_;
  sec.items.push_back(std::move(item));
}

void Assembler::EmitBranch(Op long_op, std::string target) {
  AsmItem item;
  item.kind = AsmItem::Kind::kBranch;
  item.branch_op = long_op;
  item.target = std::move(target);
  item.line = line_number_;
  CurrentSection().items.push_back(std::move(item));
}

void Assembler::EmitAlign(uint32_t align) {
  if (align <= 1) {
    return;
  }
  AsmItem item;
  item.kind = AsmItem::Kind::kAlign;
  item.align = align;
  item.line = line_number_;
  CurrentSection().items.push_back(std::move(item));
}

std::optional<uint8_t> Assembler::ParseRegister(std::string_view token) const {
  if (token == "fp") {
    return kRegFp;
  }
  if (token == "sp") {
    return kRegSp;
  }
  if (token.size() == 2 && token[0] == 'r' && token[1] >= '0' &&
      token[1] <= '7') {
    return static_cast<uint8_t>(token[1] - '0');
  }
  return std::nullopt;
}

std::optional<int64_t> Assembler::ParseNumber(std::string_view token) const {
  if (token.empty()) {
    return std::nullopt;
  }
  bool negative = false;
  size_t i = 0;
  if (token[0] == '-') {
    negative = true;
    i = 1;
  }
  if (i >= token.size()) {
    return std::nullopt;
  }
  int64_t value = 0;
  if (token.size() > i + 2 && token[i] == '0' &&
      (token[i + 1] == 'x' || token[i + 1] == 'X')) {
    for (size_t j = i + 2; j < token.size(); ++j) {
      char c = token[j];
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = c - 'A' + 10;
      } else {
        return std::nullopt;
      }
      value = value * 16 + digit;
    }
  } else {
    for (size_t j = i; j < token.size(); ++j) {
      char c = token[j];
      if (c < '0' || c > '9') {
        return std::nullopt;
      }
      value = value * 10 + (c - '0');
    }
  }
  return negative ? -value : value;
}

std::optional<std::pair<std::string, int32_t>> Assembler::ParseSymbolExpr(
    std::string_view token) const {
  if (token.empty() || !IsIdentChar(token[0]) ||
      (token[0] >= '0' && token[0] <= '9')) {
    return std::nullopt;
  }
  size_t i = 0;
  while (i < token.size() && IsIdentChar(token[i])) {
    ++i;
  }
  std::string name(token.substr(0, i));
  int32_t addend = 0;
  if (i < token.size()) {
    std::optional<int64_t> n;
    if (token[i] == '+') {
      n = ParseNumber(token.substr(i + 1));
    } else if (token[i] == '-') {
      n = ParseNumber(token.substr(i));
    }
    if (!n.has_value()) {
      return std::nullopt;
    }
    addend = static_cast<int32_t>(*n);
  }
  return std::make_pair(std::move(name), addend);
}

ks::Status Assembler::ParseDirective(const std::vector<std::string>& tokens) {
  const std::string& directive = tokens[0];
  if (directive == ".text") {
    return SwitchSegment(Segment::kText);
  }
  if (directive == ".data") {
    return SwitchSegment(Segment::kData);
  }
  if (directive == ".bss") {
    return SwitchSegment(Segment::kBss);
  }
  if (directive == ".global") {
    if (tokens.size() != 2) {
      return Error(".global needs one symbol");
    }
    globals_.push_back(tokens[1]);
    return ks::OkStatus();
  }
  if (directive == ".align") {
    if (tokens.size() != 2) {
      return Error(".align needs a value");
    }
    std::optional<int64_t> n = ParseNumber(tokens[1]);
    if (!n.has_value() || *n < 1 || *n > 4096 || (*n & (*n - 1)) != 0) {
      return Error(".align value must be a power of two in [1,4096]");
    }
    EmitAlign(static_cast<uint32_t>(*n));
    AsmSection& sec = CurrentSection();
    if (sec.align < static_cast<uint32_t>(*n)) {
      sec.align = static_cast<uint32_t>(*n);
    }
    return ks::OkStatus();
  }
  if (directive == ".word") {
    if (segment_ == Segment::kBss) {
      return Error(".word not allowed in .bss");
    }
    if (tokens.size() < 2) {
      return Error(".word needs at least one value");
    }
    std::vector<uint8_t> bytes;
    std::vector<ItemReloc> relocs;
    for (size_t i = 1; i < tokens.size(); ++i) {
      std::optional<int64_t> n = ParseNumber(tokens[i]);
      if (n.has_value()) {
        size_t at = bytes.size();
        bytes.resize(at + 4);
        ks::WriteLe32(bytes.data() + at, static_cast<uint32_t>(*n));
        continue;
      }
      auto sym = ParseSymbolExpr(tokens[i]);
      if (!sym.has_value()) {
        return Error(ks::StrPrintf("bad .word operand '%s'",
                                   tokens[i].c_str()));
      }
      relocs.push_back(ItemReloc{static_cast<uint32_t>(bytes.size()),
                                 sym->first, sym->second,
                                 RelocType::kAbs32});
      bytes.resize(bytes.size() + 4);
    }
    EmitBytes(std::move(bytes), std::move(relocs));
    return ks::OkStatus();
  }
  if (directive == ".byte") {
    if (segment_ == Segment::kBss) {
      return Error(".byte not allowed in .bss");
    }
    std::vector<uint8_t> bytes;
    for (size_t i = 1; i < tokens.size(); ++i) {
      std::optional<int64_t> n = ParseNumber(tokens[i]);
      if (!n.has_value() || *n < -128 || *n > 255) {
        return Error(
            ks::StrPrintf("bad .byte operand '%s'", tokens[i].c_str()));
      }
      bytes.push_back(static_cast<uint8_t>(*n));
    }
    EmitBytes(std::move(bytes));
    return ks::OkStatus();
  }
  if (directive == ".space") {
    if (tokens.size() != 2) {
      return Error(".space needs a size");
    }
    std::optional<int64_t> n = ParseNumber(tokens[1]);
    if (!n.has_value() || *n < 0 || *n > (1 << 24)) {
      return Error("bad .space size");
    }
    EmitBytes(std::vector<uint8_t>(static_cast<size_t>(*n), 0));
    return ks::OkStatus();
  }
  if (directive == ".asciz") {
    if (segment_ == Segment::kBss) {
      return Error(".asciz not allowed in .bss");
    }
    if (tokens.size() != 2 || tokens[1].size() < 2 || tokens[1][0] != '"' ||
        tokens[1].back() != '"') {
      return Error(".asciz needs one quoted string");
    }
    std::string_view body(tokens[1]);
    body = body.substr(1, body.size() - 2);
    std::vector<uint8_t> bytes;
    for (size_t i = 0; i < body.size(); ++i) {
      char c = body[i];
      if (c == '\\' && i + 1 < body.size()) {
        ++i;
        switch (body[i]) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case '\\':
            c = '\\';
            break;
          case '"':
            c = '"';
            break;
          default:
            return Error("bad escape in .asciz");
        }
      }
      bytes.push_back(static_cast<uint8_t>(c));
    }
    bytes.push_back(0);
    EmitBytes(std::move(bytes));
    return ks::OkStatus();
  }

  if (directive == ".howto_section") {
    // `.howto_section <name>`: switch to a literally-named data section
    // (e.g. `.rodata.date`); labels inside define symbols in place.
    if (tokens.size() != 2 || tokens[1].empty() || tokens[1][0] != '.') {
      return Error(".howto_section needs one section name");
    }
    segment_ = Segment::kData;
    EnsureSection(tokens[1], SectionKind::kData, 4);
    custom_section_ = true;
    return ks::OkStatus();
  }
  if (directive == ".extable_entry") {
    // `.extable_entry <fn>, <insn_label>, <fixup_label>` inside <fn>'s
    // text: records an exception-table pair; materialized after relaxation.
    if (tokens.size() != 4) {
      return Error(".extable_entry needs function, insn label, fixup label");
    }
    if (CurrentSection().kind != SectionKind::kText) {
      return Error(".extable_entry is only allowed in text");
    }
    DeferredEntry entry;
    entry.kind = DeferredEntry::Kind::kExtable;
    entry.section = current_section_;
    entry.fn = tokens[1];
    entry.label1 = tokens[2];
    entry.label2 = tokens[3];
    entry.src_line = line_number_;
    deferred_.push_back(std::move(entry));
    return ks::OkStatus();
  }
  if (directive == ".bug_entry") {
    // `.bug_entry <fn>, <trap_label>, <line>`: records a bug-table entry.
    if (tokens.size() != 4) {
      return Error(".bug_entry needs function, trap label, line number");
    }
    if (CurrentSection().kind != SectionKind::kText) {
      return Error(".bug_entry is only allowed in text");
    }
    std::optional<int64_t> n = ParseNumber(tokens[3]);
    if (!n.has_value() || *n < 0 || *n > 0x7fffffff) {
      return Error(ks::StrPrintf("bad .bug_entry line '%s'",
                                 tokens[3].c_str()));
    }
    DeferredEntry entry;
    entry.kind = DeferredEntry::Kind::kBug;
    entry.section = current_section_;
    entry.fn = tokens[1];
    entry.label1 = tokens[2];
    entry.bug_line = static_cast<uint32_t>(*n);
    entry.src_line = line_number_;
    deferred_.push_back(std::move(entry));
    return ks::OkStatus();
  }

  static const std::map<std::string, std::string> kHookSections = {
      {".ksplice_apply", ".ksplice.apply"},
      {".ksplice_pre_apply", ".ksplice.pre_apply"},
      {".ksplice_post_apply", ".ksplice.post_apply"},
      {".ksplice_reverse", ".ksplice.reverse"},
      {".ksplice_pre_reverse", ".ksplice.pre_reverse"},
      {".ksplice_post_reverse", ".ksplice.post_reverse"},
  };
  auto hook = kHookSections.find(directive);
  if (hook != kHookSections.end()) {
    if (tokens.size() != 2) {
      return Error(ks::StrPrintf("%s needs one symbol", directive.c_str()));
    }
    size_t saved = current_section_;
    EnsureSection(hook->second, SectionKind::kNote, 4);
    EmitBytes(std::vector<uint8_t>(4, 0),
              {ItemReloc{0, tokens[1], 0, RelocType::kAbs32}});
    current_section_ = saved;
    return ks::OkStatus();
  }

  return Error(ks::StrPrintf("unknown directive '%s'", directive.c_str()));
}

ks::Status Assembler::ParseInstruction(const std::vector<std::string>& tokens) {
  if (segment_ != Segment::kText ||
      CurrentSection().kind != SectionKind::kText) {
    return Error("instructions are only allowed in .text");
  }
  const std::string& mnemonic = tokens[0];
  size_t argc = tokens.size() - 1;

  auto encode0 = [&](Op op) {
    Insn insn;
    insn.op = op;
    EmitBytes(Encode(insn));
    return ks::OkStatus();
  };

  if (mnemonic == "nop") {
    return encode0(Op::kNop);
  }
  if (mnemonic == "halt") {
    return encode0(Op::kHalt);
  }
  if (mnemonic == "ret") {
    return encode0(Op::kRet);
  }
  if (mnemonic == "bug") {
    return encode0(Op::kBug);
  }

  if (mnemonic == "sys") {
    if (argc != 1) {
      return Error("sys needs one immediate");
    }
    std::optional<int64_t> n = ParseNumber(tokens[1]);
    if (!n.has_value() || *n < 0 || *n > 255) {
      return Error("bad sys number");
    }
    Insn insn;
    insn.op = Op::kSys;
    insn.imm = static_cast<uint32_t>(*n);
    EmitBytes(Encode(insn));
    return ks::OkStatus();
  }

  if (mnemonic == "push" || mnemonic == "pop" || mnemonic == "callr") {
    if (argc != 1) {
      return Error(ks::StrPrintf("%s needs one register", mnemonic.c_str()));
    }
    std::optional<uint8_t> reg = ParseRegister(tokens[1]);
    if (!reg.has_value()) {
      return Error(ks::StrPrintf("bad register '%s'", tokens[1].c_str()));
    }
    Insn insn;
    insn.op = mnemonic == "push"  ? Op::kPush
              : mnemonic == "pop" ? Op::kPop
                                  : Op::kCallR;
    insn.reg1 = *reg;
    EmitBytes(Encode(insn));
    return ks::OkStatus();
  }

  if (mnemonic == "call") {
    if (argc != 1) {
      return Error("call needs one target");
    }
    EmitBranch(Op::kCall, tokens[1]);
    return ks::OkStatus();
  }

  static const std::map<std::string, Op> kJumps = {
      {"jmp", Op::kJmp32}, {"jz", Op::kJz32},   {"jnz", Op::kJnz32},
      {"jlt", Op::kJlt32}, {"jge", Op::kJge32}, {"jgt", Op::kJgt32},
      {"jle", Op::kJle32},
  };
  auto jump = kJumps.find(mnemonic);
  if (jump != kJumps.end()) {
    if (argc != 1) {
      return Error("jump needs one target");
    }
    EmitBranch(jump->second, tokens[1]);
    return ks::OkStatus();
  }

  // load rd, [ rs ]   /  loadb rd, [ rs ]  /  loadf rd, [ rs ]
  if (mnemonic == "load" || mnemonic == "loadb" || mnemonic == "loadf") {
    if (argc != 4 || tokens[2] != "[" || tokens[4] != "]") {
      return Error(ks::StrPrintf("%s needs 'rD, [rS]'", mnemonic.c_str()));
    }
    std::optional<uint8_t> rd = ParseRegister(tokens[1]);
    std::optional<uint8_t> rs = ParseRegister(tokens[3]);
    if (!rd.has_value() || !rs.has_value()) {
      return Error("bad register in load");
    }
    Insn insn;
    insn.op = mnemonic == "load"    ? Op::kLoadI
              : mnemonic == "loadf" ? Op::kLoadF
                                    : Op::kLoadBI;
    insn.reg1 = *rd;
    insn.reg2 = *rs;
    EmitBytes(Encode(insn));
    return ks::OkStatus();
  }

  // store [ rd ], rs  /  storeb [ rd ], rs
  if (mnemonic == "store" || mnemonic == "storeb") {
    if (argc != 4 || tokens[1] != "[" || tokens[3] != "]") {
      return Error(ks::StrPrintf("%s needs '[rD], rS'", mnemonic.c_str()));
    }
    std::optional<uint8_t> rd = ParseRegister(tokens[2]);
    std::optional<uint8_t> rs = ParseRegister(tokens[4]);
    if (!rd.has_value() || !rs.has_value()) {
      return Error("bad register in store");
    }
    Insn insn;
    insn.op = mnemonic == "store" ? Op::kStoreI : Op::kStoreBI;
    insn.reg1 = *rd;
    insn.reg2 = *rs;
    EmitBytes(Encode(insn));
    return ks::OkStatus();
  }

  struct AluOps {
    Op rr;
    Op ri;  // kHalt marks "no immediate form"
  };
  static const std::map<std::string, AluOps> kAlu = {
      {"mov", {Op::kMovRR, Op::kMovRI}}, {"add", {Op::kAddRR, Op::kAddRI}},
      {"sub", {Op::kSubRR, Op::kSubRI}}, {"cmp", {Op::kCmpRR, Op::kCmpRI}},
      {"and", {Op::kAndRR, Op::kAndRI}}, {"mul", {Op::kMulRR, Op::kHalt}},
      {"or", {Op::kOrRR, Op::kHalt}},    {"xor", {Op::kXorRR, Op::kHalt}},
      {"div", {Op::kDivRR, Op::kHalt}},  {"mod", {Op::kModRR, Op::kHalt}},
      {"shl", {Op::kShlRR, Op::kHalt}},  {"shr", {Op::kShrRR, Op::kHalt}},
  };
  auto alu = kAlu.find(mnemonic);
  if (alu != kAlu.end()) {
    if (argc != 2) {
      return Error(ks::StrPrintf("%s needs two operands", mnemonic.c_str()));
    }
    std::optional<uint8_t> rd = ParseRegister(tokens[1]);
    if (!rd.has_value()) {
      return Error(ks::StrPrintf("bad destination '%s'", tokens[1].c_str()));
    }
    std::optional<uint8_t> rs = ParseRegister(tokens[2]);
    if (rs.has_value()) {
      Insn insn;
      insn.op = alu->second.rr;
      insn.reg1 = *rd;
      insn.reg2 = *rs;
      EmitBytes(Encode(insn));
      return ks::OkStatus();
    }
    if (alu->second.ri == Op::kHalt) {
      return Error(
          ks::StrPrintf("%s has no immediate form", mnemonic.c_str()));
    }
    // "=symbol[+off]" materializes an address with an ABS32 relocation.
    if (tokens[2][0] == '=') {
      if (alu->second.ri != Op::kMovRI) {
        return Error("address expressions only valid with mov");
      }
      auto sym = ParseSymbolExpr(std::string_view(tokens[2]).substr(1));
      if (!sym.has_value()) {
        return Error(
            ks::StrPrintf("bad address expression '%s'", tokens[2].c_str()));
      }
      Insn insn;
      insn.op = Op::kMovRI;
      insn.reg1 = *rd;
      insn.imm = 0;
      EmitBytes(Encode(insn),
                {ItemReloc{2, sym->first, sym->second, RelocType::kAbs32}});
      return ks::OkStatus();
    }
    std::optional<int64_t> n = ParseNumber(tokens[2]);
    if (!n.has_value()) {
      return Error(ks::StrPrintf("bad operand '%s'", tokens[2].c_str()));
    }
    Insn insn;
    insn.op = alu->second.ri;
    insn.reg1 = *rd;
    insn.imm = static_cast<uint32_t>(*n);
    EmitBytes(Encode(insn));
    return ks::OkStatus();
  }

  return Error(ks::StrPrintf("unknown mnemonic '%s'", mnemonic.c_str()));
}

std::vector<uint32_t> Assembler::ComputeOffsets(const AsmSection& section) {
  std::vector<uint32_t> offsets(section.items.size() + 1, 0);
  uint32_t off = 0;
  for (size_t i = 0; i < section.items.size(); ++i) {
    offsets[i] = off;
    const AsmItem& item = section.items[i];
    switch (item.kind) {
      case AsmItem::Kind::kBytes:
        off += static_cast<uint32_t>(item.bytes.size());
        break;
      case AsmItem::Kind::kBranch:
        if (item.branch_op == Op::kCall) {
          off += 5;
        } else {
          off += item.is_long ? 5 : 2;
        }
        break;
      case AsmItem::Kind::kAlign:
        off += (item.align - (off % item.align)) % item.align;
        break;
    }
  }
  offsets[section.items.size()] = off;
  return offsets;
}

ks::Status Assembler::Relax(AsmSection& section) {
  // Branches whose targets are not labels of this section always use the
  // long form with a relocation.
  for (AsmItem& item : section.items) {
    if (item.kind == AsmItem::Kind::kBranch &&
        section.labels.count(item.target) == 0) {
      item.is_long = true;
    }
  }
  for (int iteration = 0; iteration < 1000; ++iteration) {
    std::vector<uint32_t> offsets = ComputeOffsets(section);
    bool changed = false;
    for (size_t i = 0; i < section.items.size(); ++i) {
      AsmItem& item = section.items[i];
      if (item.kind != AsmItem::Kind::kBranch || item.is_long ||
          item.branch_op == Op::kCall) {
        continue;
      }
      auto label = section.labels.find(item.target);
      if (label == section.labels.end()) {
        continue;  // already forced long above
      }
      uint32_t target_off = offsets[label->second];
      int64_t disp = static_cast<int64_t>(target_off) -
                     (static_cast<int64_t>(offsets[i]) + 2);
      if (disp < -128 || disp > 127) {
        item.is_long = true;
        changed = true;
      }
    }
    if (!changed) {
      return ks::OkStatus();
    }
  }
  return ks::Internal("assembler relaxation did not converge");
}

ks::Status Assembler::MaterializeDeferredEntries() {
  for (const DeferredEntry& e : deferred_) {
    // Resolve the function and label offsets within the recorded text
    // section (never hold references across EnsureSection: it may grow
    // sections_).
    std::vector<uint32_t> offsets = ComputeOffsets(sections_[e.section]);
    auto resolve = [&](const std::string& label,
                       uint32_t* out) -> ks::Status {
      const AsmSection& text = sections_[e.section];
      auto it = text.labels.find(label);
      if (it == text.labels.end()) {
        return ks::InvalidArgument(ks::StrPrintf(
            "%s:%d: %s references unknown label '%s'", source_name_.c_str(),
            e.src_line,
            e.kind == DeferredEntry::Kind::kExtable ? ".extable_entry"
                                                    : ".bug_entry",
            label.c_str()));
      }
      *out = offsets[it->second];
      return ks::OkStatus();
    };
    uint32_t fn_off = 0;
    uint32_t site_off = 0;
    KS_RETURN_IF_ERROR(resolve(e.fn, &fn_off));
    KS_RETURN_IF_ERROR(resolve(e.label1, &site_off));

    bool extable = e.kind == DeferredEntry::Kind::kExtable;
    uint32_t aux = 0;
    if (extable) {
      KS_RETURN_IF_ERROR(resolve(e.label2, &aux));
    } else {
      aux = e.bug_line;
    }

    std::string table_name = (extable ? ".extable." : ".bug_table.") + e.fn;
    std::string table_sym = (extable ? "__extable_" : "__bug_table_") + e.fn;
    size_t idx = EnsureSection(table_name, SectionKind::kData, 4);
    AsmSection& table = sections_[idx];
    if (table.labels.count(table_sym) == 0) {
      table.labels.emplace(table_sym, 0);
      defined_.push_back(DefinedSym{table_sym, idx, 0});
    }
    AsmItem item;
    item.kind = AsmItem::Kind::kBytes;
    item.bytes.assign(8, 0);
    item.line = e.src_line;
    // Word 0: address of the faulting/trap instruction, as fn+offset so
    // the linker and the structural matcher see it under relocation.
    item.relocs.push_back(ItemReloc{
        0, e.fn, static_cast<int32_t>(site_off - fn_off), RelocType::kAbs32});
    if (extable) {
      // Word 1: the fixup landing pad, likewise fn-relative.
      item.relocs.push_back(ItemReloc{
          4, e.fn, static_cast<int32_t>(aux - fn_off), RelocType::kAbs32});
    } else {
      // Word 1: the source line, a plain literal (no relocation).
      ks::WriteLe32(item.bytes.data() + 4, aux);
    }
    table.items.push_back(std::move(item));
  }
  return ks::OkStatus();
}

ks::Result<ObjectFile> Assembler::Finish() {
  ObjectFile obj(source_name_);

  std::map<std::string, SymbolBinding> binding;
  for (const std::string& name : globals_) {
    binding[name] = SymbolBinding::kGlobal;
  }

  for (AsmSection& asec : sections_) {
    KS_RETURN_IF_ERROR(Relax(asec));
  }
  // Label offsets are final only now; turn deferred extable/bug-table
  // entries into per-function table sections before kelf emission.
  KS_RETURN_IF_ERROR(MaterializeDeferredEntries());

  // First create all symbols (so relocations can reference them), then emit
  // section payloads.
  std::map<std::string, int> symbol_index;  // defined symbols by name
  std::vector<int> section_index(sections_.size(), -1);

  // Create kelf sections.
  for (size_t si = 0; si < sections_.size(); ++si) {
    AsmSection& asec = sections_[si];
    std::vector<uint32_t> offsets = ComputeOffsets(asec);
    uint32_t total = offsets.back();
    bool last_chance = si + 1 == sections_.size() && obj.sections().empty();
    if (total == 0 && asec.items.empty() && asec.labels.empty() &&
        !last_chance) {
      // Drop empty unlabeled sections (e.g. the default .text when
      // function-sections moved every function elsewhere), but keep one so
      // trivially empty files still produce a well-formed object.
      continue;
    }
    Section sec;
    sec.name = asec.name;
    sec.kind = asec.kind;
    sec.howto = kelf::HowtoForSectionName(asec.name);
    sec.align = asec.align;
    if (asec.kind == SectionKind::kBss) {
      sec.bss_size = total;
    } else {
      sec.bytes.reserve(total);
    }
    section_index[si] = obj.AddSection(std::move(sec));
  }

  // Define symbols.
  for (const DefinedSym& def : defined_) {
    const AsmSection& asec = sections_[def.section];
    std::vector<uint32_t> offsets = ComputeOffsets(asec);
    if (section_index[def.section] < 0) {
      return ks::Internal("symbol defined in dropped section");
    }
    Symbol sym;
    sym.name = def.name;
    sym.binding = binding.count(def.name) != 0 ? SymbolBinding::kGlobal
                                               : SymbolBinding::kLocal;
    sym.kind = asec.kind == SectionKind::kText ? SymbolKind::kFunction
                                               : SymbolKind::kObject;
    sym.section = section_index[def.section];
    sym.value = offsets[def.position];
    if (symbol_index.count(def.name) != 0) {
      return ks::InvalidArgument(ks::StrPrintf(
          "%s: duplicate symbol '%s'", source_name_.c_str(),
          def.name.c_str()));
    }
    symbol_index[def.name] = obj.AddSymbol(std::move(sym));
  }

  // Emit payloads and relocations.
  auto reloc_symbol = [&](const std::string& name) -> int {
    auto it = symbol_index.find(name);
    if (it != symbol_index.end()) {
      return it->second;
    }
    return obj.InternUndefinedSymbol(name);
  };

  for (size_t si = 0; si < sections_.size(); ++si) {
    if (section_index[si] < 0) {
      continue;
    }
    AsmSection& asec = sections_[si];
    Section& sec = obj.sections()[static_cast<size_t>(section_index[si])];
    std::vector<uint32_t> offsets = ComputeOffsets(asec);
    if (asec.kind == SectionKind::kBss) {
      continue;  // size already recorded
    }
    for (size_t i = 0; i < asec.items.size(); ++i) {
      AsmItem& item = asec.items[i];
      uint32_t item_off = offsets[i];
      switch (item.kind) {
        case AsmItem::Kind::kBytes: {
          sec.bytes.insert(sec.bytes.end(), item.bytes.begin(),
                           item.bytes.end());
          for (const ItemReloc& r : item.relocs) {
            sec.relocs.push_back(kelf::Relocation{
                .offset = item_off + r.offset,
                .type = r.type,
                .symbol = reloc_symbol(r.symbol),
                .addend = r.addend,
            });
          }
          break;
        }
        case AsmItem::Kind::kBranch: {
          auto label = asec.labels.find(item.target);
          if (label != asec.labels.end()) {
            uint32_t target_off = offsets[label->second];
            Insn insn;
            uint32_t len = item.branch_op == Op::kCall ? 5
                           : item.is_long              ? 5
                                                       : 2;
            insn.op = item.branch_op == Op::kCall ? Op::kCall
                      : item.is_long ? item.branch_op
                                     : ShortForm(item.branch_op);
            insn.rel = static_cast<int32_t>(target_off) -
                       static_cast<int32_t>(item_off + len);
            std::vector<uint8_t> bytes = Encode(insn);
            sec.bytes.insert(sec.bytes.end(), bytes.begin(), bytes.end());
          } else {
            Insn insn;
            insn.op = item.branch_op;
            insn.rel = 0;
            std::vector<uint8_t> bytes = Encode(insn);
            uint32_t field = item_off + static_cast<uint32_t>(bytes.size()) - 4;
            sec.bytes.insert(sec.bytes.end(), bytes.begin(), bytes.end());
            sec.relocs.push_back(kelf::Relocation{
                .offset = field,
                .type = RelocType::kPcrel32,
                .symbol = reloc_symbol(item.target),
                .addend = -4,
            });
          }
          break;
        }
        case AsmItem::Kind::kAlign: {
          uint32_t pad =
              (item.align - (item_off % item.align)) % item.align;
          if (asec.kind == SectionKind::kText) {
            AppendNopFill(sec.bytes, pad);
          } else {
            sec.bytes.insert(sec.bytes.end(), pad, 0);
          }
          break;
        }
      }
    }
  }

  // Symbol sizes: distance to the next symbol in the same section, or to
  // the end of the section.
  for (kelf::Symbol& sym : obj.symbols()) {
    if (!sym.defined()) {
      continue;
    }
    const Section& sec = obj.sections()[static_cast<size_t>(sym.section)];
    uint32_t next = sec.size();
    for (const kelf::Symbol& other : obj.symbols()) {
      if (other.defined() && other.section == sym.section &&
          other.value > sym.value && other.value < next) {
        next = other.value;
      }
    }
    sym.size = next - sym.value;
  }

  KS_RETURN_IF_ERROR(obj.Validate());
  return obj;
}

}  // namespace

ks::Result<kelf::ObjectFile> Assemble(std::string_view source,
                                      std::string source_name,
                                      const AsmOptions& options) {
  Assembler assembler(std::move(source_name), options);
  return assembler.Run(source);
}

}  // namespace kvx
