// The KVX assembler ("kas"): translates textual assembly into kelf object
// files. It plays the role gas plays in the paper's pipeline — kcc emits
// assembly text, kas assembles it; hand-written .kvs files (the analogue of
// the kernel's ia32entry.S) go through the same path.
//
// Behaviours that matter to Ksplice:
//  - Jump relaxation: intra-section branches to known labels use the rel8
//    form when the displacement fits and the rel32 form otherwise.
//    Cross-section and undefined targets always use rel32 plus a PCREL32
//    relocation with addend -4.
//  - -ffunction-sections / -fdata-sections: when enabled, every non-local
//    label in .text/.data/.bss starts a fresh section named
//    ".text.<name>" / ".data.<name>" / ".bss.<name>". When disabled, the
//    whole file shares one ".text"/".data"/".bss" and intra-file branches
//    are resolved at assembly time with no relocation — exactly the
//    monolithic layout the paper says makes naive differencing useless.
//  - Function alignment: a no-op filler pads text to `func_align` before
//    every function label, so run images contain inter-function no-op
//    sequences the matcher must skip.
//
// Syntax (one statement per line; ';' or '#' start comments):
//   .text | .data | .bss          segment switch
//   .global NAME                  export NAME
//   .align N                      pad to N (no-ops in text, zeroes in data)
//   .word expr[, expr...]         32-bit values; symbols produce ABS32 relocs
//   .byte n[, n...]               8-bit values
//   .space N                      N zero bytes (the only payload in .bss)
//   .asciz "text"                 NUL-terminated string
//   .ksplice_apply SYM            pointer in note section ".ksplice.apply"
//     (likewise .ksplice_pre_apply, .ksplice_post_apply, .ksplice_reverse,
//      .ksplice_pre_reverse, .ksplice_post_reverse)
//   name:                         define symbol (function in .text)
//   .name:                        section-local label (branch target only)
//   mov r0, 42 | mov r0, =sym+4 | mov r0, r1
//   add/sub/cmp/and r, (r|imm)   mul/or/xor/div/mod/shl/shr r, r
//   load r, [r] | store [r], r | loadb r, [r] | storeb [r], r
//   push r | pop r | call sym | callr r | ret | jmp/jz/jnz/jlt/jge/jgt/jle t
//   sys N | halt | nop

#ifndef KSPLICE_KVX_ASM_H_
#define KSPLICE_KVX_ASM_H_

#include <string>
#include <string_view>

#include "base/status.h"
#include "kelf/objfile.h"

namespace kvx {

struct AsmOptions {
  bool function_sections = false;
  bool data_sections = false;
  uint32_t func_align = 8;
};

// Assembles `source` into an object file named `source_name`.
ks::Result<kelf::ObjectFile> Assemble(std::string_view source,
                                      std::string source_name,
                                      const AsmOptions& options);

}  // namespace kvx

#endif  // KSPLICE_KVX_ASM_H_
