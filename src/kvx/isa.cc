#include "kvx/isa.h"

#include <array>
#include <cassert>

#include "base/endian.h"
#include "base/strings.h"

namespace kvx {

namespace {

constexpr OpInfo kInvalid{};

struct TableEntry {
  Op op;
  OpInfo info;
};

// reg1/reg2 occupy bytes 1 and 2 when present; imm32 is at byte 2 (after one
// register byte); rel8 at byte 1; rel32 occupies the final 4 bytes.
constexpr TableEntry kTable[] = {
    {Op::kHalt, {"halt", 1, false, false, false, false, false, false, false}},
    {Op::kNop, {"nop", 1, false, false, false, false, false, false, true}},
    {Op::kNopW, {"nopw", 2, false, false, false, false, false, false, true}},
    {Op::kNopN, {"nopn", 0, false, false, false, false, false, false, true}},

    {Op::kMovRI, {"mov", 6, true, false, true, false, false, false, false}},
    {Op::kMovRR, {"mov", 3, true, true, false, false, false, false, false}},
    {Op::kLoadI, {"load", 3, true, true, false, false, false, false, false}},
    {Op::kStoreI, {"store", 3, true, true, false, false, false, false, false}},
    {Op::kLoadF, {"loadf", 3, true, true, false, false, false, false, false}},
    {Op::kLoadBI, {"loadb", 3, true, true, false, false, false, false, false}},
    {Op::kStoreBI,
     {"storeb", 3, true, true, false, false, false, false, false}},
    {Op::kBug, {"bug", 1, false, false, false, false, false, false, false}},

    {Op::kAddRR, {"add", 3, true, true, false, false, false, false, false}},
    {Op::kSubRR, {"sub", 3, true, true, false, false, false, false, false}},
    {Op::kMulRR, {"mul", 3, true, true, false, false, false, false, false}},
    {Op::kAndRR, {"and", 3, true, true, false, false, false, false, false}},
    {Op::kOrRR, {"or", 3, true, true, false, false, false, false, false}},
    {Op::kXorRR, {"xor", 3, true, true, false, false, false, false, false}},
    {Op::kCmpRR, {"cmp", 3, true, true, false, false, false, false, false}},
    {Op::kDivRR, {"div", 3, true, true, false, false, false, false, false}},
    {Op::kAddRI, {"add", 6, true, false, true, false, false, false, false}},
    {Op::kSubRI, {"sub", 6, true, false, true, false, false, false, false}},
    {Op::kCmpRI, {"cmp", 6, true, false, true, false, false, false, false}},
    {Op::kAndRI, {"and", 6, true, false, true, false, false, false, false}},
    {Op::kModRR, {"mod", 3, true, true, false, false, false, false, false}},
    {Op::kShlRR, {"shl", 3, true, true, false, false, false, false, false}},
    {Op::kShrRR, {"shr", 3, true, true, false, false, false, false, false}},

    {Op::kPush, {"push", 2, true, false, false, false, false, false, false}},
    {Op::kPop, {"pop", 2, true, false, false, false, false, false, false}},

    {Op::kCall, {"call", 5, false, false, false, false, false, true, false}},
    {Op::kCallR, {"callr", 2, true, false, false, false, false, false, false}},
    {Op::kRet, {"ret", 1, false, false, false, false, false, false, false}},

    {Op::kJmp8, {"jmp", 2, false, false, false, false, true, false, false}},
    {Op::kJmp32, {"jmp", 5, false, false, false, false, false, true, false}},
    {Op::kJz8, {"jz", 2, false, false, false, false, true, false, false}},
    {Op::kJz32, {"jz", 5, false, false, false, false, false, true, false}},
    {Op::kJnz8, {"jnz", 2, false, false, false, false, true, false, false}},
    {Op::kJnz32, {"jnz", 5, false, false, false, false, false, true, false}},
    {Op::kJlt8, {"jlt", 2, false, false, false, false, true, false, false}},
    {Op::kJlt32, {"jlt", 5, false, false, false, false, false, true, false}},
    {Op::kJge8, {"jge", 2, false, false, false, false, true, false, false}},
    {Op::kJge32, {"jge", 5, false, false, false, false, false, true, false}},
    {Op::kJgt8, {"jgt", 2, false, false, false, false, true, false, false}},
    {Op::kJgt32, {"jgt", 5, false, false, false, false, false, true, false}},
    {Op::kJle8, {"jle", 2, false, false, false, false, true, false, false}},
    {Op::kJle32, {"jle", 5, false, false, false, false, false, true, false}},

    {Op::kSys, {"sys", 2, false, false, false, true, false, false, false}},
};

const std::array<OpInfo, 256>& InfoTable() {
  static const std::array<OpInfo, 256> table = [] {
    std::array<OpInfo, 256> t{};
    for (const TableEntry& e : kTable) {
      t[static_cast<uint8_t>(e.op)] = e.info;
    }
    return t;
  }();
  return table;
}

}  // namespace

const OpInfo& GetOpInfo(uint8_t opcode) {
  const OpInfo& info = InfoTable()[opcode];
  return info.mnemonic != nullptr ? info : kInvalid;
}

const OpInfo& GetOpInfo(Op op) { return GetOpInfo(static_cast<uint8_t>(op)); }

bool IsPcRelative(Op op) {
  const OpInfo& info = GetOpInfo(op);
  return info.has_rel8 || info.has_rel32;
}

Op LongForm(Op op) {
  switch (op) {
    case Op::kJmp8:
      return Op::kJmp32;
    case Op::kJz8:
      return Op::kJz32;
    case Op::kJnz8:
      return Op::kJnz32;
    case Op::kJlt8:
      return Op::kJlt32;
    case Op::kJge8:
      return Op::kJge32;
    case Op::kJgt8:
      return Op::kJgt32;
    case Op::kJle8:
      return Op::kJle32;
    default:
      return op;
  }
}

Op ShortForm(Op op) {
  switch (op) {
    case Op::kJmp32:
      return Op::kJmp8;
    case Op::kJz32:
      return Op::kJz8;
    case Op::kJnz32:
      return Op::kJnz8;
    case Op::kJlt32:
      return Op::kJlt8;
    case Op::kJge32:
      return Op::kJge8;
    case Op::kJgt32:
      return Op::kJgt8;
    case Op::kJle32:
      return Op::kJle8;
    default:
      return op;
  }
}

bool SameBranchFamily(Op a, Op b) {
  if (!IsPcRelative(a) || !IsPcRelative(b)) {
    return false;
  }
  return LongForm(a) == LongForm(b);
}

int Imm32FieldOffset(Op op) {
  const OpInfo& info = GetOpInfo(op);
  if (info.has_imm32) {
    return 2;
  }
  if (info.has_rel32) {
    return static_cast<int>(info.length) - 4;
  }
  return -1;
}

bool IsMemStore(Op op) {
  return op == Op::kStoreI || op == Op::kStoreBI;
}

bool IsMemLoad(Op op) {
  return op == Op::kLoadI || op == Op::kLoadBI || op == Op::kLoadF;
}

int MemAccessWidth(Op op) {
  switch (op) {
    case Op::kLoadI:
    case Op::kLoadF:
    case Op::kStoreI:
      return 4;
    case Op::kLoadBI:
    case Op::kStoreBI:
      return 1;
    default:
      return 0;
  }
}

int MemAddrRegister(const Insn& insn) {
  if (IsMemStore(insn.op)) {
    return insn.reg1;  // store [rd], rs
  }
  if (IsMemLoad(insn.op)) {
    return insn.reg2;  // load rd, [rs]
  }
  return -1;
}

int MemValueRegister(const Insn& insn) {
  if (IsMemStore(insn.op)) {
    return insn.reg2;
  }
  if (IsMemLoad(insn.op)) {
    return insn.reg1;
  }
  return -1;
}

void AppendCanonicalBytes(const Insn& insn, std::vector<uint8_t>& out) {
  const OpInfo& info = GetOpInfo(insn.op);
  if (info.mnemonic == nullptr || info.is_nop) {
    return;
  }
  out.push_back(static_cast<uint8_t>(LongForm(insn.op)));
  if (info.has_reg1) {
    out.push_back(insn.reg1);
  }
  if (info.has_reg2) {
    out.push_back(insn.reg2);
  }
  if (info.has_imm8) {
    out.push_back(static_cast<uint8_t>(insn.imm));
  }
}

ks::Result<Insn> Decode(std::span<const uint8_t> bytes) {
  if (bytes.empty()) {
    return ks::InvalidArgument("kvx: decode past end of code");
  }
  uint8_t opcode = bytes[0];
  const OpInfo& info = GetOpInfo(opcode);
  if (info.mnemonic == nullptr) {
    return ks::InvalidArgument(
        ks::StrPrintf("kvx: invalid opcode 0x%02x", opcode));
  }
  Insn insn;
  insn.op = static_cast<Op>(opcode);

  uint8_t length = info.length;
  if (insn.op == Op::kNopN) {
    if (bytes.size() < 2) {
      return ks::InvalidArgument("kvx: truncated nopn");
    }
    length = bytes[1];
    if (length < 2 || length > 15) {
      return ks::InvalidArgument(
          ks::StrPrintf("kvx: nopn with bad length %u", length));
    }
  }
  if (bytes.size() < length) {
    return ks::InvalidArgument(ks::StrPrintf(
        "kvx: truncated instruction (opcode 0x%02x needs %u bytes, have %zu)",
        opcode, length, bytes.size()));
  }
  insn.len = length;

  size_t pos = 1;
  if (info.has_reg1) {
    insn.reg1 = bytes[pos++];
    if (insn.reg1 >= kNumRegs) {
      return ks::InvalidArgument(
          ks::StrPrintf("kvx: bad register r%u", insn.reg1));
    }
  }
  if (info.has_reg2) {
    insn.reg2 = bytes[pos++];
    if (insn.reg2 >= kNumRegs) {
      return ks::InvalidArgument(
          ks::StrPrintf("kvx: bad register r%u", insn.reg2));
    }
  }
  if (info.has_imm32) {
    insn.imm = ks::ReadLe32(bytes.data() + pos);
  }
  if (info.has_imm8) {
    insn.imm = bytes[pos];
  }
  if (info.has_rel8) {
    insn.rel = static_cast<int8_t>(bytes[1]);
  }
  if (info.has_rel32) {
    insn.rel =
        static_cast<int32_t>(ks::ReadLe32(bytes.data() + (length - 4)));
  }
  return insn;
}

std::vector<uint8_t> Encode(const Insn& insn) {
  const OpInfo& info = GetOpInfo(insn.op);
  assert(info.mnemonic != nullptr);
  uint8_t length = info.length;
  if (insn.op == Op::kNopN) {
    assert(insn.len >= 2 && insn.len <= 15);
    length = insn.len;
  }
  std::vector<uint8_t> out(length, 0);
  out[0] = static_cast<uint8_t>(insn.op);
  size_t pos = 1;
  if (insn.op == Op::kNopN) {
    out[1] = length;
    return out;
  }
  if (info.has_reg1) {
    out[pos++] = insn.reg1;
  }
  if (info.has_reg2) {
    out[pos++] = insn.reg2;
  }
  if (info.has_imm32) {
    ks::WriteLe32(out.data() + pos, insn.imm);
  }
  if (info.has_imm8) {
    out[pos] = static_cast<uint8_t>(insn.imm);
  }
  if (info.has_rel8) {
    out[1] = static_cast<uint8_t>(static_cast<int8_t>(insn.rel));
  }
  if (info.has_rel32) {
    ks::WriteLe32(out.data() + (length - 4), static_cast<uint32_t>(insn.rel));
  }
  return out;
}

void AppendNopFill(std::vector<uint8_t>& out, uint32_t n) {
  while (n > 0) {
    if (n == 1) {
      out.push_back(static_cast<uint8_t>(Op::kNop));
      n -= 1;
    } else if (n == 2) {
      out.push_back(static_cast<uint8_t>(Op::kNopW));
      out.push_back(0);
      n -= 2;
    } else {
      uint32_t chunk = n > 15 ? 15 : n;
      out.push_back(static_cast<uint8_t>(Op::kNopN));
      out.push_back(static_cast<uint8_t>(chunk));
      for (uint32_t i = 2; i < chunk; ++i) {
        out.push_back(0);
      }
      n -= chunk;
    }
  }
}

WalkEnd WalkInsns(std::span<const uint8_t> code,
                  const std::function<bool(uint32_t, const Insn&)>& visit) {
  WalkEnd walk;
  uint32_t pos = 0;
  while (pos < code.size()) {
    ks::Result<Insn> insn = Decode(code.subspan(pos));
    if (!insn.ok()) {
      walk.end = pos;
      walk.decode_ok = false;
      walk.error = insn.status().message();
      return walk;
    }
    bool keep_going = visit(pos, *insn);
    pos += insn->len;
    if (!keep_going) {
      break;
    }
  }
  walk.end = pos;
  return walk;
}

std::string FormatInsn(const Insn& insn) {
  const OpInfo& info = GetOpInfo(insn.op);
  if (info.mnemonic == nullptr) {
    return "(bad)";
  }
  std::string out = info.mnemonic;
  bool first = true;
  auto sep = [&]() -> std::string& {
    out += first ? " " : ", ";
    first = false;
    return out;
  };
  if (info.has_reg1) {
    sep() += ks::StrPrintf("r%u", insn.reg1);
  }
  if (info.has_reg2) {
    sep() += ks::StrPrintf("r%u", insn.reg2);
  }
  if (info.has_imm32 || info.has_imm8) {
    sep() += ks::StrPrintf("0x%x", insn.imm);
  }
  if (info.has_rel8 || info.has_rel32) {
    sep() += insn.rel < 0 ? ks::StrPrintf("-0x%x", -insn.rel)
                          : ks::StrPrintf("+0x%x", insn.rel);
  }
  return out;
}

std::string Disassemble(std::span<const uint8_t> bytes, uint32_t base_addr) {
  std::string out;
  size_t pos = 0;
  while (pos < bytes.size()) {
    ks::Result<Insn> insn = Decode(bytes.subspan(pos));
    if (!insn.ok()) {
      out += ks::StrPrintf("%08x:  .byte 0x%02x\n",
                           base_addr + static_cast<uint32_t>(pos),
                           bytes[pos]);
      ++pos;
      continue;
    }
    out += ks::StrPrintf("%08x:  %s\n", base_addr + static_cast<uint32_t>(pos),
                         FormatInsn(*insn).c_str());
    pos += insn->len;
  }
  return out;
}

}  // namespace kvx
