// KVX: the toy instruction-set architecture of the Ksplice reproduction.
//
// KVX is deliberately x86-flavoured in the properties Ksplice's run-pre
// matcher depends on (paper §4.3):
//  - variable-length instructions (1 to 15 bytes), so the matcher needs an
//    instruction-length table to walk code;
//  - pc-relative control flow with *two* encodings (rel8 and rel32) chosen
//    by assembler relaxation, so equal source can yield different bytes and
//    the matcher must verify that jumps point to *corresponding* locations;
//  - pc-relative displacements are relative to the END of the instruction
//    (like x86), so PCREL32 relocations carry addend -4;
//  - multi-byte no-op sequences emitted by the assembler for alignment,
//    which the matcher must recognize and skip.
//
// Registers: r0..r7 are 32-bit GPRs. By convention r6 is the frame pointer
// ("fp") and r7 the stack pointer ("sp"); CALL/RET/PUSH/POP use r7
// implicitly. Flags: Z (zero) and LT (signed less-than), set by CMP and by
// ALU register-register/register-immediate operations.

#ifndef KSPLICE_KVX_ISA_H_
#define KSPLICE_KVX_ISA_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "base/status.h"

namespace kvx {

inline constexpr int kNumRegs = 8;
inline constexpr int kRegFp = 6;
inline constexpr int kRegSp = 7;

// Length (bytes) of the trampoline jump Ksplice splices at the head of a
// replaced function: one JMP32 instruction.
inline constexpr uint32_t kTrampolineSize = 5;

enum class Op : uint8_t {
  kHalt = 0x00,   // stop the machine (panic)
  kNop = 0x01,    // 1-byte no-op
  kNopW = 0x02,   // 2-byte no-op (0x02 0x00)
  kNopN = 0x03,   // variable no-op: 0x03 <total-len> <pad...>, len in [2,15]

  kMovRI = 0x10,   // mov r, imm32       (6 bytes; imm at +2)
  kMovRR = 0x11,   // mov rd, rs         (3)
  kLoadI = 0x14,   // load rd, [rs]      (3)  32-bit
  kStoreI = 0x15,  // store [rd], rs     (3)  32-bit
  kLoadF = 0x16,   // loadf rd, [rs]     (3)  32-bit faulting load: a bad
                   //                    address traps to the extable fixup
                   //                    covering this pc instead of faulting
  kLoadBI = 0x17,  // loadb rd, [rs]     (3)  zero-extended byte
  kStoreBI = 0x18, // storeb [rd], rs    (3)  low byte
  kBug = 0x19,     // bug                (1)  BUG() trap: always faults; the
                   //                    bug table maps the trap pc to a
                   //                    source line for the report

  kAddRR = 0x20,  // add rd, rs (3); likewise below
  kSubRR = 0x21,
  kMulRR = 0x22,
  kAndRR = 0x23,
  kOrRR = 0x24,
  kXorRR = 0x25,
  kCmpRR = 0x26,  // flags from rd - rs
  kDivRR = 0x27,  // signed; divide-by-zero faults
  kAddRI = 0x28,  // add r, imm32 (6; imm at +2); likewise below
  kSubRI = 0x29,
  kCmpRI = 0x2a,
  kAndRI = 0x2b,
  kModRR = 0x2c,  // signed remainder; zero divisor faults
  kShlRR = 0x2d,
  kShrRR = 0x2e,  // logical

  kPush = 0x30,  // push r (2)
  kPop = 0x31,   // pop r (2)

  kCall = 0x40,   // call rel32 (5; displacement at +1, from insn end)
  kCallR = 0x41,  // call [r] indirect (2)
  kRet = 0x42,    // (1)

  kJmp8 = 0x43,   // jmp rel8  (2)
  kJmp32 = 0x44,  // jmp rel32 (5)
  kJz8 = 0x45,
  kJz32 = 0x46,
  kJnz8 = 0x47,
  kJnz32 = 0x48,
  kJlt8 = 0x49,
  kJlt32 = 0x4a,
  kJge8 = 0x4b,
  kJge32 = 0x4c,
  kJgt8 = 0x4d,
  kJgt32 = 0x4e,
  kJle8 = 0x4f,
  kJle32 = 0x50,

  kSys = 0x60,  // sys imm8 (2): host service bridge
};

// Host services reachable through SYS. Arguments in r0..r2, result in r0.
enum class Sys : uint8_t {
  kPrintk = 0,        // printk(r0 = address of NUL-terminated string)
  kTicks = 1,         // r0 = current virtual tick count (instructions)
  kYield = 2,         // invite the scheduler to preempt
  kSleep = 3,         // block current thread for r0 ticks
  kTid = 4,           // r0 = current thread id
  kRand = 5,          // r0 = deterministic pseudo-random value
  kExit = 6,          // terminate current thread
  kRecord = 7,        // append (r0, r1) to the machine observation log
  kKthread = 8,       // spawn kernel thread: entry r0, argument r1; r0 = tid
  kLockKernel = 9,    // acquire the big kernel lock (blocks)
  kUnlockKernel = 10, // release the big kernel lock
  kShadowAttach = 11, // r0 = shadow_attach(obj r0, key r1, size r2)
  kShadowGet = 12,    // r0 = shadow_get(obj r0, key r1), 0 if absent
  kShadowDetach = 13, // shadow_detach(obj r0, key r1)
  kKmalloc = 14,      // r0 = kmalloc(size r0), 0 on exhaustion
  kKfree = 15,        // kfree(addr r0)
};

// A decoded instruction.
struct Insn {
  Op op = Op::kNop;
  uint8_t len = 1;
  uint8_t reg1 = 0;   // first register operand, when present
  uint8_t reg2 = 0;   // second register operand, when present
  uint32_t imm = 0;   // imm32 for *RI forms; imm8 for SYS
  int32_t rel = 0;    // sign-extended branch displacement (rel8/rel32)
};

// Static properties of an opcode.
struct OpInfo {
  const char* mnemonic = nullptr;  // null => invalid opcode
  uint8_t length = 0;              // 0 => variable (kNopN)
  bool has_reg1 = false;
  bool has_reg2 = false;
  bool has_imm32 = false;  // 4-byte immediate at offset 2
  bool has_imm8 = false;   // 1-byte immediate at offset 1 (SYS)
  bool has_rel8 = false;   // 1-byte pc-relative displacement at offset 1
  bool has_rel32 = false;  // 4-byte pc-relative displacement at last 4 bytes
  bool is_nop = false;
};

// Returns the static properties of `op`; .mnemonic == nullptr for invalid
// encodings.
const OpInfo& GetOpInfo(Op op);
const OpInfo& GetOpInfo(uint8_t opcode);

// True if the opcode has a pc-relative displacement operand.
bool IsPcRelative(Op op);

// For branch opcodes with both short and long encodings, returns the rel32
// twin of a rel8 opcode and vice versa; returns `op` unchanged otherwise.
Op LongForm(Op op);
Op ShortForm(Op op);

// True if `a` and `b` are the same control transfer modulo displacement
// width (e.g. kJz8 vs kJz32). Reflexive.
bool SameBranchFamily(Op a, Op b);

// Byte offset, within the encoded instruction, of the 32-bit field that a
// relocation may patch (imm32 or rel32). Returns -1 if the opcode has no
// such field.
int Imm32FieldOffset(Op op);

// ---- Operand-effect decoding (kanalyze side-effect summaries) --------
//
// Memory-effect classification of an instruction: whether it reads or
// writes memory, how wide the access is, and which register operands
// carry the address and the value. The toy ISA only touches memory
// through LOAD/STORE (word) and LOADB/STOREB (byte) plus the implicit
// stack traffic of PUSH/POP/CALL/RET, so an abstract interpreter can
// attribute every explicit access from these four accessors alone.

// True if `op` stores to memory through a register-held address
// (kStoreI / kStoreBI). PUSH and CALL write the stack but are excluded:
// stack traffic is frame-local by construction.
bool IsMemStore(Op op);

// True if `op` loads from memory through a register-held address
// (kLoadI / kLoadBI). POP and RET are excluded for the same reason.
bool IsMemLoad(Op op);

// Access width in bytes for a memory-touching opcode (4 for LOAD/STORE,
// 1 for LOADB/STOREB); 0 when the opcode does not access memory through
// a register address.
int MemAccessWidth(Op op);

// The register operand holding the effective address of a memory access
// ("store [rd], rs" addresses through reg1; "load rd, [rs]" through
// reg2). -1 when `insn` is not a register-addressed memory access.
int MemAddrRegister(const Insn& insn);

// The register operand carrying the stored value / receiving the loaded
// value. -1 when `insn` is not a register-addressed memory access.
int MemValueRegister(const Insn& insn);

// Appends the canonical form of `insn` to `out`: the encoding with every
// byte an assembler or linker may legitimately vary removed. No-ops vanish
// entirely (alignment padding), rel8/rel32 displacement bytes are dropped
// and the opcode normalized to its rel32 twin (relaxation picks the width),
// and imm32 operand bytes are dropped (a relocation may have patched them
// in a linked image). What remains — normalized opcode, register operands,
// imm8 — is identical for any two encodings that Ksplice's run-pre matcher
// could prove equivalent, so equal canonical streams are a necessary
// condition for a run-pre match ("prefilter proposes, verifier decides").
void AppendCanonicalBytes(const Insn& insn, std::vector<uint8_t>& out);

// Decodes one instruction from `bytes`. Errors on invalid opcodes or
// truncated input. Never reads past bytes.size().
ks::Result<Insn> Decode(std::span<const uint8_t> bytes);

// ---- Shared decode walk ----------------------------------------------
//
// Every consumer that walks a code image instruction by instruction —
// run-pre canonicalization, the kanalyze CFG builder, the call-graph
// text scanner — used to carry its own copy of the decode/advance loop.
// WalkInsns is the single walker they share, so a new opcode added to
// kTable is picked up by every layer at once.

// Where a WalkInsns pass stopped and why.
struct WalkEnd {
  uint32_t end = 0;        // byte offset just past the last decoded insn
  bool decode_ok = true;   // false when the walk hit an undecodable byte
  std::string error;       // decode error message when !decode_ok
};

// Walks `code` from offset 0, decoding one instruction at a time and
// invoking `visit(offset, insn)` for each (including no-ops). A visitor
// returning false stops the walk early (the current instruction still
// counts as decoded: end advances past it, decode_ok stays true). On a
// decode error the walk stops with decode_ok=false and `end` at the
// offending offset.
WalkEnd WalkInsns(std::span<const uint8_t> code,
                  const std::function<bool(uint32_t, const Insn&)>& visit);

// Encodes `insn` (op, registers, imm, rel as applicable) into bytes.
// For kNopN, insn.len selects the total length (2..15).
std::vector<uint8_t> Encode(const Insn& insn);

// Appends an alignment no-op filler of exactly `n` bytes (using kNop, kNopW
// and kNopN as appropriate), as the assembler does for .align in text.
void AppendNopFill(std::vector<uint8_t>& out, uint32_t n);

// Renders one instruction as assembly-like text, for diagnostics:
// "jz +0x12" / "mov r3, 0x42" / "call -0x30".
std::string FormatInsn(const Insn& insn);

// Disassembles a code range for diagnostics; invalid bytes become ".byte".
std::string Disassemble(std::span<const uint8_t> bytes, uint32_t base_addr);

}  // namespace kvx

#endif  // KSPLICE_KVX_ISA_H_
