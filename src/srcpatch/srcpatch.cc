#include "srcpatch/srcpatch.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/strings.h"
#include "kcc/parser.h"
#include "kcc/preprocess.h"
#include "ksplice/prepost.h"
#include "kvx/isa.h"

namespace srcpatch {

namespace {

const char* kName[] = {
    "applied",          "failed_assembly",     "failed_signature",
    "failed_static_local", "failed_ambiguous", "failed_other",
};

// Extracts the source text of function `index` of `unit` from `contents`:
// from its first line to the line before the next top-level declaration.
std::string FunctionSlice(const std::string& contents,
                          const kcc::Unit& unit, size_t index) {
  const kcc::FuncDecl& fn = unit.functions[index];
  int begin = fn.line;
  int end = INT32_MAX;
  auto consider = [&](int line) {
    if (line > begin && line < end) {
      end = line;
    }
  };
  for (const kcc::FuncDecl& other : unit.functions) {
    consider(other.line);
  }
  for (const kcc::GlobalDecl& global : unit.globals) {
    consider(global.line);
  }
  for (const kcc::StructDef& def : unit.structs) {
    consider(def.line);
  }
  std::vector<std::string> lines = ks::SplitLines(contents);
  std::string out;
  for (int i = begin; i < end && i <= static_cast<int>(lines.size()); ++i) {
    out += lines[static_cast<size_t>(i - 1)];
    out += '\n';
  }
  return out;
}

std::string SignatureOf(const kcc::FuncDecl& fn) {
  std::string sig = fn.ret->ToString() + " " + fn.name + "(";
  for (size_t i = 0; i < fn.params.size(); ++i) {
    if (i != 0) {
      sig += ", ";
    }
    sig += fn.params[i].type->ToString();
  }
  sig += ")";
  return sig;
}

bool HasStaticLocal(const kcc::Stmt& stmt) {
  if (stmt.kind == kcc::Stmt::Kind::kDecl && stmt.is_static_local) {
    return true;
  }
  for (const kcc::Stmt* child :
       {stmt.init_stmt.get(), stmt.then_body.get(), stmt.else_body.get(),
        stmt.body.get()}) {
    if (child != nullptr && HasStaticLocal(*child)) {
      return true;
    }
  }
  for (const kcc::StmtPtr& child : stmt.stmts) {
    if (HasStaticLocal(*child)) {
      return true;
    }
  }
  return false;
}

std::vector<uint8_t> MakeTrampoline(uint32_t from, uint32_t to) {
  kvx::Insn jmp;
  jmp.op = kvx::Op::kJmp32;
  jmp.rel = static_cast<int32_t>(to - (from + kvx::kTrampolineSize));
  return kvx::Encode(jmp);
}

struct Candidate {
  std::string unit;
  std::string symbol;
};

struct Analysis {
  Report report;
  std::vector<Candidate> candidates;      // functions to replace
  std::vector<std::string> units;         // units with candidates
  kdiff::SourceTree post_tree;
};

ks::Result<Analysis> Analyze(const kdiff::SourceTree& pre_tree,
                             std::string_view patch_text,
                             const SourcePatchOptions& options) {
  Analysis analysis;
  Report& report = analysis.report;

  ks::Result<kdiff::Patch> patch = kdiff::ParseUnifiedDiff(patch_text);
  if (!patch.ok()) {
    return ks::Status(patch.status()).WithContext("srcpatch");
  }
  ks::Result<kdiff::SourceTree> post = kdiff::ApplyPatch(pre_tree, *patch);
  if (!post.ok()) {
    return ks::Status(post.status()).WithContext("srcpatch");
  }
  analysis.post_tree = *post;

  // Limitation: no assembly support.
  for (const std::string& path : patch->TouchedPaths()) {
    if (ks::EndsWith(path, ".kvs")) {
      report.outcome = Outcome::kFailedAssembly;
      report.detail = "patch modifies assembly file " + path;
      return analysis;
    }
  }

  // Source-level change detection, per touched C unit.
  std::set<std::string> unit_set;
  for (const std::string& path : patch->TouchedPaths()) {
    if (ks::EndsWith(path, ".kc") && pre_tree.Exists(path) &&
        post->Exists(path)) {
      unit_set.insert(path);
    }
  }
  for (const std::string& unit_path : unit_set) {
    // Function line numbers refer to the preprocessed unit, so slice that.
    ks::Result<kcc::PreprocessedSource> pre_src =
        kcc::Preprocess(pre_tree, unit_path);
    ks::Result<kcc::PreprocessedSource> post_src =
        kcc::Preprocess(*post, unit_path);
    if (!pre_src.ok() || !post_src.ok()) {
      report.outcome = Outcome::kFailedOther;
      report.detail = "cannot preprocess " + unit_path;
      return analysis;
    }
    ks::Result<kcc::Unit> pre_unit =
        kcc::ParseSource(pre_src->text, unit_path);
    ks::Result<kcc::Unit> post_unit =
        kcc::ParseSource(post_src->text, unit_path);
    if (!pre_unit.ok() || !post_unit.ok()) {
      report.outcome = Outcome::kFailedOther;
      report.detail = "cannot parse " + unit_path;
      return analysis;
    }
    const std::string& pre_text = pre_src->text;
    const std::string& post_text = post_src->text;

    bool unit_has_candidates = false;
    for (size_t pi = 0; pi < post_unit->functions.size(); ++pi) {
      const kcc::FuncDecl& post_fn = post_unit->functions[pi];
      if (!post_fn.is_definition) {
        continue;
      }
      // Find the pre counterpart.
      const kcc::FuncDecl* pre_fn = nullptr;
      size_t pre_index = 0;
      for (size_t qi = 0; qi < pre_unit->functions.size(); ++qi) {
        if (pre_unit->functions[qi].name == post_fn.name &&
            pre_unit->functions[qi].is_definition) {
          pre_fn = &pre_unit->functions[qi];
          pre_index = qi;
        }
      }
      if (pre_fn == nullptr) {
        continue;  // new function: support code, not a replacement target
      }
      std::string pre_slice = FunctionSlice(pre_text, *pre_unit, pre_index);
      std::string post_slice = FunctionSlice(post_text, *post_unit, pi);
      if (pre_slice == post_slice) {
        continue;  // source unchanged (the baseline looks no deeper)
      }
      if (SignatureOf(*pre_fn) != SignatureOf(post_fn)) {
        report.outcome = Outcome::kFailedSignature;
        report.detail = post_fn.name + ": signature changed";
        return analysis;
      }
      if (HasStaticLocal(*post_fn.body) || HasStaticLocal(*pre_fn->body)) {
        report.outcome = Outcome::kFailedStaticLocal;
        report.detail = post_fn.name + ": function has static locals";
        return analysis;
      }
      analysis.candidates.push_back(Candidate{unit_path, post_fn.name});
      report.replaced.push_back(post_fn.name);
      unit_has_candidates = true;
    }
    if (unit_has_candidates) {
      analysis.units.push_back(unit_path);
    }
  }
  if (analysis.candidates.empty()) {
    report.outcome = Outcome::kFailedOther;
    report.detail = "no changed function bodies found at the source level";
    return analysis;
  }

  // Ground truth from object-level differencing: everything whose object
  // code the patch changes. What the baseline does not replace, it misses.
  ks::Result<ksplice::PrePostResult> prepost =
      ksplice::RunPrePost(pre_tree, *patch, options.compile);
  if (prepost.ok()) {
    std::set<std::string> replaced(report.replaced.begin(),
                                   report.replaced.end());
    for (const ksplice::ChangedSection& change : prepost->changed) {
      if (change.kind != kelf::SectionKind::kText ||
          change.change != ksplice::SectionChange::kModified ||
          change.symbol.empty()) {
        continue;
      }
      if (replaced.count(change.symbol) == 0) {
        report.missed.push_back(change.unit + ":" + change.symbol);
      }
    }
  }

  report.outcome = Outcome::kApplied;
  return analysis;
}

}  // namespace

const char* OutcomeName(Outcome outcome) {
  return kName[static_cast<int>(outcome)];
}

ks::Result<Report> AnalyzeSourcePatch(const kdiff::SourceTree& pre_tree,
                                      std::string_view patch_text,
                                      const SourcePatchOptions& options) {
  KS_ASSIGN_OR_RETURN(Analysis analysis,
                      Analyze(pre_tree, patch_text, options));
  return analysis.report;
}

ks::Result<Report> SourceLevelApply(kvm::Machine& machine,
                                    const kdiff::SourceTree& pre_tree,
                                    std::string_view patch_text,
                                    const SourcePatchOptions& options) {
  KS_ASSIGN_OR_RETURN(Analysis analysis,
                      Analyze(pre_tree, patch_text, options));
  Report& report = analysis.report;
  if (report.outcome != Outcome::kApplied) {
    return report;
  }

  // Build the replacement module: compile each affected post unit with
  // function sections and extract the candidate (plus any new) sections.
  kcc::CompileOptions compile = options.compile;
  compile.function_sections = true;
  compile.data_sections = true;

  std::vector<kelf::ObjectFile> module_objects;
  for (const std::string& unit_path : analysis.units) {
    ks::Result<kelf::ObjectFile> post_obj =
        kcc::CompileUnit(analysis.post_tree, unit_path, compile);
    if (!post_obj.ok()) {
      report.outcome = Outcome::kFailedOther;
      report.detail = post_obj.status().message();
      return report;
    }
    // Included: candidate function sections + sections new vs pre build.
    ks::Result<kelf::ObjectFile> pre_obj =
        kcc::CompileUnit(pre_tree, unit_path, compile);
    if (!pre_obj.ok()) {
      report.outcome = Outcome::kFailedOther;
      report.detail = pre_obj.status().message();
      return report;
    }
    std::set<std::string> included;
    for (const Candidate& candidate : analysis.candidates) {
      if (candidate.unit == unit_path) {
        included.insert(".text." + candidate.symbol);
      }
    }
    for (const kelf::Section& section : post_obj->sections()) {
      if (!pre_obj->FindSection(section.name).has_value()) {
        included.insert(section.name);  // new function/data rides along
      }
    }

    kelf::ObjectFile module(unit_path);
    std::map<int, int> section_map;
    for (size_t si = 0; si < post_obj->sections().size(); ++si) {
      const kelf::Section& section = post_obj->sections()[si];
      if (included.count(section.name) == 0) {
        continue;
      }
      kelf::Section copy = section;
      copy.relocs.clear();
      section_map[static_cast<int>(si)] =
          module.AddSection(std::move(copy));
    }
    std::map<int, int> symbol_map;
    for (size_t yi = 0; yi < post_obj->symbols().size(); ++yi) {
      const kelf::Symbol& sym = post_obj->symbols()[yi];
      if (!sym.defined() || section_map.count(sym.section) == 0) {
        continue;
      }
      kelf::Symbol copy = sym;
      copy.section = section_map[sym.section];
      copy.binding = kelf::SymbolBinding::kLocal;  // avoid export clashes
      symbol_map[static_cast<int>(yi)] = module.AddSymbol(std::move(copy));
    }
    for (const auto& [post_idx, module_idx] : section_map) {
      const kelf::Section& post_sec =
          post_obj->sections()[static_cast<size_t>(post_idx)];
      kelf::Section& module_sec =
          module.sections()[static_cast<size_t>(module_idx)];
      for (const kelf::Relocation& rel : post_sec.relocs) {
        kelf::Relocation copy = rel;
        if (symbol_map.count(rel.symbol) != 0) {
          copy.symbol = symbol_map[rel.symbol];
        } else {
          // Symbol-table resolution: the baseline's only tool (§4.1).
          const kelf::Symbol& sym =
              post_obj->symbols()[static_cast<size_t>(rel.symbol)];
          copy.symbol = module.InternUndefinedSymbol(sym.name);
        }
        module_sec.relocs.push_back(copy);
      }
    }
    module_objects.push_back(std::move(module));
  }

  // Resolve imports strictly through the symbol table: a name bound more
  // than once is fatal for a source-level system.
  ks::Status ambiguity = ks::OkStatus();
  auto resolver = [&machine, &ambiguity](
                      const std::string& name) -> std::optional<uint32_t> {
    std::vector<kelf::LinkedSymbol> hits = machine.SymbolsNamed(name);
    if (hits.size() == 1) {
      return hits[0].address;
    }
    if (hits.size() > 1 && ambiguity.ok()) {
      ambiguity = ks::Aborted(ks::StrPrintf(
          "symbol '%s' appears %zu times in the symbol table",
          name.c_str(), hits.size()));
    }
    return std::nullopt;
  };
  ks::Result<kvm::ModuleHandle> handle =
      machine.LoadModule(module_objects, "srcpatch-update", resolver);
  if (!handle.ok()) {
    report.outcome = !ambiguity.ok() ? Outcome::kFailedAmbiguous
                                     : Outcome::kFailedOther;
    report.detail =
        !ambiguity.ok() ? ambiguity.message() : handle.status().message();
    return report;
  }
  ks::Result<kvm::ModuleInfo> info = machine.GetModuleInfo(*handle);
  if (!info.ok()) {
    return info.status();
  }

  // Splice each candidate.
  struct Splice {
    uint32_t from;
    uint32_t size;
    uint32_t to;
  };
  std::vector<Splice> splices;
  for (const Candidate& candidate : analysis.candidates) {
    uint32_t old_addr = 0;
    uint32_t old_size = 0;
    uint32_t new_addr = 0;
    int old_count = 0;
    for (const kelf::LinkedSymbol& sym :
         machine.SymbolsNamed(candidate.symbol)) {
      bool in_module = sym.address >= info->base &&
                       sym.address < info->base + info->size;
      if (in_module && sym.unit == candidate.unit) {
        new_addr = sym.address;
      } else if (!in_module && sym.kind == kelf::SymbolKind::kFunction) {
        old_addr = sym.address;
        old_size = sym.size;
        ++old_count;
      }
    }
    if (old_count != 1 || new_addr == 0 ||
        old_size < kvx::kTrampolineSize) {
      (void)machine.UnloadModule(*handle);
      report.outcome = old_count > 1 ? Outcome::kFailedAmbiguous
                                     : Outcome::kFailedOther;
      report.detail = "cannot locate unique '" + candidate.symbol + "'";
      return report;
    }
    splices.push_back(Splice{old_addr, old_size, new_addr});
  }

  ks::Status spliced = machine.StopMachine([&](kvm::Machine& m) {
    for (const kvm::ThreadInfo& thread : m.Threads()) {
      if (thread.state == kvm::ThreadState::kDone ||
          thread.state == kvm::ThreadState::kFaulted) {
        continue;
      }
      for (const Splice& splice : splices) {
        if (thread.pc >= splice.from && thread.pc < splice.from + splice.size) {
          return ks::FailedPrecondition("function in use");
        }
      }
    }
    for (const Splice& splice : splices) {
      KS_RETURN_IF_ERROR(m.WriteBytes(
          splice.from, MakeTrampoline(splice.from, splice.to)));
    }
    return ks::OkStatus();
  });
  if (!spliced.ok()) {
    (void)machine.UnloadModule(*handle);
    report.outcome = Outcome::kFailedOther;
    report.detail = spliced.message();
    return report;
  }
  return report;
}

}  // namespace srcpatch
