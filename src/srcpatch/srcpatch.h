// srcpatch: a source-level hot updater for legacy binaries, in the style
// of OPUS [Altekar 2005] — the baseline Ksplice's evaluation contrasts
// against (§3, §4, §6.3, §7.1).
//
// It determines what changed by comparing *source text* per function,
// compiles replacements for exactly those functions, and resolves symbols
// through the kernel symbol table. By design (to be a faithful baseline)
// it therefore inherits the limitations the paper enumerates:
//
//  - ambiguous symbol names cannot be resolved (§4.1): if a replacement
//    references a name bound more than once in kallsyms, it fails;
//  - changes to assembly files are unsupported (the source analyzer only
//    understands C);
//  - function signature changes and functions with static local variables
//    are unsupported (§6.3: "never been supported by an automatic
//    source-level hot update system");
//  - functions whose *object* code changed without their source changing
//    (header prototype edits, inlined callees) are silently missed — the
//    unsafety §4.2 warns about. AnalyzeMissedFunctions exposes the gap by
//    comparing against object-level pre-post differencing.

#ifndef KSPLICE_SRCPATCH_SRCPATCH_H_
#define KSPLICE_SRCPATCH_SRCPATCH_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "kvm/machine.h"

namespace srcpatch {

enum class Outcome {
  kApplied,            // replacements spliced (possibly unsafely!)
  kFailedAssembly,     // patch touches a .kvs file
  kFailedSignature,    // a changed function's signature changed
  kFailedStaticLocal,  // a changed function has static locals
  kFailedAmbiguous,    // a referenced symbol is ambiguous in kallsyms
  kFailedOther,
};

const char* OutcomeName(Outcome outcome);

struct Report {
  Outcome outcome = Outcome::kFailedOther;
  std::string detail;
  // Functions the baseline replaced (source-level view of the change).
  std::vector<std::string> replaced;
  // Functions whose OBJECT code the patch changes but which the baseline
  // did not replace (missed inline expansions, header-driven caller
  // changes). Non-empty => the "successful" update is incomplete/unsafe.
  std::vector<std::string> missed;
};

struct SourcePatchOptions {
  kcc::CompileOptions compile;
};

// Analyzes and (when possible) applies `patch_text` to the running
// `machine` at the source level. On kApplied the trampolines are installed
// under stop_machine with a stack-safety check; `report.missed` is always
// filled in by object-level differencing for comparison purposes.
ks::Result<Report> SourceLevelApply(kvm::Machine& machine,
                                    const kdiff::SourceTree& pre_tree,
                                    std::string_view patch_text,
                                    const SourcePatchOptions& options);

// The analysis half only (no machine needed): what would the baseline
// replace, what would it miss, and would it fail outright?
ks::Result<Report> AnalyzeSourcePatch(const kdiff::SourceTree& pre_tree,
                                      std::string_view patch_text,
                                      const SourcePatchOptions& options);

}  // namespace srcpatch

#endif  // KSPLICE_SRCPATCH_SRCPATCH_H_
