// Unit tests for base: Status/Result, string helpers, endian helpers.

#include <gtest/gtest.h>

#include "base/endian.h"
#include "base/status.h"
#include "base/strings.h"

namespace ks {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kOk);
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = NotFound("no symbol 'foo'");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kNotFound);
  EXPECT_EQ(st.message(), "no symbol 'foo'");
  EXPECT_EQ(st.ToString(), "not_found: no symbol 'foo'");
}

TEST(StatusTest, WithContextPrepends) {
  Status st = InvalidArgument("bad magic");
  st.WithContext("parsing module");
  EXPECT_EQ(st.message(), "parsing module: bad magic");
  EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status st;
  st.WithContext("anything");
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.message(), "");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(ErrorCodeName(ErrorCode::kOk), "ok");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kInvalidArgument), "invalid_argument");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kNotFound), "not_found");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kAlreadyExists), "already_exists");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kFailedPrecondition),
            "failed_precondition");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kAborted), "aborted");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kUnimplemented), "unimplemented");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kInternal), "internal");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kResourceExhausted),
            "resource_exhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Result<int> Half(int v) {
  if (v % 2 != 0) {
    return InvalidArgument("odd");
  }
  return v / 2;
}

Result<int> Quarter(int v) {
  KS_ASSIGN_OR_RETURN(int h, Half(v));
  KS_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> err = Quarter(6);  // 6/2=3, 3 is odd
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), ErrorCode::kInvalidArgument);
}

Status NeedsEven(int v) {
  KS_RETURN_IF_ERROR(Half(v).status());
  return OkStatus();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(NeedsEven(4).ok());
  EXPECT_FALSE(NeedsEven(5).ok());
}

TEST(StringsTest, StrPrintfFormats) {
  EXPECT_EQ(StrPrintf("x=%d y=%s", 7, "z"), "x=7 y=z");
  EXPECT_EQ(StrPrintf("%s", ""), "");
  // Long output exceeding any small static buffer.
  std::string big(500, 'a');
  EXPECT_EQ(StrPrintf("%s", big.c_str()).size(), 500u);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, SplitLinesDropsTrailingNewline) {
  EXPECT_EQ(SplitLines("a\nb\n"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitLines("a\nb"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitLines("\n"), (std::vector<std::string>{""}));
  EXPECT_TRUE(SplitLines("").empty());
}

TEST(StringsTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"x", "", "yz"};
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith(".text.foo", ".text."));
  EXPECT_FALSE(StartsWith(".tex", ".text"));
  EXPECT_TRUE(EndsWith("file.kc", ".kc"));
  EXPECT_FALSE(EndsWith("kc", ".kc"));
}

TEST(StringsTest, TrimStripsWhitespace) {
  EXPECT_EQ(Trim("  a b \t\r\n"), "a b");
  EXPECT_EQ(Trim("\t \n"), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, Hex32) {
  EXPECT_EQ(Hex32(0), "0x00000000");
  EXPECT_EQ(Hex32(0xf0111107u), "0xf0111107");
}

TEST(EndianTest, RoundTrip32) {
  uint8_t buf[4];
  WriteLe32(buf, 0x12345678u);
  EXPECT_EQ(buf[0], 0x78);
  EXPECT_EQ(buf[3], 0x12);
  EXPECT_EQ(ReadLe32(buf), 0x12345678u);
}

TEST(EndianTest, RoundTrip16And64) {
  uint8_t buf[8];
  WriteLe16(buf, 0xbeef);
  EXPECT_EQ(ReadLe16(buf), 0xbeef);
  WriteLe64(buf, 0x0102030405060708ull);
  EXPECT_EQ(ReadLe64(buf), 0x0102030405060708ull);
  EXPECT_EQ(buf[0], 0x08);
}

}  // namespace
}  // namespace ks
