// Chaos harness: drive every fault site wired into the tree (KS_FAULT_POINT,
// base/faultinject.h) through real apply/undo/batch workloads and assert the
// paper's core safety claim each time — a failed operation leaves the kernel
// byte-identical and the update registry consistent, and a subsequent clean
// operation succeeds. Three layers:
//
//   1. FaultInjector unit tests: plan grammar, modes, seeding, suppression.
//   2. Site-catalog coverage: one full create/serialize/boot/apply/undo
//      cycle must hit every site in KnownFaultSites().
//   3. Chaos proper: a per-site nth:1/nth:2 sweep over apply and undo, plus
//      seeded randomized rounds arming site combinations over random
//      apply/undo/batch sequences (KSPLICE_CHAOS_SEED reproduces a run).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/faultinject.h"
#include "base/metrics.h"
#include "kcc/compile.h"
#include "kcc/objcache.h"
#include "kdiff/diff.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "ksplice/quarantine.h"
#include "ksplice/watchdog.h"
#include "kvm/machine.h"

namespace ksplice {
namespace {

using kdiff::SourceTree;

// The injector is process-global; every test starts and ends disarmed.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { ks::Faults().Reset(); }
  void TearDown() override { ks::Faults().Reset(); }
};
using FaultInjectorTest = ChaosTest;
using ObjCacheChaosTest = ChaosTest;
using RendezvousChaosTest = ChaosTest;

kcc::CompileOptions Monolithic() {
  kcc::CompileOptions options;
  options.function_sections = false;
  options.data_sections = false;
  return options;
}

// Three independently patchable units (ops padded past the inline
// threshold so patches stay localized).
SourceTree TriKernel() {
  SourceTree tree;
  tree.Write("alpha.kc", R"(
int alpha_state = 100;
int alpha_op(int x) {
  int a = x + 1; int b = a + 2; int c = b + 3; int d = c + 4;
  int e = d + 5; int f = e + 6; int g = f + 7; int h = g + 8;
  return a + b + c + d + e + f + g + h + alpha_state;
}
void alpha_probe(int x) {
  record(11, alpha_op(x));
}
)");
  tree.Write("beta.kc", R"(
int beta_state = 200;
int beta_op(int x) {
  int a = x * 2; int b = a + 5; int c = b * 2; int d = c + 7;
  int e = d + 3; int f = e * 2; int g = f + 9; int h = g + 4;
  return a + b + c + d + e + f + g + h + beta_state;
}
void beta_probe(int x) {
  record(22, beta_op(x));
}
)");
  tree.Write("gamma.kc", R"(
int gamma_state = 300;
int gamma_op(int x) {
  int a = x + 9; int b = a * 3; int c = b - 2; int d = c + 1;
  int e = d + 8; int f = e - 3; int g = f * 2; int h = g + 6;
  return a + b + c + d + e + f + g + h + gamma_state;
}
void gamma_probe(int x) {
  record(33, gamma_op(x));
}
)");
  return tree;
}

std::unique_ptr<kvm::Machine> Boot(const SourceTree& tree) {
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, Monolithic());
  EXPECT_TRUE(objects.ok());
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  EXPECT_TRUE(machine.ok());
  return machine.ok() ? std::move(machine).value() : nullptr;
}

std::string EditTree(const SourceTree& tree, const std::string& path,
                     const std::string& from, const std::string& to,
                     SourceTree* post_out = nullptr) {
  SourceTree post = tree;
  std::string contents = *tree.Read(path);
  size_t at = contents.find(from);
  EXPECT_NE(at, std::string::npos);
  contents.replace(at, from.size(), to);
  post.Write(path, contents);
  if (post_out != nullptr) {
    *post_out = post;
  }
  return kdiff::MakeUnifiedDiff(tree, post);
}

ks::Result<CreateResult> Create(const SourceTree& tree,
                                const std::string& patch,
                                const std::string& id,
                                kcc::ObjectCache* cache = nullptr) {
  CreateOptions options;
  options.compile = Monolithic();
  options.compile.cache = cache;
  options.id = id;
  return CreateUpdate(tree, patch, options);
}

uint32_t Probe(kvm::Machine& machine, const std::string& probe, uint32_t arg,
               uint32_t key) {
  EXPECT_TRUE(machine.SpawnNamed(probe, arg).ok());
  EXPECT_TRUE(machine.RunToCompletion().ok());
  std::vector<uint32_t> values = machine.RecordsWithKey(key);
  EXPECT_FALSE(values.empty());
  return values.empty() ? 0 : values.back();
}

// The kernel image proper (text + data, excluding the module arena and
// stacks): the region the rollback invariant promises to leave untouched.
// Only meaningful while the injector is disarmed — ReadBytes is itself a
// fault site.
std::vector<uint8_t> KernelImage(const kvm::Machine& machine) {
  ks::Result<std::vector<uint8_t>> bytes = machine.ReadBytes(
      machine.config().kernel_base,
      machine.kernel_end() - machine.config().kernel_base);
  EXPECT_TRUE(bytes.ok());
  return bytes.ok() ? *bytes : std::vector<uint8_t>{};
}

std::vector<std::string> RegistryIds(const KspliceCore& core) {
  std::vector<std::string> ids;
  for (const AppliedUpdate& update : core.applied()) {
    ids.push_back(update.id);
  }
  return ids;
}

std::vector<std::string> StatusIds(const KspliceCore& core) {
  std::vector<std::string> ids;
  for (const UpdateStatusRow& update : core.Status().updates) {
    ids.push_back(update.id);
  }
  return ids;
}

// A two-function patch (alpha_op and alpha_probe both change) so nth:2
// sweeps can fault the second of two splice writes / restores.
ks::Result<CreateResult> CreateTwoFunctionPatch(const SourceTree& tree,
                                                const std::string& id) {
  SourceTree post;
  EditTree(tree, "alpha.kc", "int a = x + 1;", "int a = x + 10;", &post);
  std::string contents = *post.Read("alpha.kc");
  size_t at = contents.find("record(11, alpha_op(x));");
  EXPECT_NE(at, std::string::npos);
  contents.replace(at, std::string("record(11, alpha_op(x));").size(),
                   "record(11, alpha_op(x) + 1);");
  post.Write("alpha.kc", contents);
  CreateOptions options;
  options.compile = Monolithic();
  options.id = id;
  return CreateUpdate(tree, kdiff::MakeUnifiedDiff(tree, post), options);
}

// Deterministic PRNG for the randomized rounds (same core as the
// injector's, so a seed fully determines a run).
struct Rng {
  uint64_t state;
  uint64_t Next() {
    state += 0x9e3779b97f4a7c15u;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9u;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebu;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return Next() % n; }
  double Unit() { return static_cast<double>(Next() >> 11) / 9007199254740992.0; }
};

// ------------------------------------------------------ injector mechanics

TEST_F(FaultInjectorTest, PlanGrammarAcceptsFullForm) {
  ks::Status ok = ks::Faults().Configure(
      "kvm.write_bytes=nth:3,kcc.compile=prob:0.25@internal,"
      "kelf.link=always@not_found,kvm.read_bytes=once");
  ASSERT_TRUE(ok.ok()) << ok.ToString();
  EXPECT_EQ(ks::Faults().ArmedCount(), 4);
  EXPECT_TRUE(ks::Faults().Configure("kelf.link=off").ok());
  EXPECT_EQ(ks::Faults().ArmedCount(), 3);
}

TEST_F(FaultInjectorTest, BadPlansArmNothing) {
  const char* bad[] = {
      "no-equals-sign",          "site=",
      "site=wat",                "site=nth:",
      "site=nth:0",              "site=prob:1.5",
      "site=prob:x",             "site=always@bogus_code",
      "=always",                 "a=once,b=nth:zzz",
  };
  for (const char* plan : bad) {
    ks::Status st = ks::Faults().Configure(plan);
    EXPECT_FALSE(st.ok()) << "plan accepted: " << plan;
    // Rejection is atomic: even the valid clauses of a bad plan stay
    // disarmed.
    EXPECT_EQ(ks::Faults().ArmedCount(), 0) << plan;
  }
}

TEST_F(FaultInjectorTest, NthFailsExactlyThatHitThenHeals) {
  ks::Faults().ArmNth("chaos.unit", 3, ks::ErrorCode::kAborted);
  EXPECT_TRUE(ks::Faults().Check("chaos.unit").ok());
  EXPECT_TRUE(ks::Faults().Check("chaos.unit").ok());
  ks::Status injected = ks::Faults().Check("chaos.unit");
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.code(), ks::ErrorCode::kAborted);
  EXPECT_NE(injected.message().find("chaos.unit"), std::string::npos);
  // Healed: later hits pass, and the site no longer counts as armed.
  EXPECT_TRUE(ks::Faults().Check("chaos.unit").ok());
  EXPECT_EQ(ks::Faults().ArmedCount(), 0);
  EXPECT_EQ(ks::Faults().Injected("chaos.unit"), 1u);
  // Healing disarmed the last site, so the post-heal check was not
  // recorded: hit accounting only runs while something is armed.
  EXPECT_EQ(ks::Faults().Hits("chaos.unit"), 3u);
}

TEST_F(FaultInjectorTest, OnceIsNthOne) {
  ASSERT_TRUE(ks::Faults().Configure("chaos.unit=once@not_found").ok());
  ks::Status first = ks::Faults().Check("chaos.unit");
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), ks::ErrorCode::kNotFound);
  EXPECT_TRUE(ks::Faults().Check("chaos.unit").ok());
}

TEST_F(FaultInjectorTest, AlwaysFailsUntilDisarmed) {
  ks::Faults().ArmAlways("chaos.unit");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ks::Faults().Check("chaos.unit").code(),
              ks::ErrorCode::kInternal);
  }
  ks::Faults().Disarm("chaos.unit");
  EXPECT_TRUE(ks::Faults().Check("chaos.unit").ok());
  EXPECT_EQ(ks::Faults().Injected("chaos.unit"), 5u);
}

TEST_F(FaultInjectorTest, ProbabilityIsDeterministicUnderSeed) {
  std::vector<bool> first;
  ks::Faults().SetSeed(42);
  ks::Faults().ArmProbability("chaos.unit", 0.5);
  for (int i = 0; i < 64; ++i) {
    first.push_back(!ks::Faults().Check("chaos.unit").ok());
  }
  uint64_t injected = ks::Faults().Injected("chaos.unit");
  EXPECT_GT(injected, 0u);
  EXPECT_LT(injected, 64u);

  ks::Faults().Reset();
  ks::Faults().SetSeed(42);
  ks::Faults().ArmProbability("chaos.unit", 0.5);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(!ks::Faults().Check("chaos.unit").ok(), first[i]) << i;
  }
}

TEST_F(FaultInjectorTest, SuppressionExemptsRecoveryCode) {
  ks::Faults().ArmAlways("chaos.unit");
  EXPECT_FALSE(ks::ScopedFaultSuppression::Active());
  {
    ks::ScopedFaultSuppression guard;
    EXPECT_TRUE(ks::ScopedFaultSuppression::Active());
    EXPECT_TRUE(ks::Faults().Check("chaos.unit").ok());
    {
      ks::ScopedFaultSuppression nested;
      EXPECT_TRUE(ks::Faults().Check("chaos.unit").ok());
    }
    EXPECT_TRUE(ks::ScopedFaultSuppression::Active());
  }
  EXPECT_FALSE(ks::ScopedFaultSuppression::Active());
  EXPECT_FALSE(ks::Faults().Check("chaos.unit").ok());
}

// --------------------------------------------------------- site coverage

TEST_F(ChaosTest, EveryCatalogSiteIsReachable) {
  // Arm an inert sentinel: with anything armed the injector records hits
  // at every site, so one full workload proves each KS_FAULT_POINT in the
  // catalog actually executes.
  ks::Faults().ArmNth("chaos.sentinel", 1'000'000'000);

  SourceTree tree = TriKernel();

  // A hook-bearing patch exercises kvm.call_function at apply time.
  SourceTree post;
  EditTree(tree, "alpha.kc", "int a = x + 1;", "int a = x + 10;", &post);
  std::string contents = *post.Read("alpha.kc");
  contents +=
      "void setup_hook() {\n"
      "  alpha_state = alpha_state + 9000;\n"
      "}\n"
      "void teardown_hook() {\n"
      "  alpha_state = alpha_state - 9000;\n"
      "}\n"
      "ksplice_pre_apply(setup_hook);\n"
      "ksplice_post_reverse(teardown_hook);\n";
  post.Write("alpha.kc", contents);
  std::string patch = kdiff::MakeUnifiedDiff(tree, post);

  // Two creates through one cache: the first populates it
  // (kcc.objcache.write), the second is served from it (kcc.objcache.read
  // plus kelf.objfile.parse on the stored bytes).
  kcc::ObjectCache cache;
  ks::Result<CreateResult> first = Create(tree, patch, "coverage", &cache);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ks::Result<CreateResult> second = Create(tree, patch, "coverage-2", &cache);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  // Wire-format round trip: ksplice.package.parse + kelf.objfile.parse.
  std::vector<uint8_t> wire = first->package.Serialize();
  ks::Result<UpdatePackage> parsed = UpdatePackage::Parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);

  // Host-facing entry points that the plain apply path does not cross.
  ks::Result<uint32_t> state_addr = machine->GlobalSymbol("alpha_state");
  ASSERT_TRUE(state_addr.ok());
  ASSERT_TRUE(machine->WriteWord(*state_addr, *machine->ReadWord(*state_addr))
                  .ok());
  ks::Result<uint32_t> chunk = machine->HostKmalloc(16);
  ASSERT_TRUE(chunk.ok());
  ASSERT_TRUE(machine->HostKfree(*chunk).ok());
  (void)machine->UnloadGroup("chaos-no-such-group");

  KspliceCore core(machine.get());
  ks::Result<ApplyReport> applied = core.Apply(*parsed);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  ks::Result<UndoReport> undone = core.Undo("coverage");
  ASSERT_TRUE(undone.ok()) << undone.status().ToString();

  // The watchdog sites: one sampling pass (Poll) and one auto-revert
  // attempt on a re-applied update (Revert quarantines it on the way out).
  ks::Result<ApplyReport> reapplied = core.Apply(second->package);
  ASSERT_TRUE(reapplied.ok()) << reapplied.status().ToString();
  HealthMonitor monitor(&core.manager());
  monitor.Poll();
  AttributedFault trigger;
  trigger.update = "coverage-2";
  trigger.reason = "chaos catalog coverage drill";
  ks::Result<RevertReport> reverted = monitor.Revert("coverage-2", trigger);
  ASSERT_TRUE(reverted.ok()) << reverted.status().ToString();
  EXPECT_TRUE(reverted->reverted);

  for (const std::string& site : ks::KnownFaultSites()) {
    EXPECT_GT(ks::Faults().Hits(site), 0u)
        << "catalog site never executed: " << site;
  }
}

// ------------------------------------------------------- per-site sweeps

TEST_F(ChaosTest, ApplySweepEverySiteRollsBackByteIdentical) {
  SourceTree tree = TriKernel();
  ks::Result<CreateResult> created = CreateTwoFunctionPatch(tree, "sweep");
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  const std::vector<uint8_t> pristine = KernelImage(*machine);
  const uint32_t arena_pristine = machine->ModuleArenaBytesInUse();
  const size_t kallsyms_pristine = machine->Kallsyms().size();
  KspliceCore core(machine.get());

  for (const std::string& site : ks::KnownFaultSites()) {
    for (uint64_t nth = 1; nth <= 2; ++nth) {
      SCOPED_TRACE(site + " nth:" + std::to_string(nth));
      ks::Faults().Reset();
      ks::Faults().ArmNth(site, nth);
      ks::Result<ApplyReport> applied = core.Apply(created->package);
      ks::Faults().Reset();

      // Registry and status must agree no matter what happened.
      EXPECT_EQ(RegistryIds(core), StatusIds(core));

      if (!applied.ok() && core.applied().empty()) {
        // The common case: the fault aborted the transaction and every
        // completed stage was rolled back. No trace may remain.
        EXPECT_EQ(KernelImage(*machine), pristine);
        EXPECT_EQ(machine->ModuleArenaBytesInUse(), arena_pristine);
        EXPECT_EQ(machine->Kallsyms().size(), kallsyms_pristine);
      } else if (core.applied().size() == 1) {
        // Either the site was off the apply path (clean success) or the
        // fault hit the commit window, where splicing is already done and
        // the update must be registered despite the reported error.
        ASSERT_TRUE(core.Undo("sweep").ok());
        EXPECT_EQ(KernelImage(*machine), pristine);
      } else {
        FAIL() << "unexpected registry size " << core.applied().size();
      }

      // A failed attempt must not poison the machine: a clean apply and
      // undo always succeed afterwards.
      ks::Result<ApplyReport> clean = core.Apply(created->package);
      ASSERT_TRUE(clean.ok()) << clean.status().ToString();
      ASSERT_TRUE(core.Undo("sweep").ok());
      EXPECT_EQ(KernelImage(*machine), pristine);
    }
  }
}

TEST_F(ChaosTest, UndoSweepEverySiteRestoresOrAborts) {
  SourceTree tree = TriKernel();
  ks::Result<CreateResult> created = CreateTwoFunctionPatch(tree, "usweep");
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  const std::vector<uint8_t> pristine = KernelImage(*machine);
  KspliceCore core(machine.get());

  for (const std::string& site : ks::KnownFaultSites()) {
    for (uint64_t nth = 1; nth <= 2; ++nth) {
      SCOPED_TRACE(site + " nth:" + std::to_string(nth));
      ks::Faults().Reset();
      ASSERT_TRUE(core.Apply(created->package).ok());
      const std::vector<uint8_t> patched = KernelImage(*machine);
      ASSERT_NE(patched, pristine);

      ks::Faults().ArmNth(site, nth);
      ks::Result<UndoReport> undone = core.Undo("usweep");
      ks::Faults().Reset();
      EXPECT_EQ(RegistryIds(core), StatusIds(core));

      if (!undone.ok() && core.applied().size() == 1) {
        // Restore-or-abort: a fault mid-undo compensates any partial
        // restores and leaves the update fully applied.
        EXPECT_EQ(KernelImage(*machine), patched);
        ASSERT_TRUE(core.Undo("usweep").ok());
      } else if (core.applied().empty()) {
        // Off-path site (clean undo) or a post-commit fault (e.g. an
        // ignored helper-unload failure): the update is gone and the
        // kernel image is restored either way.
        EXPECT_EQ(KernelImage(*machine), pristine);
      } else {
        FAIL() << "unexpected registry size " << core.applied().size();
      }
      EXPECT_EQ(KernelImage(*machine), pristine);
    }
  }
}

// The safety net's own chaos contract (PR 10): with any one site primed
// to fail during an automatic revert, the machine ends byte-identical to
// exactly one of the two legal states — pristine (revert landed) or fully
// patched (revert refused, restore-or-abort) — and the package is
// quarantined either way. Never half-reverted. Since retries run under
// ScopedFaultSuppression, a single injected fault can delay the revert by
// one backoff round but cannot wedge it.
TEST_F(ChaosTest, WatchdogRevertSweepByteIdenticalOrQuarantined) {
  SourceTree tree = TriKernel();
  ks::Result<CreateResult> created = CreateTwoFunctionPatch(tree, "wd");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  const uint64_t hash = PackageContentHash(created->package);

  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  const std::vector<uint8_t> pristine = KernelImage(*machine);
  KspliceCore core(machine.get());

  for (const std::string& site : ks::KnownFaultSites()) {
    SCOPED_TRACE(site);
    ks::Faults().Reset();
    ASSERT_TRUE(core.Apply(created->package).ok());
    const std::vector<uint8_t> patched = KernelImage(*machine);
    ASSERT_NE(patched, pristine);

    ks::Faults().ArmNth(site, 1);
    HealthMonitor monitor(&core.manager());
    AttributedFault trigger;
    trigger.update = "wd";
    trigger.reason = "chaos revert sweep";
    ks::Result<RevertReport> revert = monitor.Revert("wd", trigger);
    ks::Faults().Reset();
    ASSERT_TRUE(revert.ok()) << revert.status().ToString();

    EXPECT_TRUE(revert->quarantined);
    EXPECT_TRUE(core.quarantine().Contains(hash));
    EXPECT_EQ(RegistryIds(core), StatusIds(core));
    if (revert->reverted) {
      EXPECT_EQ(KernelImage(*machine), pristine);
      EXPECT_TRUE(core.applied().empty());
    } else {
      // Failed revert: fully applied, with the undo error as diagnostics.
      EXPECT_EQ(KernelImage(*machine), patched);
      ASSERT_EQ(core.applied().size(), 1u);
      std::optional<QuarantineEntry> entry = core.quarantine().Find(hash);
      ASSERT_TRUE(entry.has_value());
      EXPECT_NE(entry->evidence.find("revert failed"), std::string::npos);
      ASSERT_TRUE(core.Undo("wd").ok());
    }
    EXPECT_EQ(KernelImage(*machine), pristine);

    // Clear the quarantine so the next iteration's Apply is not refused.
    EXPECT_TRUE(core.quarantine().Remove(hash));
  }
}

// --------------------------------------------------- randomized sequences

TEST_F(ChaosTest, RandomizedFaultCombinationsPreserveInvariants) {
  uint64_t seed = 0xC0FFEE;
  if (const char* env = std::getenv("KSPLICE_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 0);
  }
  // Print the seed so any failure reproduces with
  // KSPLICE_CHAOS_SEED=<seed>.
  std::printf("[chaos] KSPLICE_CHAOS_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  RecordProperty("chaos_seed", static_cast<int>(seed & 0x7fffffff));
  Rng rng{seed};

  SourceTree tree = TriKernel();
  struct Pkg {
    std::string id;
    UpdatePackage package;
  };
  std::vector<Pkg> pkgs;
  ks::Result<CreateResult> pa = Create(
      tree, EditTree(tree, "alpha.kc", "int a = x + 1;", "int a = x + 10;"),
      "rand-alpha");
  ASSERT_TRUE(pa.ok()) << pa.status().ToString();
  pkgs.push_back({"rand-alpha", pa->package});
  ks::Result<CreateResult> pb = Create(
      tree, EditTree(tree, "beta.kc", "int b = a + 5;", "int b = a + 50;"),
      "rand-beta");
  ASSERT_TRUE(pb.ok()) << pb.status().ToString();
  pkgs.push_back({"rand-beta", pb->package});
  ks::Result<CreateResult> pg = Create(
      tree, EditTree(tree, "gamma.kc", "int c = b - 2;", "int c = b - 20;"),
      "rand-gamma");
  ASSERT_TRUE(pg.ok()) << pg.status().ToString();
  pkgs.push_back({"rand-gamma", pg->package});

  const std::vector<std::string>& catalog = ks::KnownFaultSites();

  const int kRounds = 6;
  const int kStepsPerRound = 8;
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    std::unique_ptr<kvm::Machine> machine = Boot(tree);
    ASSERT_NE(machine, nullptr);
    const std::vector<uint8_t> pristine = KernelImage(*machine);
    KspliceCore core(machine.get());

    // A random plan: 2-4 sites, each nth:1-3 or prob:0.2-0.6.
    struct Clause {
      std::string site;
      bool prob;
      uint64_t nth;
      double p;
    };
    std::vector<Clause> plan;
    size_t sites = 2 + rng.Below(3);
    for (size_t i = 0; i < sites; ++i) {
      Clause clause;
      clause.site = catalog[rng.Below(catalog.size())];
      clause.prob = rng.Below(2) == 0;
      clause.nth = 1 + rng.Below(3);
      clause.p = 0.2 + 0.4 * rng.Unit();
      plan.push_back(clause);
    }
    ks::Faults().SetSeed(seed ^ (round * 0x9e3779b9u));
    auto rearm = [&plan] {
      for (const Clause& clause : plan) {
        if (clause.prob) {
          ks::Faults().ArmProbability(clause.site, clause.p);
        } else {
          ks::Faults().ArmNth(clause.site, clause.nth);
        }
      }
    };

    for (int step = 0; step < kStepsPerRound; ++step) {
      SCOPED_TRACE("step " + std::to_string(step));
      std::vector<std::string> before_ids = RegistryIds(core);
      const std::vector<uint8_t> before_image = KernelImage(*machine);
      const uint32_t before_arena = machine->ModuleArenaBytesInUse();

      // Pick an op legal in the current state: apply an unapplied
      // package, undo an applied one, or batch-apply all unapplied.
      std::vector<const Pkg*> unapplied;
      for (const Pkg& pkg : pkgs) {
        bool live = false;
        for (const std::string& id : before_ids) {
          live = live || id == pkg.id;
        }
        if (!live) {
          unapplied.push_back(&pkg);
        }
      }
      bool failed = false;
      rearm();
      int choice = static_cast<int>(rng.Below(3));
      if ((choice == 0 && !unapplied.empty()) || before_ids.empty()) {
        const Pkg& pkg = *unapplied[rng.Below(unapplied.size())];
        failed = !core.Apply(pkg.package).ok();
      } else if (choice == 1 && unapplied.size() >= 2) {
        std::vector<UpdatePackage> batch;
        for (const Pkg* pkg : unapplied) {
          batch.push_back(pkg->package);
        }
        failed = !core.ApplyAll(batch).ok();
      } else {
        failed = !core.Undo(before_ids[rng.Below(before_ids.size())]).ok();
      }
      ks::Faults().Reset();

      // Invariants after every op, failed or not: the registry matches
      // the status report, and a failed op that did not commit leaves
      // the kernel image and module arena untouched.
      std::vector<std::string> after_ids = RegistryIds(core);
      EXPECT_EQ(after_ids, StatusIds(core));
      if (failed && after_ids == before_ids) {
        EXPECT_EQ(KernelImage(*machine), before_image);
        EXPECT_EQ(machine->ModuleArenaBytesInUse(), before_arena);
      }
    }

    // End of round: clean undo of whatever survived must restore the
    // pristine image, and a clean apply/undo cycle must still work.
    ks::Faults().Reset();
    for (const std::string& id : RegistryIds(core)) {
      ASSERT_TRUE(core.Undo(id).ok()) << id;
    }
    EXPECT_EQ(KernelImage(*machine), pristine);
    ASSERT_TRUE(core.Apply(pkgs[0].package).ok());
    ASSERT_TRUE(core.Undo(pkgs[0].id).ok());
    EXPECT_EQ(KernelImage(*machine), pristine);
  }
}

// ------------------------------------------------ directed: undo restore

TEST_F(ChaosTest, UndoRestoreFaultCompensatesPartialRestore) {
  SourceTree tree = TriKernel();
  ks::Result<CreateResult> created = CreateTwoFunctionPatch(tree, "comp");
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  const uint32_t before = Probe(*machine, "alpha_probe", 1, 11);
  const std::vector<uint8_t> pristine = KernelImage(*machine);

  KspliceCore core(machine.get());
  ASSERT_TRUE(core.Apply(created->package).ok());
  ASSERT_EQ(core.Status().updates[0].functions, 2u);
  const uint32_t patched_value = Probe(*machine, "alpha_probe", 1, 11);
  ASSERT_NE(patched_value, before);
  const std::vector<uint8_t> patched = KernelImage(*machine);

  // Fault the SECOND of the two restores: the first function is already
  // back to original bytes when the fault fires, so the undo must re-
  // splice it (compensation) and abort with the update fully applied.
  ASSERT_TRUE(ks::Faults().Configure("ksplice.undo.restore=nth:2").ok());
  ks::Result<UndoReport> undone = core.Undo("comp");
  ks::Faults().Reset();
  ASSERT_FALSE(undone.ok());
  EXPECT_NE(undone.status().message().find("undoing"), std::string::npos);
  ASSERT_EQ(core.applied().size(), 1u);
  EXPECT_EQ(KernelImage(*machine), patched);
  EXPECT_EQ(Probe(*machine, "alpha_probe", 1, 11), patched_value);

  // The aborted undo must not wedge the update: a clean undo restores
  // the pristine image and original behavior.
  ASSERT_TRUE(core.Undo("comp").ok());
  EXPECT_EQ(KernelImage(*machine), pristine);
  EXPECT_EQ(Probe(*machine, "alpha_probe", 1, 11), before);
}

// --------------------------------------------------- directed: objcache

TEST_F(ObjCacheChaosTest, CorruptEntryIsServedAsAMissAndHealed) {
  SourceTree tree = TriKernel();
  std::string patch =
      EditTree(tree, "alpha.kc", "int a = x + 1;", "int a = x + 10;");
  kcc::ObjectCache cache;
  ks::Counter& corrupt = ks::Metrics().GetCounter("kcc.objcache.corrupt_entries");

  ASSERT_TRUE(Create(tree, patch, "cc-1", &cache).ok());
  ASSERT_GT(cache.size(), 0u);
  const uint64_t hits_after_first = cache.hits();
  ASSERT_TRUE(Create(tree, patch, "cc-2", &cache).ok());
  const uint64_t hits_after_second = cache.hits();
  ASSERT_GT(hits_after_second, hits_after_first);

  // Flip one bit in every stored entry — compiled objects AND the lint
  // pass's summary blobs share the checksum discipline. Each corrupted
  // entry must be detected, recomputed (a miss in its own traffic class,
  // counted as corrupt), and healed in place.
  const uint64_t corrupt_before = corrupt.value();
  const uint64_t misses_before = cache.misses();
  const uint64_t blob_misses_before = cache.blob_misses();
  const size_t damaged = cache.CorruptEntriesForTest();
  ASSERT_GT(damaged, 0u);
  ks::Result<CreateResult> after = Create(tree, patch, "cc-3", &cache);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(corrupt.value() - corrupt_before, damaged);
  EXPECT_EQ((cache.misses() - misses_before) +
                (cache.blob_misses() - blob_misses_before),
            damaged);

  // Healed: the next create is served entirely from the repaired entries.
  const uint64_t corrupt_after_heal = corrupt.value();
  const uint64_t misses_after_heal = cache.misses();
  const uint64_t blob_misses_after_heal = cache.blob_misses();
  ASSERT_TRUE(Create(tree, patch, "cc-4", &cache).ok());
  EXPECT_EQ(corrupt.value(), corrupt_after_heal);
  EXPECT_EQ(cache.misses(), misses_after_heal);
  EXPECT_EQ(cache.blob_misses(), blob_misses_after_heal);

  // The recompiled-from-corruption package is a working update.
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  KspliceCore core(machine.get());
  ASSERT_TRUE(core.Apply(after->package).ok());
  ASSERT_TRUE(core.Undo("cc-3").ok());
}

TEST_F(ObjCacheChaosTest, ReadAndWriteFaultsDegradeToRecompiles) {
  SourceTree tree = TriKernel();
  std::string patch =
      EditTree(tree, "beta.kc", "int b = a + 5;", "int b = a + 50;");

  // A write fault while populating the cache leaves the entry empty; the
  // create still succeeds and the next reader recompiles and heals it.
  {
    kcc::ObjectCache cache;
    ASSERT_TRUE(ks::Faults().Configure("kcc.objcache.write=once").ok());
    ASSERT_TRUE(Create(tree, patch, "wf-1", &cache).ok());
    ks::Faults().Reset();
    ASSERT_TRUE(Create(tree, patch, "wf-2", &cache).ok());
    ASSERT_TRUE(Create(tree, patch, "wf-3", &cache).ok());
  }

  // A read fault on a healthy entry is an unreadable cache: served as a
  // miss, never an error.
  {
    kcc::ObjectCache cache;
    ASSERT_TRUE(Create(tree, patch, "rf-1", &cache).ok());
    ASSERT_TRUE(ks::Faults().Configure("kcc.objcache.read=once").ok());
    ks::Result<CreateResult> second = Create(tree, patch, "rf-2", &cache);
    ks::Faults().Reset();
    ASSERT_TRUE(second.ok()) << second.status().ToString();
  }
}

// ------------------------------------------------- directed: rendezvous

TEST_F(RendezvousChaosTest, ExhaustionNamesBlockingThreadAndRecovers) {
  SourceTree tree = TriKernel();
  // A thread that spins inside the function being patched until the host
  // clears its flag: quiescence can never be reached while it loops.
  tree.Write("spinner.kc", R"(
int spin_flag = 1;
int spin_pad = 0;
int spin_op(int n) {
  while (spin_flag) {
    spin_pad = spin_pad + 1;
  }
  return spin_pad + n;
}
void spinner(int n) {
  record(55, spin_op(n));
}
)");
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  ASSERT_TRUE(machine->SpawnNamed("spinner", 7).ok());
  ASSERT_TRUE(machine->Run(10'000).ok());  // park it inside the loop

  ks::Result<CreateResult> created = Create(
      tree,
      EditTree(tree, "spinner.kc", "spin_pad = spin_pad + 1;",
               "spin_pad = spin_pad + 2;"),
      "spin-patch");
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  KspliceCore core(machine.get());
  ks::Counter& attempts = ks::Metrics().GetCounter("ksplice.rendezvous.attempts");
  ks::Counter& exhausted = ks::Metrics().GetCounter("ksplice.rendezvous.exhausted");

  // Attempt budget exhaustion: the error must name a blocking thread and
  // its PC so the operator knows *why* the update never landed.
  ApplyOptions options;
  options.rendezvous.max_attempts = 3;
  options.rendezvous.backoff_base_ticks = 1'000;
  options.rendezvous.backoff_max_ticks = 4'000;
  options.rendezvous.backoff_jitter = 0.25;
  const uint64_t attempts_before = attempts.value();
  const uint64_t exhausted_before = exhausted.value();
  ks::Result<ApplyReport> blocked = core.Apply(created->package, options);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), ks::ErrorCode::kResourceExhausted);
  EXPECT_NE(blocked.status().message().find("in use"), std::string::npos);
  EXPECT_NE(blocked.status().message().find("thread"), std::string::npos);
  EXPECT_NE(blocked.status().message().find("pc 0x"), std::string::npos);
  EXPECT_EQ(attempts.value() - attempts_before, 3u);
  EXPECT_EQ(exhausted.value() - exhausted_before, 1u);
  EXPECT_TRUE(core.applied().empty());

  // Deadline exhaustion: a huge attempt budget still gives up once the
  // retry ticks cross deadline_ticks.
  options.rendezvous.max_attempts = 1'000'000;
  options.rendezvous.deadline_ticks = 5'000;
  ks::Result<ApplyReport> deadline = core.Apply(created->package, options);
  ASSERT_FALSE(deadline.ok());
  EXPECT_EQ(deadline.status().code(), ks::ErrorCode::kResourceExhausted);
  EXPECT_NE(deadline.status().message().find("deadline"), std::string::npos);

  // Once the spinner yields, the same update applies cleanly.
  ks::Result<uint32_t> flag = machine->GlobalSymbol("spin_flag");
  ASSERT_TRUE(flag.ok());
  ASSERT_TRUE(machine->WriteWord(*flag, 0).ok());
  ASSERT_TRUE(machine->RunToCompletion().ok());
  ASSERT_FALSE(machine->RecordsWithKey(55).empty());
  ks::Result<ApplyReport> applied = core.Apply(created->package);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_GE(applied->attempts, 1);
  ASSERT_TRUE(core.Undo("spin-patch").ok());
}

}  // namespace
}  // namespace ksplice
