// Concurrency tests for the parallel update-creation pipeline: the work
// queue (base/threadpool.h), the content-addressed object cache
// (kcc/objcache.h), and the pipeline's determinism guarantee — parallel
// create runs produce bytes identical to the serial path, and the shared
// pre build is compiled exactly once. scripts/check_tsan.sh runs this
// binary under -fsanitize=thread.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/threadpool.h"
#include "corpus/corpus.h"
#include "kcc/compile.h"
#include "kcc/objcache.h"
#include "kelf/objfile.h"
#include "ksplice/create.h"

namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ks::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, WorkerCountIsInjectable) {
  ks::ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3);
  ks::ThreadPool defaulted;
  EXPECT_EQ(defaulted.workers(), ks::ThreadPool::DefaultWorkers());
  EXPECT_GE(ks::ThreadPool::DefaultWorkers(), 1);
}

TEST(ThreadPoolTest, WaitIsABarrierNotShutdown) {
  ks::ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<int> counts(57, 0);
  ks::ParallelFor(4, counts.size(), [&](size_t i) { counts[i] += 1; });
  for (int c : counts) {
    EXPECT_EQ(c, 1);
  }
}

TEST(ParallelForTest, SerialJobsRunInlineOnTheCaller) {
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(5);
  ks::ParallelFor(1, ids.size(),
                  [&](size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : ids) {
    EXPECT_EQ(id, caller);
  }
}

// First compilation unit of the corpus kernel, for cache probes.
std::string FirstUnit() {
  for (const std::string& path : corpus::KernelSource().Paths()) {
    if (kcc::IsCompilationUnit(path)) {
      return path;
    }
  }
  return "";
}

TEST(ObjectCacheTest, SecondLookupIsAHit) {
  kcc::ObjectCache cache;
  kcc::CompileOptions options = corpus::RunBuildOptions();
  options.cache = &cache;
  std::string unit = FirstUnit();
  ASSERT_FALSE(unit.empty());

  ks::Result<kelf::ObjectFile> first =
      kcc::CompileUnit(corpus::KernelSource(), unit, options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  ks::Result<kelf::ObjectFile> second =
      kcc::CompileUnit(corpus::KernelSource(), unit, options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first->Serialize(), second->Serialize());
}

TEST(ObjectCacheTest, SemanticOptionsChangeTheKey) {
  kcc::ObjectCache cache;
  kcc::CompileOptions options = corpus::RunBuildOptions();
  options.cache = &cache;
  std::string unit = FirstUnit();
  ASSERT_FALSE(unit.empty());

  ASSERT_TRUE(kcc::CompileUnit(corpus::KernelSource(), unit, options).ok());
  options.inline_threshold += 1;  // changes object bytes -> new key
  ASSERT_TRUE(kcc::CompileUnit(corpus::KernelSource(), unit, options).ok());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(ObjectCacheTest, PipelineKnobsDoNotChangeTheKey) {
  kcc::ObjectCache cache;
  kcc::CompileOptions options = corpus::RunBuildOptions();
  options.cache = &cache;
  options.jobs = 1;
  std::string unit = FirstUnit();
  ASSERT_FALSE(unit.empty());

  ASSERT_TRUE(kcc::CompileUnit(corpus::KernelSource(), unit, options).ok());
  options.jobs = 4;  // does not affect object bytes -> same key
  ASSERT_TRUE(kcc::CompileUnit(corpus::KernelSource(), unit, options).ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ObjectCacheTest, ConcurrentMissesCompileExactlyOnce) {
  kcc::ObjectCache cache;
  kcc::CompileOptions options = corpus::RunBuildOptions();
  options.cache = &cache;
  std::string unit = FirstUnit();
  ASSERT_FALSE(unit.empty());

  constexpr int kThreads = 8;
  std::vector<std::vector<uint8_t>> bytes(kThreads);
  ks::ParallelFor(kThreads, kThreads, [&](size_t i) {
    ks::Result<kelf::ObjectFile> obj =
        kcc::CompileUnit(corpus::KernelSource(), unit, options);
    if (obj.ok()) {
      bytes[i] = obj->Serialize();
    }
  });

  // All threads raced on a cold entry; the per-entry monitor must have let
  // exactly one of them compile.
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), static_cast<uint64_t>(kThreads - 1));
  ASSERT_FALSE(bytes[0].empty());
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(bytes[i], bytes[0]);
  }
}

// Entries whose original fix builds a plain package (no Table-1 custom
// code, so CreateUpdate succeeds on the unamended patch).
std::vector<const corpus::Vulnerability*> PlainEntries(size_t want) {
  std::vector<const corpus::Vulnerability*> picks;
  for (const corpus::Vulnerability& vuln : corpus::Vulnerabilities()) {
    if (!vuln.needs_custom_code) {
      picks.push_back(&vuln);
    }
    if (picks.size() == want) {
      break;
    }
  }
  return picks;
}

std::vector<uint8_t> CreatePackageBytes(const corpus::Vulnerability& vuln,
                                        kcc::ObjectCache* cache, int jobs) {
  ks::Result<std::string> patch = corpus::PatchFor(vuln);
  if (!patch.ok()) {
    return {};
  }
  ksplice::CreateOptions options;
  options.compile = corpus::RunBuildOptions();
  options.compile.cache = cache;
  options.compile.jobs = jobs;
  options.id = vuln.cve;
  ks::Result<ksplice::CreateResult> created =
      ksplice::CreateUpdate(corpus::KernelSource(), *patch, options);
  if (!created.ok()) {
    return {};
  }
  return created->package.Serialize();
}

TEST(ObjectCacheTest, RepeatedCreateCompilesNothingNew) {
  std::vector<const corpus::Vulnerability*> picks = PlainEntries(1);
  ASSERT_FALSE(picks.empty());
  kcc::ObjectCache cache;

  std::vector<uint8_t> first = CreatePackageBytes(*picks[0], &cache, 1);
  ASSERT_FALSE(first.empty());
  uint64_t misses_after_first = cache.misses();
  EXPECT_GT(misses_after_first, 0u);

  // An identical second create — the same pre build and the same post
  // build — must be served entirely from the cache.
  std::vector<uint8_t> second = CreatePackageBytes(*picks[0], &cache, 1);
  ASSERT_FALSE(second.empty());
  EXPECT_EQ(cache.misses(), misses_after_first);
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_EQ(first, second);
}

TEST(ConcurrencyTest, ParallelCreatePipelinesMatchSerial) {
  std::vector<const corpus::Vulnerability*> picks = PlainEntries(6);
  ASSERT_GE(picks.size(), 4u);

  // Serial reference runs, no cache.
  std::vector<std::vector<uint8_t>> serial(picks.size());
  for (size_t i = 0; i < picks.size(); ++i) {
    serial[i] = CreatePackageBytes(*picks[i], nullptr, 1);
  }

  // >= 4 create pipelines at once against the one shared corpus tree and a
  // shared cache. Each entry is created twice so its pre/post unit keys
  // are guaranteed to collide across concurrent pipelines.
  kcc::ObjectCache cache;
  std::vector<std::vector<uint8_t>> parallel(2 * picks.size());
  ks::ParallelFor(4, parallel.size(), [&](size_t i) {
    parallel[i] = CreatePackageBytes(*picks[i % picks.size()], &cache, 1);
  });

  for (size_t i = 0; i < parallel.size(); ++i) {
    const corpus::Vulnerability& vuln = *picks[i % picks.size()];
    ASSERT_FALSE(serial[i % picks.size()].empty()) << vuln.cve;
    EXPECT_EQ(parallel[i], serial[i % picks.size()]) << vuln.cve;
  }
  // Every duplicated pipeline was served from the shared cache: each
  // distinct unit compiled once, the twin's lookups all hit.
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GE(cache.hits(), picks.size());
}

TEST(ConcurrencyTest, WorkerCountDoesNotChangePackageBytes) {
  std::vector<const corpus::Vulnerability*> picks = PlainEntries(2);
  ASSERT_EQ(picks.size(), 2u);
  for (const corpus::Vulnerability* vuln : picks) {
    std::vector<uint8_t> at_j1 = CreatePackageBytes(*vuln, nullptr, 1);
    std::vector<uint8_t> at_j4 = CreatePackageBytes(*vuln, nullptr, 4);
    ASSERT_FALSE(at_j1.empty()) << vuln->cve;
    EXPECT_EQ(at_j4, at_j1) << vuln->cve;
  }
}

TEST(ConcurrencyTest, EvaluateAllMatchesSerialEvaluate) {
  const std::vector<corpus::Vulnerability>& all = corpus::Vulnerabilities();
  ASSERT_GE(all.size(), 6u);
  std::vector<corpus::Vulnerability> subset(all.begin(), all.begin() + 6);

  corpus::SweepOptions sweep;
  sweep.jobs = 4;
  std::vector<ks::Result<corpus::EvalOutcome>> parallel =
      corpus::EvaluateAll(subset, sweep);
  ASSERT_EQ(parallel.size(), subset.size());

  for (size_t i = 0; i < subset.size(); ++i) {
    ks::Result<corpus::EvalOutcome> serial = corpus::Evaluate(subset[i]);
    ASSERT_EQ(serial.ok(), parallel[i].ok()) << subset[i].cve;
    if (!serial.ok()) {
      continue;
    }
    EXPECT_EQ(parallel[i]->cve, serial->cve);
    EXPECT_EQ(parallel[i]->Success(), serial->Success());
    EXPECT_EQ(parallel[i]->create_ok, serial->create_ok);
    EXPECT_EQ(parallel[i]->apply_ok, serial->apply_ok);
    EXPECT_EQ(parallel[i]->needed_custom_code, serial->needed_custom_code);
    EXPECT_EQ(parallel[i]->targets, serial->targets);
    EXPECT_EQ(parallel[i]->patch_lines, serial->patch_lines);
  }
}

}  // namespace
