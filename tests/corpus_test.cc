// Corpus self-checks: the simulated kernel boots and survives stress, every
// one of the 64 vulnerability entries generates a working patch, every
// exploit demonstrably works on the unpatched kernel, and full §6-style
// evaluation succeeds for representative entries (the complete sweep over
// all 64 is bench_headline_eval's job).

#include <gtest/gtest.h>

#include "corpus/corpus.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "kvx/isa.h"

namespace corpus {
namespace {

TEST(CorpusTest, ExactlySixtyFourVulnerabilities) {
  EXPECT_EQ(Vulnerabilities().size(), 64u);
  // CVE ids are unique.
  std::set<std::string> ids;
  for (const Vulnerability& vuln : Vulnerabilities()) {
    EXPECT_TRUE(ids.insert(vuln.cve).second) << vuln.cve;
    EXPECT_FALSE(vuln.edits.empty()) << vuln.cve;
    EXPECT_FALSE(vuln.exploit_entry.empty()) << vuln.cve;
  }
}

TEST(CorpusTest, PaperCharacteristicCountsMatch) {
  int custom = 0;
  int custom_lines = 0;
  int public_exploits = 0;
  int assembly = 0;
  int declared_inline = 0;
  int signature = 0;
  int static_local = 0;
  int escalation = 0;
  int shadow = 0;
  for (const Vulnerability& vuln : Vulnerabilities()) {
    custom += vuln.needs_custom_code ? 1 : 0;
    custom_lines += vuln.custom_code_lines;
    public_exploits += vuln.public_exploit ? 1 : 0;
    assembly += vuln.touches_assembly ? 1 : 0;
    declared_inline += vuln.declared_inline ? 1 : 0;
    signature += vuln.changes_signature ? 1 : 0;
    static_local += vuln.has_static_local ? 1 : 0;
    escalation += vuln.vuln_class == VulnClass::kPrivilegeEscalation ? 1 : 0;
    shadow += vuln.adds_struct_field ? 1 : 0;
  }
  EXPECT_EQ(custom, 8);             // Table 1 rows
  EXPECT_EQ(custom_lines, 132);     // 34+10+1+1+14+4+20+48, mean ~17 (§6.3)
  EXPECT_EQ(public_exploits, 4);    // §6.3 exploit list
  EXPECT_EQ(assembly, 1);           // CVE-2007-4573
  EXPECT_EQ(declared_inline, 4);    // §6.3: "only 4 ... explicitly inline"
  EXPECT_EQ(signature + static_local, 9);  // §6.3's 8, measured here as 9
  EXPECT_EQ(shadow, 1);             // CVE-2005-2709
  // About two-thirds privilege escalation (§6.1).
  EXPECT_GE(escalation, 38);
  EXPECT_LE(escalation, 48);
}

TEST(CorpusTest, KernelBootsAndPassesStress) {
  ks::Result<std::unique_ptr<kvm::Machine>> machine = BootKernel();
  ASSERT_TRUE(machine.ok()) << machine.status().ToString();
  ks::Status stress = RunStress(**machine, 2);
  EXPECT_TRUE(stress.ok()) << stress.ToString();
  EXPECT_TRUE((*machine)->Faults().empty());
}

TEST(CorpusTest, SymbolCensusShowsAmbiguity) {
  ks::Result<SymbolCensus> census = CensusKernelSymbols();
  ASSERT_TRUE(census.ok()) << census.status().ToString();
  EXPECT_GT(census->total_symbols, 150);
  // debug/dst_state/mode/state collide across units (§6.3's 7.9%).
  EXPECT_GE(census->ambiguous_symbols, 8);
  EXPECT_GE(census->units_with_ambiguous, 6);
  EXPECT_LT(census->ambiguous_symbols, census->total_symbols / 4);
}

// Per-vulnerability self-check: the patch generates, applies to the source
// tree, and the exploit works on the unpatched kernel.
class VulnerabilityCheck : public ::testing::TestWithParam<int> {};

TEST_P(VulnerabilityCheck, PatchGeneratesAndExploitWorks) {
  const Vulnerability& vuln =
      Vulnerabilities()[static_cast<size_t>(GetParam())];
  SCOPED_TRACE(vuln.cve);

  ks::Result<std::string> patch = PatchFor(vuln);
  ASSERT_TRUE(patch.ok()) << patch.status().ToString();
  ks::Result<kdiff::SourceTree> post =
      kdiff::ApplyUnifiedDiff(KernelSource(), *patch);
  ASSERT_TRUE(post.ok()) << post.status().ToString();

  if (vuln.needs_custom_code) {
    ks::Result<std::string> amended = AmendedPatchFor(vuln);
    ASSERT_TRUE(amended.ok()) << amended.status().ToString();
  }

  ks::Result<std::unique_ptr<kvm::Machine>> machine = BootKernel();
  ASSERT_TRUE(machine.ok()) << machine.status().ToString();
  ks::Result<bool> exploited = RunExploit(**machine, vuln);
  ASSERT_TRUE(exploited.ok()) << exploited.status().ToString();
  EXPECT_TRUE(*exploited) << vuln.cve
                          << ": exploit must succeed on unpatched kernel";
  for (const std::string& fault : (*machine)->Faults()) {
    ADD_FAILURE() << vuln.cve << " fault: " << fault;
  }
}

INSTANTIATE_TEST_SUITE_P(All64, VulnerabilityCheck, ::testing::Range(0, 64));

// Full evaluation for the four CVEs with public exploit code (§6.3) and
// the eight Table-1 custom-code entries.
class FullEvaluation : public ::testing::TestWithParam<const char*> {};

TEST_P(FullEvaluation, Succeeds) {
  const Vulnerability* vuln = nullptr;
  for (const Vulnerability& candidate : Vulnerabilities()) {
    if (candidate.cve == GetParam()) {
      vuln = &candidate;
    }
  }
  ASSERT_NE(vuln, nullptr);
  EvalOptions options;
  options.run_undo_check = true;
  ks::Result<EvalOutcome> outcome = Evaluate(*vuln, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->exploit_before) << vuln->cve;
  EXPECT_TRUE(outcome->create_ok) << vuln->cve;
  EXPECT_TRUE(outcome->apply_ok) << vuln->cve;
  EXPECT_FALSE(outcome->exploit_after)
      << vuln->cve << ": exploit must stop working after the update";
  EXPECT_TRUE(outcome->stress_ok) << vuln->cve;
  EXPECT_TRUE(outcome->undo_ok) << vuln->cve;
  EXPECT_EQ(outcome->needed_custom_code, vuln->needs_custom_code)
      << vuln->cve;
  EXPECT_TRUE(outcome->Success());
}

INSTANTIATE_TEST_SUITE_P(
    PublicExploitsAndTable1, FullEvaluation,
    ::testing::Values("CVE-2006-2451", "CVE-2006-3626", "CVE-2007-4573",
                      "CVE-2008-0600",  // the four with public exploits
                      "CVE-2008-0007", "CVE-2007-4571", "CVE-2007-3851",
                      "CVE-2006-5753", "CVE-2006-2071", "CVE-2006-1056",
                      "CVE-2005-3179", "CVE-2005-2709"));  // Table 1

// The complete §6 evaluation over all 64 entries, asserting the paper's
// headline numbers exactly (56 with no new code, 8 custom, 64/64 success).
TEST(CorpusSweep, AllSixtyFourSucceedWithPaperSplit) {
  int success = 0;
  int no_new_code = 0;
  int custom = 0;
  for (const Vulnerability& vuln : Vulnerabilities()) {
    EvalOptions options;
    options.stress_rounds = 1;
    ks::Result<EvalOutcome> outcome = Evaluate(vuln, options);
    ASSERT_TRUE(outcome.ok()) << vuln.cve << ": "
                              << outcome.status().ToString();
    EXPECT_TRUE(outcome->Success()) << vuln.cve;
    EXPECT_TRUE(outcome->exploit_before) << vuln.cve;
    EXPECT_FALSE(outcome->exploit_after) << vuln.cve;
    if (outcome->Success()) {
      ++success;
    }
    if (outcome->apply_ok && !outcome->needed_custom_code) {
      ++no_new_code;
    }
    if (outcome->needed_custom_code) {
      ++custom;
    }
  }
  EXPECT_EQ(success, 64);
  EXPECT_EQ(no_new_code, 56);  // the paper's 56-of-64
  EXPECT_EQ(custom, 8);        // Table 1
}

// §5.4 at corpus scale: three CVEs patching the same compilation unit
// (fs/coredump.kc) applied in sequence, each created against the
// previously-patched source, then unwound LIFO.
TEST(CorpusStacking, ThreeUpdatesInOneUnit) {
  const char* sequence[] = {"CVE-2005-1263", "CVE-2007-0958",
                            "CVE-2007-6206"};
  ks::Result<std::unique_ptr<kvm::Machine>> machine = BootKernel();
  ASSERT_TRUE(machine.ok()) << machine.status().ToString();
  ksplice::KspliceCore core(machine->get());

  kdiff::SourceTree current = KernelSource();
  for (const char* cve : sequence) {
    const Vulnerability* vuln = nullptr;
    for (const Vulnerability& candidate : Vulnerabilities()) {
      if (candidate.cve == cve) {
        vuln = &candidate;
      }
    }
    ASSERT_NE(vuln, nullptr);
    ks::Result<bool> before = RunExploit(**machine, *vuln);
    ASSERT_TRUE(before.ok()) << before.status().ToString();
    EXPECT_TRUE(*before) << cve;

    // Port the fix onto the previously-patched source.
    kdiff::SourceTree next = current;
    for (const Edit& edit : vuln->edits) {
      std::string contents = *next.Read(edit.path);
      size_t at = contents.find(edit.from);
      ASSERT_NE(at, std::string::npos) << cve << " " << edit.path;
      contents.replace(at, edit.from.size(), edit.to);
      next.Write(edit.path, contents);
    }
    std::string patch = kdiff::MakeUnifiedDiff(current, next);

    ksplice::CreateOptions options;
    options.compile = RunBuildOptions();
    options.id = cve;
    ks::Result<ksplice::CreateResult> created =
        ksplice::CreateUpdate(current, patch, options);
    ASSERT_TRUE(created.ok()) << cve << ": "
                              << created.status().ToString();
    ks::Result<ksplice::ApplyReport> applied = core.Apply(created->package);
    ASSERT_TRUE(applied.ok()) << cve << ": "
                              << applied.status().ToString();
    ks::Result<bool> after = RunExploit(**machine, *vuln);
    ASSERT_TRUE(after.ok());
    EXPECT_FALSE(*after) << cve;
    current = next;
  }
  EXPECT_EQ(core.applied().size(), 3u);
  // All three fixes active simultaneously.
  for (const char* cve : sequence) {
    const Vulnerability* vuln = nullptr;
    for (const Vulnerability& candidate : Vulnerabilities()) {
      if (candidate.cve == cve) {
        vuln = &candidate;
      }
    }
    ks::Result<bool> exploited = RunExploit(**machine, *vuln);
    ASSERT_TRUE(exploited.ok());
    EXPECT_FALSE(*exploited) << cve << " after full stack";
  }
  // Unwind LIFO; the earliest vulnerability reappears at the end.
  ASSERT_TRUE(core.Undo("CVE-2007-6206").ok());
  ASSERT_TRUE(core.Undo("CVE-2007-0958").ok());
  ASSERT_TRUE(core.Undo("CVE-2005-1263").ok());
  const Vulnerability* first = nullptr;
  for (const Vulnerability& candidate : Vulnerabilities()) {
    if (candidate.cve == std::string("CVE-2005-1263")) {
      first = &candidate;
    }
  }
  ks::Result<bool> reopened = RunExploit(**machine, *first);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(*reopened) << "undo restored the original vulnerable code";
  ks::Status stress = RunStress(**machine, 1);
  EXPECT_TRUE(stress.ok()) << stress.ToString();
}

// Safety sweep (§4.2): corrupt one byte of each target function in the
// run image; apply must abort for every corpus entry — never splice over
// code that does not match the pre objects.
class TamperSweep : public ::testing::TestWithParam<int> {};

TEST_P(TamperSweep, CorruptedRunCodeAbortsApply) {
  const Vulnerability& vuln =
      Vulnerabilities()[static_cast<size_t>(GetParam())];
  SCOPED_TRACE(vuln.cve);
  ks::Result<std::string> patch =
      vuln.needs_custom_code ? AmendedPatchFor(vuln) : PatchFor(vuln);
  ASSERT_TRUE(patch.ok());
  ksplice::CreateOptions options;
  options.compile = RunBuildOptions();
  options.id = vuln.cve;
  ks::Result<ksplice::CreateResult> created =
      ksplice::CreateUpdate(KernelSource(), *patch, options);
  if (!created.ok() || created->package.targets.empty()) {
    GTEST_SKIP() << "no splice targets (hook-only update)";
  }
  ks::Result<std::unique_ptr<kvm::Machine>> machine = BootKernel();
  ASSERT_TRUE(machine.ok());

  // Corrupt a byte in the middle of the first target's run code.
  const ksplice::Target& target = created->package.targets[0];
  uint32_t addr = 0;
  for (const kelf::LinkedSymbol& sym :
       (*machine)->SymbolsNamed(target.symbol)) {
    if (sym.unit == target.unit) {
      addr = sym.address;
    }
  }
  ASSERT_NE(addr, 0u) << target.symbol;
  uint32_t mid = addr + 7 + static_cast<uint32_t>(GetParam() % 5);
  ASSERT_TRUE((*machine)
                  ->WriteByte(mid, static_cast<uint8_t>(
                                       *(*machine)->ReadByte(mid) ^ 0x3c))
                  .ok());

  ksplice::KspliceCore core(machine->get());
  ks::Result<ksplice::ApplyReport> applied = core.Apply(created->package);
  ASSERT_FALSE(applied.ok()) << vuln.cve;
  EXPECT_EQ(applied.status().code(), ks::ErrorCode::kAborted);
  EXPECT_TRUE(core.applied().empty());
}

INSTANTIATE_TEST_SUITE_P(All64, TamperSweep, ::testing::Range(0, 64));

// Howto acceptance (§4.3 special sections): CVE-2005-4605's fix deletes
// the secret_peek branch ahead of proc_read_mem's faulting load, so the
// function's exception-table entry moves — the pre and run tables differ
// byte-wise but agree structurally under relocation. The entry-structural
// matcher must still match, the update must apply, and a post-apply wild
// kcore read must recover through the *patched* module's fixup.
TEST(CorpusExtable, PatchedFixupRecoversWildRead) {
  const Vulnerability* vuln = nullptr;
  for (const Vulnerability& candidate : Vulnerabilities()) {
    if (candidate.cve == std::string("CVE-2005-4605")) {
      vuln = &candidate;
    }
  }
  ASSERT_NE(vuln, nullptr);
  ks::Result<std::unique_ptr<kvm::Machine>> machine = BootKernel();
  ASSERT_TRUE(machine.ok()) << machine.status().ToString();

  uint32_t read_mem = 0;
  for (const kelf::LinkedSymbol& sym :
       (*machine)->SymbolsNamed("proc_read_mem")) {
    read_mem = sym.address;
  }
  ASSERT_NE(read_mem, 0u);
  // 0x20000000 is far beyond the 24MB image: the load faults and the
  // kernel's boot-registered exception table substitutes the -1 fallback.
  const uint32_t kWild = 536870912;
  uint64_t fixups0 = (*machine)->ExtableFixups();
  ks::Result<uint32_t> pre_read = (*machine)->CallFunction(read_mem, kWild);
  ASSERT_TRUE(pre_read.ok()) << pre_read.status().ToString();
  EXPECT_EQ(*pre_read, 0xffffffffu);
  EXPECT_EQ((*machine)->ExtableFixups(), fixups0 + 1);

  ks::Result<bool> before = RunExploit(**machine, *vuln);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(*before) << "offset -1 must leak the secret pre-update";

  ks::Result<std::string> patch = PatchFor(*vuln);
  ASSERT_TRUE(patch.ok());
  ksplice::CreateOptions options;
  options.compile = RunBuildOptions();
  options.id = vuln->cve;
  ks::Result<ksplice::CreateResult> created =
      ksplice::CreateUpdate(KernelSource(), *patch, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ksplice::KspliceCore core(machine->get());
  ks::Result<ksplice::ApplyReport> applied = core.Apply(created->package);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  // The patched primary module registered its own exception table.
  bool module_extable = false;
  for (const kvm::HowtoRegion& region : (*machine)->HowtoRegions()) {
    if (region.howto == kelf::Howto::kExtable && region.module_id != -1) {
      module_extable = true;
    }
  }
  EXPECT_TRUE(module_extable);

  ks::Result<bool> after = RunExploit(**machine, *vuln);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(*after) << "negative offsets must be rejected post-update";

  // The wild read now runs the spliced module text; its fault resolves
  // through the module's (patched) table, not a stale kernel entry.
  uint64_t fixups1 = (*machine)->ExtableFixups();
  ks::Result<uint32_t> post_read = (*machine)->CallFunction(read_mem, kWild);
  ASSERT_TRUE(post_read.ok()) << post_read.status().ToString();
  EXPECT_EQ(*post_read, 0xffffffffu);
  EXPECT_GT((*machine)->ExtableFixups(), fixups1);
  EXPECT_TRUE((*machine)->Faults().empty());
  ks::Status stress = RunStress(**machine, 1);
  EXPECT_TRUE(stress.ok()) << stress.ToString();
}

// Invariant run-pre matching depends on: every text section of every
// corpus unit, in both build modes, decodes as a clean instruction stream
// (lengths tile the section exactly; pc-relative targets stay inside it
// or at its end for monolithic cross-function jumps).
TEST(CorpusInvariants, AllTextSectionsDecodeCleanly) {
  for (bool sections : {false, true}) {
    kcc::CompileOptions options = RunBuildOptions();
    options.function_sections = sections;
    options.data_sections = sections;
    ks::Result<std::vector<kelf::ObjectFile>> objects =
        kcc::BuildTree(KernelSource(), options);
    ASSERT_TRUE(objects.ok()) << objects.status().ToString();
    for (const kelf::ObjectFile& obj : *objects) {
      for (const kelf::Section& section : obj.sections()) {
        if (section.kind != kelf::SectionKind::kText) {
          continue;
        }
        size_t pos = 0;
        while (pos < section.bytes.size()) {
          ks::Result<kvx::Insn> insn = kvx::Decode(
              std::span<const uint8_t>(section.bytes).subspan(pos));
          ASSERT_TRUE(insn.ok())
              << obj.source_name() << " " << section.name << " at " << pos
              << ": " << insn.status().ToString();
          pos += insn->len;
        }
        EXPECT_EQ(pos, section.bytes.size())
            << obj.source_name() << " " << section.name;
      }
    }
  }
}

}  // namespace
}  // namespace corpus
