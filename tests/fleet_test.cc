// Fleet orchestrator tests (src/fleet): wave/canary rollouts over mixed-
// release corpus fleets.
//
// The claims under test are the fleet-scale versions of the paper's
// per-machine safety story:
//   - a tripped canary wave aborts the rollout and rolls every patched
//     node back byte-identically, with pre-existing update stacks left
//     exactly as they were (only this rollout's updates are undone);
//   - nodes whose kernel release drifted the patched unit are skipped by
//     run-pre matching and counted stale, never failed — staleness does
//     not trip the abort threshold;
//   - rollouts are deterministic in their concurrency: the same plan over
//     identical fleets yields identical node outcomes at max_in_flight 1
//     and 8 (the canary fault plan uses `always` mode, the rollout order
//     and per-node rendezvous jitter are seeded).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/faultinject.h"
#include "corpus/corpus.h"
#include "fleet/corpus_fleet.h"
#include "fleet/fleet.h"
#include "fleet/rollout.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "kvm/machine.h"

namespace fleet {
namespace {

// The injector is process-global; every test starts and ends disarmed.
class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override { ks::Faults().Reset(); }
  void TearDown() override { ks::Faults().Reset(); }
};

ksplice::UpdatePackage CorpusPackage(const std::string& cve,
                                     const std::string& id) {
  const corpus::Vulnerability* vuln = nullptr;
  for (const corpus::Vulnerability& candidate :
       corpus::Vulnerabilities()) {
    if (candidate.cve == cve) {
      vuln = &candidate;
    }
  }
  EXPECT_NE(vuln, nullptr) << cve;
  ks::Result<std::string> patch = corpus::PatchFor(*vuln);
  EXPECT_TRUE(patch.ok()) << patch.status().ToString();
  ksplice::CreateOptions options;
  options.compile = corpus::RunBuildOptions();
  options.compile.cache = &corpus::SharedObjectCache();
  options.id = id;
  ks::Result<ksplice::CreateResult> created =
      ksplice::CreateUpdate(corpus::KernelSource(), *patch, options);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return std::move(created->package);
}

std::vector<uint8_t> KernelImage(const kvm::Machine& machine) {
  ks::Result<std::vector<uint8_t>> bytes = machine.ReadBytes(
      machine.config().kernel_base,
      machine.kernel_end() - machine.config().kernel_base);
  EXPECT_TRUE(bytes.ok());
  return bytes.ok() ? *bytes : std::vector<uint8_t>{};
}

const ksplice::RolloutNodeReport& NodeNamed(
    const ksplice::RolloutReport& report, const std::string& id) {
  for (const ksplice::RolloutNodeReport& node : report.nodes) {
    if (node.node == id) {
      return node;
    }
  }
  ADD_FAILURE() << "no node " << id << " in report";
  return report.nodes.front();
}

TEST(RolloutOrderTest, SeededShuffleIsDeterministicAndComplete) {
  EXPECT_EQ(RolloutOrder(4, 0), (std::vector<size_t>{0, 1, 2, 3}));
  std::vector<size_t> a = RolloutOrder(16, 7);
  std::vector<size_t> b = RolloutOrder(16, 7);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, RolloutOrder(16, 8));
  std::vector<size_t> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], i);  // a permutation, nothing lost
  }
}

TEST_F(FleetTest, RegistryRejectsDuplicatesAndNulls) {
  Fleet fleet;
  EXPECT_FALSE(fleet.AddNode({"n0", "v1", false}, nullptr).ok());
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      corpus::BootKernelVersion(0, 4u << 20);
  ASSERT_TRUE(machine.ok()) << machine.status().ToString();
  ASSERT_TRUE(fleet.AddNode({"n0", "v1", false}, std::move(*machine)).ok());
  ks::Result<std::unique_ptr<kvm::Machine>> second =
      corpus::BootKernelVersion(0, 4u << 20);
  ASSERT_TRUE(second.ok());
  ks::Status duplicate = fleet.AddNode({"n0", "v1", false},
                                       std::move(*second));
  EXPECT_EQ(duplicate.code(), ks::ErrorCode::kAlreadyExists);
  EXPECT_EQ(fleet.size(), 1u);
  EXPECT_EQ(fleet.IndexOf("n0"), 0);
  EXPECT_EQ(fleet.IndexOf("absent"), -1);
}

// A doomed canary trips the first wave; the abort rolls every patched
// node back byte-identically and pre-applied stacks survive untouched.
TEST_F(FleetTest, CanaryTripFleetUndoByteIdentical) {
  CorpusFleetOptions options;
  options.nodes = 8;
  options.doomed = 1;  // node 0: seed 0 = id-order visits
  ks::Result<Fleet> fleet = MakeCorpusFleet(options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();

  // Two nodes already run an older update (the prctl fix; nodes 4 and 5
  // run v2.6.5/v2.6.1 where it is not stale).
  ksplice::UpdatePackage older =
      CorpusPackage("CVE-2006-2451", "prctl-fix");
  for (size_t node : {size_t{4}, size_t{5}}) {
    ks::Result<ksplice::ApplyReport> applied =
        fleet->core(node).Apply(older);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  }

  // Snapshot every node after the pre-applies: this is the state the
  // aborted rollout must restore.
  std::vector<std::vector<uint8_t>> images;
  std::vector<uint32_t> arenas;
  std::vector<std::vector<std::string>> stacks;
  for (size_t i = 0; i < fleet->size(); ++i) {
    images.push_back(KernelImage(fleet->machine(i)));
    arenas.push_back(fleet->machine(i).ModuleArenaBytesInUse());
    stacks.push_back(fleet->core(i).AppliedIds());
  }

  std::vector<ksplice::UpdatePackage> packages = {
      CorpusPackage("CVE-2008-0600", "vmsplice-fix")};
  RolloutPlan plan;
  plan.canary_fraction = 0.25;  // 2-node canary wave: nodes 0 and 1
  plan.wave_size = 3;
  plan.max_in_flight = 2;
  plan.canary_fault_plan = "ksplice.txn.pre_apply=always";
  ks::Result<ksplice::RolloutReport> report =
      RunRollout(*fleet, packages, plan);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_TRUE(report->aborted);
  EXPECT_EQ(report->tripped_wave, 0);
  EXPECT_EQ(report->waves, 1u);
  EXPECT_EQ(report->failed, 1u);       // the doomed canary
  EXPECT_EQ(report->rolled_back, 1u);  // its wave-mate, patched then undone
  EXPECT_EQ(report->patched, 0u);      // nobody left patched
  EXPECT_EQ(report->not_attempted, 6u);
  EXPECT_EQ(NodeNamed(*report, "node-000").outcome,
            ksplice::RolloutNodeOutcome::kFailed);
  EXPECT_EQ(NodeNamed(*report, "node-001").outcome,
            ksplice::RolloutNodeOutcome::kRolledBack);

  // Byte-identical restore, arena accounting restored, stacks intact.
  for (size_t i = 0; i < fleet->size(); ++i) {
    EXPECT_EQ(KernelImage(fleet->machine(i)), images[i]) << "node " << i;
    EXPECT_EQ(fleet->machine(i).ModuleArenaBytesInUse(), arenas[i])
        << "node " << i;
    EXPECT_EQ(fleet->core(i).AppliedIds(), stacks[i]) << "node " << i;
  }
  EXPECT_EQ(fleet->core(4).AppliedIds(),
            (std::vector<std::string>{"prctl-fix"}));

  // The injector is disarmed on exit; a clean re-run patches everyone.
  EXPECT_EQ(ks::Faults().ArmedCount(), 0);
  RolloutPlan clean = plan;
  clean.canary_fault_plan.clear();
  ks::Result<ksplice::RolloutReport> retry =
      RunRollout(*fleet, packages, clean);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_FALSE(retry->aborted);
  EXPECT_EQ(retry->patched, 8u);
}

// Stale nodes (release drifted the patched unit) are skipped by run-pre
// matching: counted skipped_stale, never failed, never tripping a wave.
TEST_F(FleetTest, MixedVersionStaleNodesSkippedNotFailed) {
  CorpusFleetOptions options;
  options.nodes = 10;  // releases v2.6.1..5 round-robin, twice
  ks::Result<Fleet> fleet = MakeCorpusFleet(options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();

  // The prctl fix's unit drifted in v2.6.4 — nodes 3 and 8.
  std::vector<ksplice::UpdatePackage> packages = {
      CorpusPackage("CVE-2006-2451", "prctl-fix")};
  RolloutPlan plan;
  plan.wave_size = 4;
  plan.max_in_flight = 4;
  plan.abort_failure_fraction = 0.0;  // any real failure would trip
  ks::Result<ksplice::RolloutReport> report =
      RunRollout(*fleet, packages, plan);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_FALSE(report->aborted);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(report->skipped_stale, 2u);
  EXPECT_EQ(report->patched, 8u);
  for (const std::string id : {"node-003", "node-008"}) {
    const ksplice::RolloutNodeReport& node = NodeNamed(*report, id);
    EXPECT_EQ(node.outcome, ksplice::RolloutNodeOutcome::kSkippedStale);
    EXPECT_EQ(node.version, "v2.6.4");
    EXPECT_FALSE(node.error.empty());
  }

  // Stale nodes really are unpatched; a second rollout reports everyone
  // else already applied and skips the stale pair again.
  ks::Result<ksplice::RolloutReport> again =
      RunRollout(*fleet, packages, plan);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->already_applied, 8u);
  EXPECT_EQ(again->skipped_stale, 2u);
  EXPECT_EQ(again->patched, 0u);
}

// Identical fleets + identical plans give identical wave outcomes whether
// node applies run serially or 8 wide.
TEST_F(FleetTest, DeterministicAcrossMaxInFlight) {
  std::vector<ksplice::UpdatePackage> packages = {
      CorpusPackage("CVE-2008-0600", "vmsplice-fix")};
  auto run = [&](int max_in_flight) {
    CorpusFleetOptions options;
    options.nodes = 10;
    options.doomed = 2;
    options.seed = 3;
    ks::Result<Fleet> fleet = MakeCorpusFleet(options);
    EXPECT_TRUE(fleet.ok()) << fleet.status().ToString();
    RolloutPlan plan;
    plan.canary_fraction = 0.3;  // 3-node canary; 2 doomed = 2/3 < 0.7
    plan.wave_size = 4;
    plan.max_in_flight = max_in_flight;
    plan.abort_failure_fraction = 0.7;
    plan.seed = 3;
    plan.canary_fault_plan = "ksplice.txn.pre_apply=always";
    ks::Result<ksplice::RolloutReport> report =
        RunRollout(*fleet, packages, plan);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(*report);
  };

  ksplice::RolloutReport serial = run(1);
  ksplice::RolloutReport wide = run(8);

  EXPECT_FALSE(serial.aborted);
  EXPECT_EQ(serial.failed, 2u);
  EXPECT_EQ(serial.patched, 8u);

  ASSERT_EQ(serial.nodes.size(), wide.nodes.size());
  for (size_t i = 0; i < serial.nodes.size(); ++i) {
    EXPECT_EQ(serial.nodes[i].node, wide.nodes[i].node);
    EXPECT_EQ(serial.nodes[i].outcome, wide.nodes[i].outcome)
        << serial.nodes[i].node;
    EXPECT_EQ(serial.nodes[i].wave, wide.nodes[i].wave);
    EXPECT_EQ(serial.nodes[i].canary, wide.nodes[i].canary);
    EXPECT_EQ(serial.nodes[i].attempts, wide.nodes[i].attempts);
  }
  ASSERT_EQ(serial.wave_reports.size(), wide.wave_reports.size());
  for (size_t w = 0; w < serial.wave_reports.size(); ++w) {
    EXPECT_EQ(serial.wave_reports[w].patched,
              wide.wave_reports[w].patched);
    EXPECT_EQ(serial.wave_reports[w].failed, wide.wave_reports[w].failed);
    EXPECT_EQ(serial.wave_reports[w].tripped,
              wide.wave_reports[w].tripped);
  }
}

// Facade coverage: AppliedIds reflects stack order and UndoAll strips a
// node back to pristine, newest first.
TEST_F(FleetTest, AppliedIdsAndUndoAllFacade) {
  CorpusFleetOptions options;
  options.nodes = 3;
  ks::Result<Fleet> fleet = MakeCorpusFleet(options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();

  ksplice::UpdatePackage prctl = CorpusPackage("CVE-2006-2451", "u-prctl");
  ksplice::UpdatePackage vmsplice =
      CorpusPackage("CVE-2008-0600", "u-vmsplice");
  ksplice::KspliceCore& core = fleet->core(0);
  std::vector<uint8_t> pristine = KernelImage(fleet->machine(0));
  ASSERT_TRUE(core.Apply(prctl).ok());
  ASSERT_TRUE(core.Apply(vmsplice).ok());
  EXPECT_EQ(core.AppliedIds(),
            (std::vector<std::string>{"u-prctl", "u-vmsplice"}));

  // Rollout over the fleet: node-000 has both packages already.
  std::vector<ksplice::UpdatePackage> packages = {prctl, vmsplice};
  RolloutPlan plan;
  ks::Result<ksplice::RolloutReport> report =
      RunRollout(*fleet, packages, plan);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(NodeNamed(*report, "node-000").outcome,
            ksplice::RolloutNodeOutcome::kAlreadyApplied);
  EXPECT_EQ(report->patched, 2u);

  ks::Result<std::vector<ksplice::UndoReport>> undone = core.UndoAll();
  ASSERT_TRUE(undone.ok()) << undone.status().ToString();
  ASSERT_EQ(undone->size(), 2u);
  EXPECT_EQ((*undone)[0].id, "u-vmsplice");  // newest first
  EXPECT_EQ((*undone)[1].id, "u-prctl");
  EXPECT_TRUE(core.AppliedIds().empty());
  EXPECT_EQ(KernelImage(fleet->machine(0)), pristine);
}

}  // namespace
}  // namespace fleet
