// Fuzz-style negative tests for the two on-disk parsers: kelf::ObjectFile
// and ksplice::UpdatePackage. Malformed input — truncated section tables,
// bit flips, out-of-range relocation/symbol indices, inconsistent bss —
// must come back as a clean ks::Status, never a crash or an out-of-bounds
// read. The sweeps are deterministic (every prefix length, a fixed bit
// pattern) so failures reproduce.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "kelf/objfile.h"
#include "ksplice/package.h"

namespace {

// A representative object: two text sections with relocations, data, bss,
// local and global symbols, an import.
kelf::ObjectFile SampleObject() {
  kelf::ObjectFile obj("unit/sample.kc");

  kelf::Section text;
  text.name = ".text.f";
  text.kind = kelf::SectionKind::kText;
  text.align = 4;
  text.bytes = {0x30, 0x06, 0x42};  // push fp; ret
  int text_idx = obj.AddSection(std::move(text));

  kelf::Section text2;
  text2.name = ".text.g";
  text2.kind = kelf::SectionKind::kText;
  text2.align = 4;
  text2.bytes = std::vector<uint8_t>(16, 0x42);
  int text2_idx = obj.AddSection(std::move(text2));

  kelf::Section data;
  data.name = ".data.x";
  data.kind = kelf::SectionKind::kData;
  data.align = 4;
  data.bytes = {1, 2, 3, 4};
  int data_idx = obj.AddSection(std::move(data));

  kelf::Section bss;
  bss.name = ".bss.y";
  bss.kind = kelf::SectionKind::kBss;
  bss.align = 4;
  bss.bss_size = 8;
  obj.AddSection(std::move(bss));

  kelf::Symbol f;
  f.name = "f";
  f.binding = kelf::SymbolBinding::kGlobal;
  f.kind = kelf::SymbolKind::kFunction;
  f.section = text_idx;
  int f_idx = obj.AddSymbol(std::move(f));

  kelf::Symbol x;
  x.name = "x";
  x.binding = kelf::SymbolBinding::kLocal;
  x.kind = kelf::SymbolKind::kObject;
  x.section = data_idx;
  int x_idx = obj.AddSymbol(std::move(x));

  // Howto-tagged special sections: an exception table and a bug table for
  // f, and a build-date string — so every truncation/bit-flip sweep below
  // also covers the typed-table parse path.
  kelf::Section extable;
  extable.name = ".extable.f";
  extable.kind = kelf::SectionKind::kData;
  extable.howto = kelf::Howto::kExtable;
  extable.align = 4;
  extable.bytes = std::vector<uint8_t>(kelf::kHowtoEntrySize, 0);
  kelf::Relocation site;
  site.offset = 0;
  site.type = kelf::RelocType::kAbs32;
  site.symbol = f_idx;
  extable.relocs.push_back(site);
  kelf::Relocation fixup;
  fixup.offset = 4;
  fixup.type = kelf::RelocType::kAbs32;
  fixup.symbol = f_idx;
  fixup.addend = 1;
  extable.relocs.push_back(fixup);
  obj.AddSection(std::move(extable));

  kelf::Section bug_table;
  bug_table.name = ".bug_table.f";
  bug_table.kind = kelf::SectionKind::kData;
  bug_table.howto = kelf::Howto::kBug;
  bug_table.align = 4;
  bug_table.bytes = {0, 0, 0, 0, 42, 0, 0, 0};  // word1: literal line
  kelf::Relocation trap;
  trap.offset = 0;
  trap.type = kelf::RelocType::kAbs32;
  trap.symbol = f_idx;
  bug_table.relocs.push_back(trap);
  obj.AddSection(std::move(bug_table));

  kelf::Section date;
  date.name = ".rodata.date";
  date.kind = kelf::SectionKind::kData;
  date.howto = kelf::Howto::kDate;
  date.align = 1;
  const char* stamp = "Jan  1 2026";
  date.bytes.assign(stamp, stamp + 12);  // including the NUL
  obj.AddSection(std::move(date));

  int ext_idx = obj.InternUndefinedSymbol("external_fn");

  kelf::Relocation r1;
  r1.offset = 4;
  r1.type = kelf::RelocType::kPcrel32;
  r1.symbol = f_idx;
  r1.addend = -4;
  obj.sections()[static_cast<size_t>(text2_idx)].relocs.push_back(r1);

  kelf::Relocation r2;
  r2.offset = 9;
  r2.type = kelf::RelocType::kAbs32;
  r2.symbol = x_idx;
  obj.sections()[static_cast<size_t>(text2_idx)].relocs.push_back(r2);

  kelf::Relocation r3;
  r3.offset = 12;
  r3.type = kelf::RelocType::kPcrel32;
  r3.symbol = ext_idx;
  r3.addend = -4;
  obj.sections()[static_cast<size_t>(text2_idx)].relocs.push_back(r3);

  EXPECT_TRUE(obj.Validate().ok());
  return obj;
}

ksplice::UpdatePackage SamplePackage() {
  ksplice::UpdatePackage package;
  package.id = "fuzz-sample";
  package.helper_objects.push_back(SampleObject());
  package.primary_objects.push_back(SampleObject());
  package.targets.push_back(ksplice::Target{"unit/sample.kc", "f", ".text.f"});
  return package;
}

// ------------------------------------------------------------------------
// Truncation sweeps: both formats are strict, so every proper prefix of a
// valid serialization must fail with a clean error.

TEST(FuzzObjectFile, EveryTruncationFailsCleanly) {
  std::vector<uint8_t> bytes = SampleObject().Serialize();
  ASSERT_GT(bytes.size(), 16u);
  ASSERT_TRUE(kelf::ObjectFile::Parse(bytes).ok());

  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> prefix(bytes.begin(),
                                bytes.begin() + static_cast<long>(len));
    ks::Result<kelf::ObjectFile> parsed = kelf::ObjectFile::Parse(prefix);
    EXPECT_FALSE(parsed.ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST(FuzzPackage, EveryTruncationFailsCleanly) {
  std::vector<uint8_t> bytes = SamplePackage().Serialize();
  ASSERT_GT(bytes.size(), 16u);
  ASSERT_TRUE(ksplice::UpdatePackage::Parse(bytes).ok());

  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> prefix(bytes.begin(),
                                bytes.begin() + static_cast<long>(len));
    ks::Result<ksplice::UpdatePackage> parsed =
        ksplice::UpdatePackage::Parse(prefix);
    EXPECT_FALSE(parsed.ok()) << "prefix of " << len << " bytes parsed";
  }
}

// ------------------------------------------------------------------------
// Deterministic bit flips. The package has an integrity checksum, so every
// single-bit corruption must be rejected; the raw object format has no
// checksum, so a flip may legitimately still parse — the requirement is
// that Parse returns (it never crashes) and an accepted object passes
// Validate (Parse's postcondition).

TEST(FuzzObjectFile, BitFlipsNeverCrash) {
  std::vector<uint8_t> bytes = SampleObject().Serialize();
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::vector<uint8_t> mutated = bytes;
      mutated[pos] = static_cast<uint8_t>(mutated[pos] ^ (1u << bit));
      ks::Result<kelf::ObjectFile> parsed = kelf::ObjectFile::Parse(mutated);
      if (parsed.ok()) {
        EXPECT_TRUE(parsed->Validate().ok())
            << "flip at byte " << pos << " bit " << bit
            << " parsed but does not validate";
      }
    }
  }
}

TEST(FuzzPackage, EveryBitFlipIsRejected) {
  std::vector<uint8_t> bytes = SamplePackage().Serialize();
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::vector<uint8_t> mutated = bytes;
    mutated[pos] = static_cast<uint8_t>(mutated[pos] ^ 0x10);
    ks::Result<ksplice::UpdatePackage> parsed =
        ksplice::UpdatePackage::Parse(mutated);
    EXPECT_FALSE(parsed.ok()) << "flip at byte " << pos << " accepted";
  }
}

// ------------------------------------------------------------------------
// Structurally invalid objects round-tripped through the serializer: the
// parser re-validates, so corruption introduced after construction cannot
// smuggle out-of-range indices into consumers.

TEST(FuzzObjectFile, OutOfRangeRelocSymbolRejected) {
  kelf::ObjectFile obj = SampleObject();
  obj.sections()[1].relocs[0].symbol = 999;
  ks::Result<kelf::ObjectFile> parsed =
      kelf::ObjectFile::Parse(obj.Serialize());
  EXPECT_FALSE(parsed.ok());
}

TEST(FuzzObjectFile, RelocOffsetPastSectionEndRejected) {
  kelf::ObjectFile obj = SampleObject();
  obj.sections()[1].relocs[0].offset = 1 << 20;
  ks::Result<kelf::ObjectFile> parsed =
      kelf::ObjectFile::Parse(obj.Serialize());
  EXPECT_FALSE(parsed.ok());
}

TEST(FuzzObjectFile, OutOfRangeSymbolSectionRejected) {
  kelf::ObjectFile obj = SampleObject();
  obj.symbols()[0].section = 42;
  ks::Result<kelf::ObjectFile> parsed =
      kelf::ObjectFile::Parse(obj.Serialize());
  EXPECT_FALSE(parsed.ok());
}

TEST(FuzzObjectFile, BssWithPayloadBytesRejected) {
  kelf::ObjectFile obj = SampleObject();
  for (kelf::Section& section : obj.sections()) {
    if (section.kind == kelf::SectionKind::kBss) {
      section.bytes = {1, 2, 3};
    }
  }
  ks::Result<kelf::ObjectFile> parsed =
      kelf::ObjectFile::Parse(obj.Serialize());
  EXPECT_FALSE(parsed.ok());
}

// ------------------------------------------------------------------------
// Howto table invariants: malformed entry counts and out-of-range or
// ill-typed fixup relocations must be clean parse errors, never UB.

kelf::Section* SectionNamed(kelf::ObjectFile& obj, const std::string& name) {
  for (kelf::Section& section : obj.sections()) {
    if (section.name == name) {
      return &section;
    }
  }
  return nullptr;
}

TEST(FuzzHowto, RaggedExtableEntryCountRejected) {
  kelf::ObjectFile obj = SampleObject();
  kelf::Section* table = SectionNamed(obj, ".extable.f");
  ASSERT_NE(table, nullptr);
  table->bytes.resize(kelf::kHowtoEntrySize + 3);  // 1.375 entries
  ks::Result<kelf::ObjectFile> parsed =
      kelf::ObjectFile::Parse(obj.Serialize());
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("multiple"), std::string::npos);
}

TEST(FuzzHowto, FixupRelocPastTableEndRejected) {
  kelf::ObjectFile obj = SampleObject();
  kelf::Section* table = SectionNamed(obj, ".bug_table.f");
  ASSERT_NE(table, nullptr);
  table->relocs[0].offset = 1 << 16;
  ks::Result<kelf::ObjectFile> parsed =
      kelf::ObjectFile::Parse(obj.Serialize());
  EXPECT_FALSE(parsed.ok());
}

TEST(FuzzHowto, PcrelRelocInExtableRejected) {
  kelf::ObjectFile obj = SampleObject();
  kelf::Section* table = SectionNamed(obj, ".extable.f");
  ASSERT_NE(table, nullptr);
  table->relocs[1].type = kelf::RelocType::kPcrel32;
  ks::Result<kelf::ObjectFile> parsed =
      kelf::ObjectFile::Parse(obj.Serialize());
  EXPECT_FALSE(parsed.ok());
}

TEST(FuzzHowto, MisalignedTableRelocRejected) {
  kelf::ObjectFile obj = SampleObject();
  kelf::Section* table = SectionNamed(obj, ".extable.f");
  ASSERT_NE(table, nullptr);
  table->relocs[0].offset = 2;
  ks::Result<kelf::ObjectFile> parsed =
      kelf::ObjectFile::Parse(obj.Serialize());
  EXPECT_FALSE(parsed.ok());
}

TEST(FuzzHowto, HowtoTagOnTextSectionRejected) {
  kelf::ObjectFile obj = SampleObject();
  kelf::Section* text = SectionNamed(obj, ".text.f");
  ASSERT_NE(text, nullptr);
  text->howto = kelf::Howto::kExtable;
  ks::Result<kelf::ObjectFile> parsed =
      kelf::ObjectFile::Parse(obj.Serialize());
  EXPECT_FALSE(parsed.ok());
}

TEST(FuzzPackage, GarbageAndEmptyInputsRejected) {
  EXPECT_FALSE(ksplice::UpdatePackage::Parse({}).ok());
  EXPECT_FALSE(kelf::ObjectFile::Parse({}).ok());

  std::vector<uint8_t> garbage(256);
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  EXPECT_FALSE(ksplice::UpdatePackage::Parse(garbage).ok());
  EXPECT_FALSE(kelf::ObjectFile::Parse(garbage).ok());
}

}  // namespace
