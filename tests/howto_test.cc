// Special-section howtos (§4.3 "special sections"): faulting loads
// recover through exception tables, BUG traps map the trap pc back to a
// source line via the bug table, and run-pre matching applies per-howto
// strategies — byte-wise for text, entry-structural for
// .extable/.bug_table (match (insn, fixup) pairs under relocation, not
// raw bytes), content-ignoring for .rodata.date/.rodata.time — with
// decisions identical across -j and --no-index.

#include <gtest/gtest.h>

#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "kelf/objfile.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "ksplice/runpre.h"
#include "kvm/machine.h"

namespace ksplice {
namespace {

using kdiff::SourceTree;

constexpr char kUnit[] = "kern/howto.kc";

// One unit exercising all four howto kinds: an exception-table guarded
// raw load (the __get_user pattern), a BUG trap, and both build
// timestamps.
SourceTree HowtoTree() {
  SourceTree tree;
  tree.Write(kUnit, R"(
int scratch[4];
char *kernel_banner(int pick) {
  if (pick == 1) {
    return __TIME__;
  }
  return __DATE__;
}
int guarded_read(int addr) {
  if (addr >= 0 && addr < 4) {
    return scratch[addr];
  }
  return try_load(addr, 4095);
}
int raw_read(char *p) {
  return p[0];
}
int do_bug(int x) {
  if (x == 9) {
    BUG();
  }
  return x + 1;
}
)");
  return tree;
}

// Far beyond any test machine's image.
constexpr uint32_t kWildAddr = 536870912;  // 0x20000000

ks::Result<std::unique_ptr<kvm::Machine>> BootTree(
    const SourceTree& tree, const kcc::CompileOptions& options) {
  KS_ASSIGN_OR_RETURN(std::vector<kelf::ObjectFile> objects,
                      kcc::BuildTree(tree, options));
  kvm::MachineConfig config;
  return kvm::Machine::Boot(std::move(objects), config);
}

kelf::ObjectFile CompilePre(const SourceTree& tree,
                            kcc::CompileOptions options) {
  options.function_sections = true;
  options.data_sections = true;
  ks::Result<kelf::ObjectFile> pre = kcc::CompileUnit(tree, kUnit, options);
  EXPECT_TRUE(pre.ok()) << pre.status().ToString();
  return pre.ok() ? std::move(pre).value() : kelf::ObjectFile();
}

uint32_t AddressOf(const kvm::Machine& machine, const std::string& name) {
  std::vector<kelf::LinkedSymbol> syms = machine.SymbolsNamed(name);
  EXPECT_EQ(syms.size(), 1u) << name;
  return syms.empty() ? 0 : syms[0].address;
}

// ---------------------------------------------------------------- kvm

TEST(HowtoDispatch, FaultingLoadRecoversThroughExtable) {
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      BootTree(HowtoTree(), {});
  ASSERT_TRUE(machine.ok()) << machine.status().ToString();
  uint32_t guarded = AddressOf(**machine, "guarded_read");
  ASSERT_NE(guarded, 0u);

  // The kernel image registered its exception table at boot.
  bool kernel_extable = false;
  for (const kvm::HowtoRegion& region : (*machine)->HowtoRegions()) {
    if (region.howto == kelf::Howto::kExtable && region.module_id == -1) {
      kernel_extable = true;
    }
  }
  EXPECT_TRUE(kernel_extable);

  // Wild address: the load faults; the fixup substitutes the fallback.
  ks::Result<uint32_t> wild = (*machine)->CallFunction(guarded, kWildAddr);
  ASSERT_TRUE(wild.ok()) << wild.status().ToString();
  EXPECT_EQ(*wild, 4095u);
  EXPECT_EQ((*machine)->ExtableFixups(), 1u);

  // Valid raw address: loadf behaves like a plain load, no fixup taken.
  uint32_t scratch = AddressOf(**machine, "scratch");
  ASSERT_TRUE((*machine)->WriteWord(scratch, 77).ok());
  ks::Result<uint32_t> valid = (*machine)->CallFunction(guarded, scratch);
  ASSERT_TRUE(valid.ok()) << valid.status().ToString();
  EXPECT_EQ(*valid, 77u);
  EXPECT_EQ((*machine)->ExtableFixups(), 1u);
  EXPECT_TRUE((*machine)->Faults().empty());
}

TEST(HowtoDispatch, PlainWildLoadStillFaults) {
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      BootTree(HowtoTree(), {});
  ASSERT_TRUE(machine.ok()) << machine.status().ToString();
  uint32_t raw = AddressOf(**machine, "raw_read");
  ASSERT_NE(raw, 0u);
  // No extable entry covers an ordinary load: the thread faults.
  ks::Result<uint32_t> wild = (*machine)->CallFunction(raw, kWildAddr);
  EXPECT_FALSE(wild.ok());
  EXPECT_EQ((*machine)->ExtableFixups(), 0u);
}

TEST(HowtoDispatch, BugTrapReportsSourceLine) {
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      BootTree(HowtoTree(), {});
  ASSERT_TRUE(machine.ok()) << machine.status().ToString();
  uint32_t bug_fn = AddressOf(**machine, "do_bug");
  ASSERT_NE(bug_fn, 0u);

  ks::Result<uint32_t> fine = (*machine)->CallFunction(bug_fn, 3);
  ASSERT_TRUE(fine.ok()) << fine.status().ToString();
  EXPECT_EQ(*fine, 4u);

  ks::Result<uint32_t> trapped = (*machine)->CallFunction(bug_fn, 9);
  EXPECT_FALSE(trapped.ok());
  bool reported = false;
  for (const std::string& fault : (*machine)->Faults()) {
    if (fault.find("kernel BUG at") != std::string::npos) {
      reported = true;
    }
  }
  EXPECT_TRUE(reported) << "BUG trap must decode through the bug table";
}

// ------------------------------------------------------------- matcher

TEST(HowtoMatch, DateDriftMatchesContentIgnoring) {
  SourceTree tree = HowtoTree();
  ks::Result<std::unique_ptr<kvm::Machine>> machine = BootTree(tree, {});
  ASSERT_TRUE(machine.ok()) << machine.status().ToString();

  // The pre objects were built later than the running kernel: the
  // timestamps differ, the code does not (§4.3's date/time howto).
  kcc::CompileOptions drifted;
  drifted.build_date = "Feb 22 2026";
  drifted.build_time = "12:34:56";
  kelf::ObjectFile pre = CompilePre(tree, drifted);

  RunPreMatcher matcher(**machine);
  MatchStats stats;
  ks::Result<UnitMatch> match = matcher.MatchUnit(pre, &stats);
  ASSERT_TRUE(match.ok()) << match.status().ToString();
  EXPECT_EQ(stats.date_time_sections_matched, 2u);  // .date and .time
  EXPECT_GE(stats.extable_sections_matched, 1u);
  EXPECT_GE(stats.bug_table_sections_matched, 1u);

  // The drift was real: matched run bytes differ from the pre bytes.
  const kelf::Section* pre_date = pre.SectionByName(".rodata.date");
  ASSERT_NE(pre_date, nullptr);
  ASSERT_TRUE(match->sections.count(".rodata.date"));
  ks::Result<std::vector<uint8_t>> run_bytes = (*machine)->ReadBytes(
      match->sections[".rodata.date"].run_address, pre_date->size());
  ASSERT_TRUE(run_bytes.ok());
  EXPECT_NE(*run_bytes, pre_date->bytes)
      << "run and pre timestamps should differ for this test to bite";
}

TEST(HowtoMatch, ChangedExtableFixupRefusesNamingEntry) {
  SourceTree tree = HowtoTree();
  ks::Result<std::unique_ptr<kvm::Machine>> machine = BootTree(tree, {});
  ASSERT_TRUE(machine.ok()) << machine.status().ToString();
  kelf::ObjectFile pre = CompilePre(tree, {});

  // Redirect the run image's fixup word: the table still parses, but the
  // (insn, fixup) pair no longer corresponds to the pre entry.
  uint32_t table = AddressOf(**machine, "__extable_guarded_read");
  ASSERT_NE(table, 0u);
  ks::Result<uint32_t> fixup = (*machine)->ReadWord(table + 4);
  ASSERT_TRUE(fixup.ok());
  ASSERT_TRUE((*machine)->WriteWord(table + 4, *fixup + 2).ok());

  std::string first_message;
  for (MatcherOptions options :
       {MatcherOptions{true, 1}, MatcherOptions{false, 1}}) {
    RunPreMatcher matcher(**machine, nullptr, options);
    ks::Result<UnitMatch> match = matcher.MatchUnit(pre);
    ASSERT_FALSE(match.ok());
    EXPECT_EQ(match.status().code(), ks::ErrorCode::kAborted);
    // The per-entry diagnostic names the failing entry index.
    EXPECT_NE(match.status().message().find("entry 0"), std::string::npos)
        << match.status().message();
    if (first_message.empty()) {
      first_message = match.status().message();
    } else {
      EXPECT_EQ(first_message, match.status().message())
          << "refusals must be byte-identical with and without the index";
    }
  }
}

TEST(HowtoMatch, DecisionsIdenticalAcrossJobsAndIndex) {
  SourceTree tree = HowtoTree();
  ks::Result<std::unique_ptr<kvm::Machine>> machine = BootTree(tree, {});
  ASSERT_TRUE(machine.ok()) << machine.status().ToString();
  kcc::CompileOptions drifted;
  drifted.build_date = "Feb 22 2026";
  drifted.build_time = "12:34:56";
  kelf::ObjectFile pre = CompilePre(tree, drifted);

  std::optional<UnitMatch> baseline;
  std::optional<MatchStats> baseline_stats;
  for (bool use_index : {true, false}) {
    for (int jobs : {1, 8}) {
      MatcherOptions options;
      options.use_index = use_index;
      options.jobs = jobs;
      RunPreMatcher matcher(**machine, nullptr, options);
      MatchStats stats;
      ks::Result<UnitMatch> match = matcher.MatchUnit(pre, &stats);
      ASSERT_TRUE(match.ok())
          << "index=" << use_index << " jobs=" << jobs << ": "
          << match.status().ToString();
      if (!baseline.has_value()) {
        baseline = *match;
        baseline_stats = stats;
        continue;
      }
      EXPECT_EQ(match->symbol_values, baseline->symbol_values);
      ASSERT_EQ(match->sections.size(), baseline->sections.size());
      for (const auto& [name, section] : match->sections) {
        ASSERT_TRUE(baseline->sections.count(name)) << name;
        EXPECT_EQ(section.run_address,
                  baseline->sections[name].run_address) << name;
        EXPECT_EQ(section.run_size, baseline->sections[name].run_size)
            << name;
      }
      EXPECT_EQ(stats.sections_matched, baseline_stats->sections_matched);
      EXPECT_EQ(stats.extable_sections_matched,
                baseline_stats->extable_sections_matched);
      EXPECT_EQ(stats.bug_table_sections_matched,
                baseline_stats->bug_table_sections_matched);
      EXPECT_EQ(stats.date_time_sections_matched,
                baseline_stats->date_time_sections_matched);
    }
  }
}

// ---------------------------------------------------------------- e2e

// A package built from date-drifted source applies where byte-wise
// matching would have refused, and the spliced code serves the module's
// own timestamp strings afterwards.
TEST(HowtoEndToEnd, DateDriftedPackageApplies) {
  SourceTree tree = HowtoTree();
  ks::Result<std::unique_ptr<kvm::Machine>> machine = BootTree(tree, {});
  ASSERT_TRUE(machine.ok()) << machine.status().ToString();

  uint32_t banner = AddressOf(**machine, "kernel_banner");
  ASSERT_NE(banner, 0u);
  ks::Result<uint32_t> before = (*machine)->CallFunction(banner, 2);
  ASSERT_TRUE(before.ok());
  ks::Result<std::vector<uint8_t>> before_str =
      (*machine)->ReadBytes(*before, 11);
  ASSERT_TRUE(before_str.ok());
  EXPECT_EQ(std::string(before_str->begin(), before_str->end()),
            "Jan  1 2026");

  SourceTree post = tree;
  std::string contents = *post.Read(kUnit);
  size_t at = contents.find("if (pick == 1) {");
  ASSERT_NE(at, std::string::npos);
  contents.replace(at, std::string("if (pick == 1) {").size(),
                   "if (pick != 0) {");
  post.Write(kUnit, contents);

  CreateOptions options;
  options.id = "howto-date-drift";
  options.compile.build_date = "Feb 22 2026";
  options.compile.build_time = "12:34:56";
  ks::Result<CreateResult> created =
      CreateUpdate(tree, kdiff::MakeUnifiedDiff(tree, post), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  KspliceCore core(machine->get());
  ks::Result<ApplyReport> applied = core.Apply(created->package);
  ASSERT_TRUE(applied.ok())
      << "content-ignoring matching must tolerate timestamp drift: "
      << applied.status().ToString();

  // The patched banner now takes the != branch and returns a time
  // string. Content-ignoring matching resolved the module's timestamp
  // reference to the *run kernel's* existing .rodata.time — the whole
  // point of the date/time howto is that the drifted copy is never
  // spliced in as if it were changed data.
  ks::Result<uint32_t> after = (*machine)->CallFunction(banner, 2);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ks::Result<std::vector<uint8_t>> after_str =
      (*machine)->ReadBytes(*after, 8);
  ASSERT_TRUE(after_str.ok());
  EXPECT_EQ(std::string(after_str->begin(), after_str->end()), "00:00:00");

  // The module's tables are live: a wild read through the spliced
  // guarded_read still recovers.
  uint32_t guarded = AddressOf(**machine, "guarded_read");
  uint64_t fixups = (*machine)->ExtableFixups();
  ks::Result<uint32_t> wild = (*machine)->CallFunction(guarded, kWildAddr);
  ASSERT_TRUE(wild.ok());
  EXPECT_EQ(*wild, 4095u);
  EXPECT_GT((*machine)->ExtableFixups(), fixups);
}

}  // namespace
}  // namespace ksplice
