// kanalyze summary layer and the semantic-diff pass.
//
//   - direct summaries by abstract interpretation (SummarizeSection):
//     attributed reads/writes with offset and width, frame invisibility,
//     unresolved stores, lock acquire/release pairing, blocking
//     primitives, and the deterministic serialization round-trip
//   - package summaries (ComputeSummaries through AnalyzePackage): exact
//     kanalyze.summary.cache_{hits,misses} counts cold vs warm, and
//     byte-identical reports at -j 1 vs -j 8 and cold vs warm cache
//   - semdiff rules over crafted packages: write-set growth into
//     persistent data (KSA501), store width change at a shared field
//     (KSA502), introduced lock imbalance (KSA503), and a new call path
//     into hook-gated data (KSA504)

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/metrics.h"
#include "kanalyze/callgraph.h"
#include "kanalyze/kanalyze.h"
#include "kanalyze/summary.h"
#include "kcc/compile.h"
#include "kcc/objcache.h"
#include "kdiff/diff.h"
#include "ksplice/create.h"
#include "ksplice/package.h"

namespace kanalyze {
namespace {

using kdiff::SourceTree;
using ksplice::LintReport;
using ksplice::LintSeverity;

kcc::CompileOptions Monolithic() {
  kcc::CompileOptions options;
  options.function_sections = false;
  options.data_sections = false;
  return options;
}

ks::Result<ksplice::CreateResult> Create(
    const SourceTree& tree, const std::string& patch,
    ksplice::LintMode lint = ksplice::LintMode::kWarn) {
  ksplice::CreateOptions options;
  options.compile = Monolithic();
  options.id = "summary-test";
  options.lint = lint;
  return ksplice::CreateUpdate(tree, patch, options);
}

std::string EditPatch(const SourceTree& tree, const std::string& path,
                      const std::string& from, const std::string& to) {
  SourceTree post = tree;
  std::string contents = *tree.Read(path);
  size_t at = contents.find(from);
  EXPECT_NE(at, std::string::npos) << from;
  contents.replace(at, from.size(), to);
  post.Write(path, contents);
  return kdiff::MakeUnifiedDiff(tree, post);
}

std::vector<ksplice::LintFinding> WithRule(const LintReport& report,
                                           const std::string& rule) {
  std::vector<ksplice::LintFinding> out;
  for (const ksplice::LintFinding& finding : report.findings) {
    if (finding.rule == rule) {
      out.push_back(finding);
    }
  }
  return out;
}

// Assembles one unit (monolithic sections: ".text", ".data").
kelf::ObjectFile CompileAsm(const std::string& path,
                            const std::string& source) {
  SourceTree tree;
  tree.Write(path, source);
  ks::Result<kelf::ObjectFile> obj =
      kcc::CompileUnit(tree, path, Monolithic());
  EXPECT_TRUE(obj.ok()) << obj.status().ToString();
  return obj.ok() ? *obj : kelf::ObjectFile(path);
}

const kelf::Section* TextSection(const kelf::ObjectFile& obj) {
  for (const kelf::Section& section : obj.sections()) {
    if (section.kind == kelf::SectionKind::kText && !section.bytes.empty()) {
      return &section;
    }
  }
  return nullptr;
}

FunctionSummary Summarize(const std::string& source) {
  kelf::ObjectFile obj = CompileAsm("m.kvs", source);
  const kelf::Section* text = TextSection(obj);
  EXPECT_NE(text, nullptr);
  return text != nullptr ? SummarizeSection(obj, *text) : FunctionSummary();
}

// ------------------------------------------------------------------------
// Direct summaries.

TEST(SummaryDirect, GlobalReadModifyWriteIsAttributed) {
  FunctionSummary s = Summarize(R"(
.text
.global f
f:
    mov r0, =counter
    load r1, [r0]
    add r1, 1
    store [r0], r1
    ret
.data
.global counter
.align 4
counter:
    .word 0
)");
  ASSERT_EQ(s.writes.size(), 1u);
  EXPECT_EQ(s.writes[0].symbol, "counter");
  EXPECT_EQ(s.writes[0].offset, 0);
  EXPECT_EQ(s.writes[0].width, 4u);
  EXPECT_TRUE(s.writes[0].offset_known);
  ASSERT_EQ(s.reads.size(), 1u);
  EXPECT_EQ(s.reads[0].symbol, "counter");
  EXPECT_FALSE(s.writes_unresolved);
  EXPECT_FALSE(s.reads_unresolved);
  EXPECT_FALSE(s.blocks);
}

TEST(SummaryDirect, ByteStoreHasWidthOne) {
  FunctionSummary s = Summarize(R"(
.text
.global f
f:
    mov r0, =flag
    mov r1, 1
    storeb [r0], r1
    ret
.data
.global flag
flag:
    .byte 0
)");
  ASSERT_EQ(s.writes.size(), 1u);
  EXPECT_EQ(s.writes[0].width, 1u);
}

TEST(SummaryDirect, ProvableRegisterArithmeticFeedsOffset) {
  FunctionSummary s = Summarize(R"(
.text
.global f
f:
    mov r0, =table
    add r0, 8
    mov r1, 5
    store [r0], r1
    ret
.data
.global table
.align 4
table:
    .word 0, 0, 0, 0
)");
  ASSERT_EQ(s.writes.size(), 1u);
  EXPECT_EQ(s.writes[0].symbol, "table");
  EXPECT_EQ(s.writes[0].offset, 8);
  EXPECT_TRUE(s.writes[0].offset_known);
}

TEST(SummaryDirect, FrameAccessesAreInvisible) {
  // Locals (fp/sp-relative) never escape the activation: no effects, no
  // unresolved marker.
  FunctionSummary s = Summarize(R"(
.text
.global f
f:
    push fp
    mov fp, sp
    mov r1, 9
    store [fp], r1
    load r2, [fp]
    pop fp
    ret
)");
  EXPECT_TRUE(s.writes.empty());
  EXPECT_TRUE(s.reads.empty());
  EXPECT_FALSE(s.writes_unresolved);
  EXPECT_FALSE(s.reads_unresolved);
}

TEST(SummaryDirect, UnattributableStoreIsUnresolved) {
  // r3 was never defined in this block: the store's target is unknown.
  FunctionSummary s = Summarize(R"(
.text
.global f
f:
    mov r1, 2
    store [r3], r1
    ret
)");
  EXPECT_TRUE(s.writes.empty());
  EXPECT_TRUE(s.writes_unresolved);
}

TEST(SummaryDirect, PairedLockIsProvablyBalanced) {
  FunctionSummary s = Summarize(R"(
.text
.global f
f:
    sys 9
    mov r1, 1
    sys 10
    ret
)");
  EXPECT_EQ(s.lock_acquires, 1u);
  EXPECT_EQ(s.lock_releases, 1u);
  EXPECT_TRUE(s.ProvablyLockBalanced());
  EXPECT_TRUE(s.blocks);  // lock_kernel can block
  EXPECT_EQ(s.blocking_primitives.count("lock_kernel"), 1u);
}

TEST(SummaryDirect, MissingReleaseIsProvableImbalance) {
  FunctionSummary s = Summarize(R"(
.text
.global f
f:
    sys 9
    ret
)");
  EXPECT_EQ(s.lock_acquires, 1u);
  EXPECT_EQ(s.lock_releases, 0u);
  EXPECT_FALSE(s.ProvablyLockBalanced());
  EXPECT_TRUE(s.lock_imbalance);
  EXPECT_EQ(s.lock_imbalance_depth, 1);
}

TEST(SummaryDirect, SerializeRoundTrips) {
  FunctionSummary s = Summarize(R"(
.text
.global f
f:
    mov r0, =counter
    load r1, [r0]
    add r1, 1
    store [r0], r1
    sys 3
    call helper
    ret
.data
.global counter
.align 4
counter:
    .word 0
)");
  std::vector<uint8_t> blob = s.Serialize();
  ks::Result<FunctionSummary> back = FunctionSummary::Deserialize(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->Serialize(), blob);
  EXPECT_EQ(back->writes, s.writes);
  EXPECT_EQ(back->reads, s.reads);
  EXPECT_EQ(back->blocking_primitives, s.blocking_primitives);
  EXPECT_EQ(back->callees, s.callees);
  EXPECT_EQ(back->insns, s.insns);
}

TEST(SummaryDirect, NormalizeStripsUnitScope) {
  EXPECT_EQ(NormalizeEffectSymbol("m.kc::counter"), "counter");
  EXPECT_EQ(NormalizeEffectSymbol("counter"), "counter");
}

// ------------------------------------------------------------------------
// Package summaries: cache accounting and determinism.

TEST(SummaryPackage, ColdThenWarmCacheCountsAreExact) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int pick(int x) {
  sleep(1);
  return x + 1;
}
)");
  std::string patch = EditPatch(tree, "m.kc", "x + 1", "x + 2");
  ks::Result<ksplice::CreateResult> created =
      Create(tree, patch, ksplice::LintMode::kOff);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  ks::Counter& hits =
      ks::Metrics().GetCounter("kanalyze.summary.cache_hits");
  ks::Counter& misses =
      ks::Metrics().GetCounter("kanalyze.summary.cache_misses");
  ks::Counter& computed =
      ks::Metrics().GetCounter("kanalyze.summary.computed");

  kcc::ObjectCache cache;
  AnalyzeOptions options;
  options.jobs = 1;
  options.cache = &cache;

  // Cold: every distinct function body is a miss (pre and post bodies of
  // `pick` differ, so two entries).
  uint64_t hits0 = hits.value();
  uint64_t misses0 = misses.value();
  uint64_t computed0 = computed.value();
  ks::Result<LintReport> cold = AnalyzePackage(created->package, options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->functions_summarized, 2u);
  EXPECT_EQ(hits.value() - hits0, 0u);
  EXPECT_EQ(misses.value() - misses0, 2u);
  EXPECT_EQ(computed.value() - computed0, 2u);
  EXPECT_EQ(cache.blob_hits(), 0u);
  EXPECT_EQ(cache.blob_misses(), 2u);

  // Warm: every summary is served from the blob store, and the report is
  // byte-identical (the report never encodes cache state).
  uint64_t hits1 = hits.value();
  uint64_t misses1 = misses.value();
  uint64_t computed1 = computed.value();
  ks::Result<LintReport> warm = AnalyzePackage(created->package, options);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(hits.value() - hits1, 2u);
  EXPECT_EQ(misses.value() - misses1, 0u);
  EXPECT_EQ(computed.value() - computed1, 0u);
  EXPECT_EQ(cache.blob_hits(), 2u);
  EXPECT_EQ(cold->ToJson(), warm->ToJson());
}

TEST(SummaryPackage, ReportIsByteIdenticalAcrossJobsAndCache) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int st_a; int st_b; int st_c; int st_d;
int park_a(int n) {
  st_a += 1; st_b += 2; st_c += 3; st_d += 4;
  st_a += st_b; st_c += st_d;
  sleep(n);
  st_b += st_c;
  return st_a;
}
int park_b(int n) {
  st_a += 4; st_b += 3; st_c += 2; st_d += 1;
  st_d += st_c; st_b += st_a;
  sleep(n);
  st_c += st_b;
  return st_b;
}
int lock_c(int n) {
  lock_kernel();
  st_a += n; st_b += n; st_c += n; st_d += n;
  st_a += st_d; st_b += st_c;
  unlock_kernel();
  return st_c;
}
int outer(int n) {
  return park_a(n) + park_b(n) + lock_c(n);
}
)");
  std::string patch = EditPatch(tree, "m.kc", "park_a(n) + park_b(n)",
                                "park_b(n) + park_a(n)");
  ks::Result<ksplice::CreateResult> created =
      Create(tree, patch, ksplice::LintMode::kOff);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  AnalyzeOptions serial;
  serial.jobs = 1;
  ks::Result<LintReport> baseline =
      AnalyzePackage(created->package, serial);
  ASSERT_TRUE(baseline.ok());

  AnalyzeOptions wide;
  wide.jobs = 8;
  ks::Result<LintReport> fanned = AnalyzePackage(created->package, wide);
  ASSERT_TRUE(fanned.ok());
  EXPECT_EQ(baseline->ToJson(), fanned->ToJson());

  kcc::ObjectCache cache;
  AnalyzeOptions cached;
  cached.jobs = 8;
  cached.cache = &cache;
  ks::Result<LintReport> cold = AnalyzePackage(created->package, cached);
  ks::Result<LintReport> warm = AnalyzePackage(created->package, cached);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(baseline->ToJson(), cold->ToJson());
  EXPECT_EQ(baseline->ToJson(), warm->ToJson());
}

// ------------------------------------------------------------------------
// Semantic diff: KSA501 (write-set growth into persistent data).

TEST(Semdiff, GrownWriteSetIntoPersistentDataWarns) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int counter; int aux;
int tick(int n) {
  counter += n;
  return counter;
}
)");
  std::string patch =
      EditPatch(tree, "m.kc", "counter += n;", "counter += n; aux = n;");
  ks::Result<ksplice::CreateResult> created = Create(tree, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  std::vector<ksplice::LintFinding> findings =
      WithRule(created->report.lint, "KSA501");
  ASSERT_EQ(findings.size(), 1u) << created->report.lint.ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kWarning);
  EXPECT_EQ(findings[0].symbol, "tick");
  EXPECT_NE(findings[0].message.find("aux"), std::string::npos)
      << findings[0].message;
  EXPECT_EQ(created->report.lint.errors(), 0u);
}

// ------------------------------------------------------------------------
// KSA502 (store width changed at a shared field). Crafted at the object
// level: the data section is byte-identical pre/post, so the abi pass is
// blind and only the summary diff can see the narrowed store.

TEST(Semdiff, StoreWidthChangeAtSharedFieldIsError) {
  ksplice::UpdatePackage package;
  package.id = "crafted-width";
  package.helper_objects.push_back(CompileAsm("m.kvs", R"(
.text
.global f
f:
    mov r0, =cell
    mov r1, 7
    store [r0], r1
    ret
.data
.global cell
.align 4
cell:
    .word 0
)"));
  package.primary_objects.push_back(CompileAsm("m.kvs", R"(
.text
.global f
f:
    mov r0, =cell
    mov r1, 7
    storeb [r0], r1
    ret
)"));
  package.targets.push_back(ksplice::Target{"m.kvs", "f", ".text"});

  ks::Result<LintReport> report = AnalyzePackage(package);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  std::vector<ksplice::LintFinding> findings = WithRule(*report, "KSA502");
  ASSERT_EQ(findings.size(), 1u) << report->ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kError);
  EXPECT_EQ(findings[0].symbol, "f");
  EXPECT_TRUE(findings[0].has_offset);
  EXPECT_EQ(findings[0].offset, 0u);
  EXPECT_NE(findings[0].message.find("cell"), std::string::npos);
}

// ------------------------------------------------------------------------
// KSA503 (lock imbalance introduced by the patch).

TEST(Semdiff, IntroducedLockImbalanceIsError) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int st;
int guarded(int n) {
  lock_kernel();
  st += n;
  unlock_kernel();
  return st;
}
)");
  std::string patch = EditPatch(tree, "m.kc", "unlock_kernel();", "");
  ks::Result<ksplice::CreateResult> created = Create(tree, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  std::vector<ksplice::LintFinding> findings =
      WithRule(created->report.lint, "KSA503");
  ASSERT_EQ(findings.size(), 1u) << created->report.lint.ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kError);
  EXPECT_EQ(findings[0].symbol, "guarded");
}

TEST(Semdiff, BalancedLockEditStaysClean) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int st;
int guarded(int n) {
  lock_kernel();
  st += n;
  unlock_kernel();
  return st;
}
)");
  std::string patch = EditPatch(tree, "m.kc", "st += n;", "st += n + 1;");
  ks::Result<ksplice::CreateResult> created = Create(tree, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_TRUE(WithRule(created->report.lint, "KSA503").empty())
      << created->report.lint.ToJson();
}

// ------------------------------------------------------------------------
// KSA504 (new call path writes hook-gated data). Crafted: unit a's
// patched `f` gains a call into unit b's `g`, which writes the very datum
// the package's apply hook transforms.

TEST(Semdiff, NewCallPathIntoHookGatedDataIsNoted) {
  ksplice::UpdatePackage package;
  package.id = "crafted-gated";

  package.helper_objects.push_back(CompileAsm("a.kvs", R"(
.text
.global f
f:
    ret
)"));
  package.helper_objects.push_back(CompileAsm("b.kvs", R"(
.text
.global g
g:
    mov r0, =x
    mov r1, 1
    store [r0], r1
    ret
.data
.global x
.align 4
x:
    .word 1
)"));

  kelf::ObjectFile primary_a = CompileAsm("a.kvs", R"(
.text
.global f
f:
    call g
    ret
)");
  kelf::Section hook;
  hook.name = ".ksplice.apply";
  hook.kind = kelf::SectionKind::kNote;
  hook.bytes = {0, 0, 0, 0};
  primary_a.AddSection(std::move(hook));
  package.primary_objects.push_back(std::move(primary_a));

  // Unit b's primary ships the transformed image of `x` (what the hook
  // installs), making `x` hook-gated data.
  kelf::ObjectFile primary_b("b.kvs");
  kelf::Section data;
  data.name = ".data";
  data.kind = kelf::SectionKind::kData;
  data.align = 4;
  data.bytes = {2, 0, 0, 0};
  int dsi = primary_b.AddSection(std::move(data));
  kelf::Symbol xsym;
  xsym.name = "x";
  xsym.binding = kelf::SymbolBinding::kGlobal;
  xsym.kind = kelf::SymbolKind::kObject;
  xsym.section = dsi;
  primary_b.AddSymbol(std::move(xsym));
  package.primary_objects.push_back(std::move(primary_b));

  package.targets.push_back(ksplice::Target{"a.kvs", "f", ".text"});

  ks::Result<LintReport> report = AnalyzePackage(package);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  std::vector<ksplice::LintFinding> findings = WithRule(*report, "KSA504");
  ASSERT_EQ(findings.size(), 1u) << report->ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kNote);
  EXPECT_EQ(findings[0].symbol, "f");
  EXPECT_NE(findings[0].message.find("'x'"), std::string::npos);
  // The grown write-set also fires (x is persistent pre-state), and the
  // hooks keep everything below error severity.
  EXPECT_EQ(WithRule(*report, "KSA501").size(), 1u);
  EXPECT_EQ(report->errors(), 0u);
}

}  // namespace
}  // namespace kanalyze
