// kanalyze: golden lint behaviour over real created packages plus crafted
// packages that trip each pass family, and the CreateUpdate --lint gate.
//
//   - a clean quickstart-style patch lints with zero findings
//   - callgraph: dangling scoped import (KSA101), recursion (KSA102),
//     missing target (KSA104)
//   - cfg: undecodable bytes (KSA201), wild jump (KSA202), falling off the
//     end (KSA203), unreachable code (KSA204), stack imbalance (KSA205)
//   - abi: data change without hooks (KSA302) vs with hooks (KSA303),
//     layout change (KSA301)
//   - quiescence: patched function blocks (KSA401) or reaches a blocking
//     primitive (KSA402), deduplicated per (function, primitive)
//
// Summary-layer internals and the semantic-diff pass (KSA501-504) are
// exercised in kanalyze_summary_test.cc.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kanalyze/cfg.h"
#include "kanalyze/kanalyze.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/create.h"
#include "ksplice/package.h"

namespace kanalyze {
namespace {

using kdiff::SourceTree;
using ksplice::LintReport;
using ksplice::LintSeverity;

kcc::CompileOptions Monolithic() {
  kcc::CompileOptions options;
  options.function_sections = false;
  options.data_sections = false;
  return options;
}

ks::Result<ksplice::CreateResult> Create(
    const SourceTree& tree, const std::string& patch,
    ksplice::LintMode lint = ksplice::LintMode::kWarn) {
  ksplice::CreateOptions options;
  options.compile = Monolithic();
  options.id = "kanalyze-test";
  options.lint = lint;
  return ksplice::CreateUpdate(tree, patch, options);
}

std::string EditPatch(const SourceTree& tree, const std::string& path,
                      const std::string& from, const std::string& to) {
  SourceTree post = tree;
  std::string contents = *tree.Read(path);
  size_t at = contents.find(from);
  EXPECT_NE(at, std::string::npos) << from;
  contents.replace(at, from.size(), to);
  post.Write(path, contents);
  return kdiff::MakeUnifiedDiff(tree, post);
}

// Findings in `report` with the given rule id.
std::vector<ksplice::LintFinding> WithRule(const LintReport& report,
                                           const std::string& rule) {
  std::vector<ksplice::LintFinding> out;
  for (const ksplice::LintFinding& finding : report.findings) {
    if (finding.rule == rule) {
      out.push_back(finding);
    }
  }
  return out;
}

// ------------------------------------------------------------------------
// Golden: a clean patch produces a clean report.

TEST(KanalyzeGolden, CleanPatchHasNoFindings) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int scale(int x) {
  return x * 3;
}
)");
  std::string patch = EditPatch(tree, "m.kc", "x * 3", "x * 4");
  ks::Result<ksplice::CreateResult> created = Create(tree, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  const LintReport& lint = created->report.lint;
  EXPECT_TRUE(lint.findings.empty()) << lint.ToJson();
  EXPECT_GT(lint.functions_scanned, 0u);
  EXPECT_GT(lint.blocks_analyzed, 0u);
  EXPECT_GT(lint.insns_decoded, 0u);
  EXPECT_EQ(lint.id, "kanalyze-test");
}

TEST(KanalyzeGolden, ReportIsDeterministic) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int pick(int x) {
  sleep(1);
  return x + 1;
}
)");
  std::string patch = EditPatch(tree, "m.kc", "x + 1", "x + 2");
  ks::Result<ksplice::CreateResult> created = Create(tree, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  ks::Result<LintReport> again = AnalyzePackage(created->package);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(created->report.lint.ToJson(), again->ToJson());
}

// ------------------------------------------------------------------------
// Callgraph pass.

TEST(KanalyzeCallgraph, DanglingScopedImportIsError) {
  SourceTree tree;
  tree.Write("m.kc", R"(
static int secret = 42;
int reveal(int x) {
  return secret + x;
}
)");
  std::string patch = EditPatch(tree, "m.kc", "secret + x", "secret + x + 1");
  ks::Result<ksplice::CreateResult> created = Create(tree, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  // The extracted replacement references the unit-local `secret` through a
  // scoped import that run-pre matching must resolve. Renaming the
  // helper's symbol models a package built against the wrong pre source.
  ksplice::UpdatePackage package = created->package;
  ASSERT_EQ(package.helper_objects.size(), 1u);
  bool renamed = false;
  for (kelf::Symbol& sym : package.helper_objects[0].symbols()) {
    if (sym.name == "secret") {
      sym.name = "hidden";
      renamed = true;
    }
  }
  ASSERT_TRUE(renamed);

  ks::Result<LintReport> report = AnalyzePackage(package);
  ASSERT_TRUE(report.ok());
  std::vector<ksplice::LintFinding> findings = WithRule(*report, "KSA101");
  ASSERT_EQ(findings.size(), 1u) << report->ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kError);
  EXPECT_NE(findings[0].message.find("secret"), std::string::npos);
}

TEST(KanalyzeCallgraph, RecursivePatchedFunctionWarns) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int fact(int n) {
  if (n < 2) {
    return 1;
  }
  return n * fact(n - 1);
}
)");
  std::string patch = EditPatch(tree, "m.kc", "return 1;", "return 2;");
  ks::Result<ksplice::CreateResult> created = Create(tree, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  std::vector<ksplice::LintFinding> findings =
      WithRule(created->report.lint, "KSA102");
  ASSERT_EQ(findings.size(), 1u) << created->report.lint.ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kWarning);
  EXPECT_EQ(findings[0].symbol, "fact");
  EXPECT_EQ(created->report.lint.errors(), 0u);
}

TEST(KanalyzeCallgraph, TargetMissingFromPackageIsError) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int plain(int x) {
  return x + 1;
}
)");
  std::string patch = EditPatch(tree, "m.kc", "x + 1", "x + 2");
  ks::Result<ksplice::CreateResult> created = Create(tree, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  ksplice::UpdatePackage package = created->package;
  package.targets.push_back(
      ksplice::Target{"m.kc", "no_such_fn", ".text.no_such_fn"});

  ks::Result<LintReport> report = AnalyzePackage(package);
  ASSERT_TRUE(report.ok());
  std::vector<ksplice::LintFinding> findings = WithRule(*report, "KSA104");
  ASSERT_EQ(findings.size(), 1u) << report->ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kError);
  EXPECT_EQ(findings[0].symbol, "no_such_fn");
}

// ------------------------------------------------------------------------
// CFG pass: crafted sections exercise each verifier rule.

// Assembles a one-unit tree and returns the object (monolithic .text).
kelf::ObjectFile Assemble(const std::string& source) {
  SourceTree tree;
  tree.Write("m.kvs", source);
  ks::Result<kelf::ObjectFile> obj =
      kcc::CompileUnit(tree, "m.kvs", Monolithic());
  EXPECT_TRUE(obj.ok()) << obj.status().ToString();
  return obj.ok() ? *obj : kelf::ObjectFile("m.kvs");
}

const kelf::Section* TextSection(const kelf::ObjectFile& obj) {
  for (const kelf::Section& section : obj.sections()) {
    if (section.kind == kelf::SectionKind::kText && !section.bytes.empty()) {
      return &section;
    }
  }
  return nullptr;
}

TEST(KanalyzeCfg, UndecodableBytesAreAnError) {
  kelf::Section section;
  section.name = ".text.f";
  section.kind = kelf::SectionKind::kText;
  section.bytes = {0xff, 0xff};  // no such opcode

  LintReport report;
  VerifyFunction("m.kvs", "f", section, &report);
  std::vector<ksplice::LintFinding> findings = WithRule(report, "KSA201");
  ASSERT_EQ(findings.size(), 1u) << report.ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kError);
}

TEST(KanalyzeCfg, WildJumpIsAnError) {
  // jmp8 +127 from a 2-byte function: far outside the section.
  kelf::Section section;
  section.name = ".text.f";
  section.kind = kelf::SectionKind::kText;
  section.bytes = {0x43, 0x7f};

  LintReport report;
  VerifyFunction("m.kvs", "f", section, &report);
  std::vector<ksplice::LintFinding> findings = WithRule(report, "KSA202");
  ASSERT_EQ(findings.size(), 1u) << report.ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kError);
  EXPECT_TRUE(findings[0].has_offset);
}

TEST(KanalyzeCfg, FallingOffTheEndIsAnError) {
  kelf::ObjectFile obj = Assemble(R"(
.text
.global f
f:
    mov r0, 1
)");
  const kelf::Section* section = TextSection(obj);
  ASSERT_NE(section, nullptr);

  LintReport report;
  VerifyFunction("m.kvs", "f", *section, &report);
  std::vector<ksplice::LintFinding> findings = WithRule(report, "KSA203");
  ASSERT_EQ(findings.size(), 1u) << report.ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kError);
}

TEST(KanalyzeCfg, UnreachableCodeIsAWarning) {
  kelf::ObjectFile obj = Assemble(R"(
.text
.global f
f:
    ret
dead:
    mov r0, 1
    ret
)");
  const kelf::Section* section = TextSection(obj);
  ASSERT_NE(section, nullptr);

  LintReport report;
  VerifyFunction("m.kvs", "f", *section, &report);
  std::vector<ksplice::LintFinding> findings = WithRule(report, "KSA204");
  ASSERT_EQ(findings.size(), 1u) << report.ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kWarning);
  EXPECT_EQ(report.errors(), 0u);
}

TEST(KanalyzeCfg, StackImbalanceAtRetIsAWarning) {
  kelf::ObjectFile obj = Assemble(R"(
.text
.global f
f:
    push fp
    ret
)");
  const kelf::Section* section = TextSection(obj);
  ASSERT_NE(section, nullptr);

  LintReport report;
  VerifyFunction("m.kvs", "f", *section, &report);
  std::vector<ksplice::LintFinding> findings = WithRule(report, "KSA205");
  ASSERT_EQ(findings.size(), 1u) << report.ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kWarning);
}

// A loop that is balanced within each iteration must not confuse the
// abstract stack: the push before the loop gives every ret the same
// provable depth, so exactly one imbalance fires at the ret.
TEST(KanalyzeCfg, LoopCarriedBalancedDepthStillProvesImbalance) {
  kelf::ObjectFile obj = Assemble(R"(
.text
.global f
f:
    push fp
    mov r0, 3
.loop:
    sub r0, 1
    cmp r0, 0
    jnz .loop
    ret
)");
  const kelf::Section* section = TextSection(obj);
  ASSERT_NE(section, nullptr);

  LintReport report;
  VerifyFunction("m.kvs", "f", *section, &report);
  std::vector<ksplice::LintFinding> findings = WithRule(report, "KSA205");
  ASSERT_EQ(findings.size(), 1u) << report.ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kWarning);
}

// A push on only one path through the loop body makes the depth at the
// loop head path-dependent; the join must degrade to unknown and KSA205
// must stay silent (provable imbalance only).
TEST(KanalyzeCfg, ConditionalPushInLoopDegradesToUnknown) {
  kelf::ObjectFile obj = Assemble(R"(
.text
.global f
f:
    mov r0, 2
.loop:
    cmp r0, 1
    jz .skip
    push r0
.skip:
    sub r0, 1
    cmp r0, 0
    jnz .loop
    ret
)");
  const kelf::Section* section = TextSection(obj);
  ASSERT_NE(section, nullptr);

  LintReport report;
  VerifyFunction("m.kvs", "f", *section, &report);
  EXPECT_TRUE(WithRule(report, "KSA205").empty()) << report.ToJson();
}

TEST(KanalyzeCfg, BalancedFunctionIsClean) {
  kelf::ObjectFile obj = Assemble(R"(
.text
.global f
f:
    push fp
    mov fp, sp
    sub sp, 8
    mov r0, 7
    mov sp, fp
    pop fp
    ret
)");
  const kelf::Section* section = TextSection(obj);
  ASSERT_NE(section, nullptr);

  LintReport report;
  size_t blocks = VerifyFunction("m.kvs", "f", *section, &report);
  EXPECT_GT(blocks, 0u);
  EXPECT_TRUE(report.findings.empty()) << report.ToJson();
}

// A wild jump planted in a package (not just a bare section) surfaces
// through the full AnalyzePackage pipeline.
TEST(KanalyzeCfg, WildJumpSurfacesThroughAnalyzePackage) {
  ksplice::UpdatePackage package;
  package.id = "crafted-wild";
  kelf::ObjectFile primary("m.kc");
  kelf::Section section;
  section.name = ".text.f";
  section.kind = kelf::SectionKind::kText;
  section.bytes = {0x43, 0x7f};
  int si = primary.AddSection(std::move(section));
  kelf::Symbol sym;
  sym.name = "f";
  sym.binding = kelf::SymbolBinding::kGlobal;
  sym.kind = kelf::SymbolKind::kFunction;
  sym.section = si;
  primary.AddSymbol(std::move(sym));
  package.primary_objects.push_back(std::move(primary));

  ks::Result<LintReport> report = AnalyzePackage(package);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(WithRule(*report, "KSA202").size(), 1u) << report->ToJson();
  EXPECT_GE(report->errors(), 1u);
}

// ------------------------------------------------------------------------
// ABI pass: crafted pre/post data sections.

ksplice::UpdatePackage DataChangePackage(bool with_hooks, bool grow) {
  ksplice::UpdatePackage package;
  package.id = "crafted-abi";

  kelf::ObjectFile helper("m.kc");
  kelf::Section pre;
  pre.name = ".data.x";
  pre.kind = kelf::SectionKind::kData;
  pre.align = 4;
  pre.bytes = {1, 0, 0, 0};
  int hsi = helper.AddSection(std::move(pre));
  kelf::Symbol hsym;
  hsym.name = "x";
  hsym.binding = kelf::SymbolBinding::kGlobal;
  hsym.kind = kelf::SymbolKind::kObject;
  hsym.section = hsi;
  helper.AddSymbol(std::move(hsym));
  package.helper_objects.push_back(std::move(helper));

  kelf::ObjectFile primary("m.kc");
  kelf::Section post;
  post.name = ".data.x";
  post.kind = kelf::SectionKind::kData;
  post.align = 4;
  post.bytes = grow ? std::vector<uint8_t>{2, 0, 0, 0, 0, 0, 0, 0}
                    : std::vector<uint8_t>{2, 0, 0, 0};
  int psi = primary.AddSection(std::move(post));
  kelf::Symbol psym;
  psym.name = "x";
  psym.binding = kelf::SymbolBinding::kGlobal;
  psym.kind = kelf::SymbolKind::kObject;
  psym.section = psi;
  primary.AddSymbol(std::move(psym));
  if (with_hooks) {
    kelf::Section hook;
    hook.name = ".ksplice.apply";
    hook.kind = kelf::SectionKind::kNote;
    hook.bytes = {0, 0, 0, 0};
    primary.AddSection(std::move(hook));
  }
  package.primary_objects.push_back(std::move(primary));
  return package;
}

TEST(KanalyzeAbi, DataContentChangeWithoutHooksIsError) {
  ks::Result<LintReport> report =
      AnalyzePackage(DataChangePackage(/*with_hooks=*/false, /*grow=*/false));
  ASSERT_TRUE(report.ok());
  std::vector<ksplice::LintFinding> findings = WithRule(*report, "KSA302");
  ASSERT_EQ(findings.size(), 1u) << report->ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kError);
  EXPECT_EQ(findings[0].symbol, ".data.x");
  EXPECT_EQ(report->data_sections_compared, 1u);
}

TEST(KanalyzeAbi, DataLayoutChangeWithoutHooksIsError) {
  ks::Result<LintReport> report =
      AnalyzePackage(DataChangePackage(/*with_hooks=*/false, /*grow=*/true));
  ASSERT_TRUE(report.ok());
  std::vector<ksplice::LintFinding> findings = WithRule(*report, "KSA301");
  ASSERT_EQ(findings.size(), 1u) << report->ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kError);
}

TEST(KanalyzeAbi, HooksDowngradeDataChangeToNote) {
  ks::Result<LintReport> report =
      AnalyzePackage(DataChangePackage(/*with_hooks=*/true, /*grow=*/false));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(WithRule(*report, "KSA302").empty());
  std::vector<ksplice::LintFinding> findings = WithRule(*report, "KSA303");
  ASSERT_EQ(findings.size(), 1u) << report->ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kNote);
  EXPECT_EQ(report->errors(), 0u);
}

// ------------------------------------------------------------------------
// Quiescence pass.

TEST(KanalyzeQuiescence, BlockingPatchedFunctionWarns) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int st_a; int st_b; int st_c; int st_d;
int busy_op(int n) {
  st_a += 1; st_b += 2; st_c += 3; st_d += 4;
  st_a += st_b; st_c += st_d;
  sleep(n);
  st_b += st_c;
  return 7;
}
)");
  std::string patch = EditPatch(tree, "m.kc", "return 7;", "return 8;");
  ks::Result<ksplice::CreateResult> created = Create(tree, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  std::vector<ksplice::LintFinding> findings =
      WithRule(created->report.lint, "KSA401");
  ASSERT_EQ(findings.size(), 1u) << created->report.lint.ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kWarning);
  EXPECT_EQ(findings[0].symbol, "busy_op");
  EXPECT_EQ(created->report.lint.errors(), 0u);
}

TEST(KanalyzeQuiescence, TransitivelyBlockingPatchedFunctionNoted) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int st_a; int st_b; int st_c; int st_d;
int parker(int n) {
  st_a += 1; st_b += 2; st_c += 3; st_d += 4;
  st_a += st_b; st_c += st_d;
  sleep(n);
  st_b += st_c;
  return 7;
}
int outer(int n) {
  return parker(n) + 1;
}
)");
  std::string patch =
      EditPatch(tree, "m.kc", "parker(n) + 1", "parker(n) + 2");
  ks::Result<ksplice::CreateResult> created = Create(tree, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  std::vector<ksplice::LintFinding> findings =
      WithRule(created->report.lint, "KSA402");
  ASSERT_EQ(findings.size(), 1u) << created->report.lint.ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kNote);
  EXPECT_EQ(findings[0].symbol, "outer");
  // The direct-blocking warning belongs to a patch of parker itself, not
  // this one.
  EXPECT_TRUE(WithRule(created->report.lint, "KSA401").empty());
}

// Two call paths to the same blocking primitive are one risk: KSA402 is
// deduplicated by (rule, function, primitive).
TEST(KanalyzeQuiescence, TwoPathsToOnePrimitiveReportOnce) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int st_a; int st_b; int st_c; int st_d;
int path_one(int n) {
  st_a += 1; st_b += 2; st_c += 3; st_d += 4;
  st_a += st_b; st_c += st_d;
  sleep(n);
  st_b += st_c;
  return st_a;
}
int path_two(int n) {
  st_a += 4; st_b += 3; st_c += 2; st_d += 1;
  st_d += st_c; st_b += st_a;
  sleep(n);
  st_c += st_b;
  return st_b;
}
int outer(int n) {
  return path_one(n) + path_two(n);
}
)");
  std::string patch =
      EditPatch(tree, "m.kc", "path_one(n) + path_two(n)",
                "path_two(n) + path_one(n)");
  ks::Result<ksplice::CreateResult> created = Create(tree, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  std::vector<ksplice::LintFinding> findings =
      WithRule(created->report.lint, "KSA402");
  ASSERT_EQ(findings.size(), 1u) << created->report.lint.ToJson();
  EXPECT_EQ(findings[0].symbol, "outer");
  EXPECT_NE(findings[0].message.find("sleep"), std::string::npos)
      << findings[0].message;
}

// Distinct primitives stay distinct findings: reaching both sleep() and
// lock_kernel() is two different risks with two different remediations.
TEST(KanalyzeQuiescence, DistinctPrimitivesReportSeparately) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int st_a; int st_b; int st_c; int st_d;
int sleeper(int n) {
  st_a += 1; st_b += 2; st_c += 3; st_d += 4;
  st_a += st_b; st_c += st_d;
  sleep(n);
  st_b += st_c;
  return st_a;
}
int locker(int n) {
  lock_kernel();
  st_a += 4; st_b += 3; st_c += 2; st_d += 1;
  st_d += st_c; st_b += st_a;
  unlock_kernel();
  st_c += st_b;
  return st_b;
}
int outer(int n) {
  return sleeper(n) + locker(n);
}
)");
  std::string patch = EditPatch(tree, "m.kc", "sleeper(n) + locker(n)",
                                "locker(n) + sleeper(n)");
  ks::Result<ksplice::CreateResult> created = Create(tree, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  std::vector<ksplice::LintFinding> findings =
      WithRule(created->report.lint, "KSA402");
  ASSERT_EQ(findings.size(), 2u) << created->report.lint.ToJson();
}

// ------------------------------------------------------------------------
// Howto pass: special-section table integrity (KSA601-604). Built from
// real try_load/BUG packages, then corrupted in place — the toolchain
// itself never emits a bad table.

ks::Result<ksplice::CreateResult> ExtablePackage() {
  SourceTree tree;
  tree.Write("m.kc", R"(
int window[4];
int guarded(int addr) {
  if (addr >= 0 && addr < 4) {
    return window[addr];
  }
  return try_load(addr, 4095);
}
)");
  std::string patch = EditPatch(tree, "m.kc", "4095", "2047");
  return Create(tree, patch);
}

kelf::Section* SectionWithHowto(kelf::ObjectFile& obj, kelf::Howto howto) {
  for (kelf::Section& section : obj.sections()) {
    if (section.howto == howto) {
      return &section;
    }
  }
  return nullptr;
}

kelf::Relocation* RelocAt(kelf::Section& section, uint32_t offset) {
  for (kelf::Relocation& rel : section.relocs) {
    if (rel.offset == offset) {
      return &rel;
    }
  }
  return nullptr;
}

TEST(KanalyzeHowto, RealTablePackageIsClean) {
  ks::Result<ksplice::CreateResult> created = ExtablePackage();
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_TRUE(created->report.lint.findings.empty())
      << created->report.lint.ToJson();
  ASSERT_FALSE(created->package.primary_objects.empty());
  EXPECT_NE(SectionWithHowto(created->package.primary_objects[0],
                             kelf::Howto::kExtable),
            nullptr)
      << "the patched function's exception table must ship with it";
}

TEST(KanalyzeHowto, DanglingFixupTargetIsError) {
  ks::Result<ksplice::CreateResult> created = ExtablePackage();
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  kelf::Section* table = SectionWithHowto(
      created->package.primary_objects[0], kelf::Howto::kExtable);
  ASSERT_NE(table, nullptr);
  kelf::Relocation* fixup = RelocAt(*table, 4);
  ASSERT_NE(fixup, nullptr);
  fixup->addend = 100000;  // far past the end of the function

  ks::Result<LintReport> report = AnalyzePackage(created->package);
  ASSERT_TRUE(report.ok());
  std::vector<ksplice::LintFinding> findings = WithRule(*report, "KSA601");
  ASSERT_EQ(findings.size(), 1u) << report->ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kError);
  EXPECT_NE(findings[0].message.find("entry 0"), std::string::npos);
}

TEST(KanalyzeHowto, FixupIntoPatchedOutCodeIsError) {
  ks::Result<ksplice::CreateResult> created = ExtablePackage();
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  kelf::Section* table = SectionWithHowto(
      created->package.primary_objects[0], kelf::Howto::kExtable);
  ASSERT_NE(table, nullptr);
  kelf::Relocation* fixup = RelocAt(*table, 4);
  ASSERT_NE(fixup, nullptr);
  fixup->addend += 1;  // inside the code, but mid-instruction

  ks::Result<LintReport> report = AnalyzePackage(created->package);
  ASSERT_TRUE(report.ok());
  std::vector<ksplice::LintFinding> findings = WithRule(*report, "KSA602");
  ASSERT_EQ(findings.size(), 1u) << report->ToJson();
  EXPECT_NE(findings[0].message.find("does not start an instruction"),
            std::string::npos);
}

TEST(KanalyzeHowto, BugEntryNotGuardingTrapIsError) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int checked(int x) {
  if (x == 9) {
    BUG();
  }
  return x + 1;
}
)");
  std::string patch = EditPatch(tree, "m.kc", "x + 1", "x + 2");
  ks::Result<ksplice::CreateResult> created = Create(tree, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_TRUE(created->report.lint.findings.empty())
      << created->report.lint.ToJson();
  kelf::Section* table = SectionWithHowto(
      created->package.primary_objects[0], kelf::Howto::kBug);
  ASSERT_NE(table, nullptr);
  kelf::Relocation* trap = RelocAt(*table, 0);
  ASSERT_NE(trap, nullptr);
  trap->addend = 0;  // function entry: a valid boundary, but not `bug`

  ks::Result<LintReport> report = AnalyzePackage(created->package);
  ASSERT_TRUE(report.ok());
  std::vector<ksplice::LintFinding> findings = WithRule(*report, "KSA603");
  ASSERT_EQ(findings.size(), 1u) << report->ToJson();
  EXPECT_NE(findings[0].message.find("no longer decodes to a bug trap"),
            std::string::npos);
}

TEST(KanalyzeHowto, TimestampDriftIsANote) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int stamp_len;
char *banner(int x) {
  stamp_len = x;
  return __DATE__;
}
)");
  std::string patch =
      EditPatch(tree, "m.kc", "stamp_len = x;", "stamp_len = x + 1;");
  ks::Result<ksplice::CreateResult> created = Create(tree, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  // The toolchain never ships a drifted timestamp in one build; craft a
  // primary that carries its own copy, one byte off from the helper's.
  const kelf::ObjectFile& helper = created->package.helper_objects[0];
  const kelf::Section* pre_date = helper.SectionByName(".rodata.date");
  ASSERT_NE(pre_date, nullptr);
  kelf::Section drifted = *pre_date;
  drifted.relocs.clear();
  drifted.bytes[0] ^= 0x20;
  created->package.primary_objects[0].AddSection(std::move(drifted));

  ks::Result<LintReport> report = AnalyzePackage(created->package);
  ASSERT_TRUE(report.ok());
  std::vector<ksplice::LintFinding> findings = WithRule(*report, "KSA604");
  ASSERT_EQ(findings.size(), 1u) << report->ToJson();
  EXPECT_EQ(findings[0].severity, LintSeverity::kNote);
  EXPECT_EQ(report->errors(), 0u) << report->ToJson();
}

// ------------------------------------------------------------------------
// The CreateUpdate lint gate.

// An assembly patch is the only way to smuggle a wild jump into a package
// through the real toolchain: kcc and the assembler never emit one, but
// `.byte` lets a (malicious or broken) patch author hand-encode jmp8 +127.
const char kWildPre[] = R"(
.text
.global broken
broken:
    push fp
    mov fp, sp
    mov r0, 1
    mov sp, fp
    pop fp
    ret
)";

TEST(KanalyzeGate, LintErrorRefusesWildJumpPackage) {
  SourceTree tree;
  tree.Write("m.kvs", kWildPre);
  std::string patch = EditPatch(tree, "m.kvs", "    mov r0, 1\n",
                                "    mov r0, 1\n    .byte 0x43, 0x7f\n");

  ks::Result<ksplice::CreateResult> refused =
      Create(tree, patch, ksplice::LintMode::kError);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), ks::ErrorCode::kFailedPrecondition);
  EXPECT_NE(refused.status().ToString().find("KSA202"), std::string::npos)
      << refused.status().ToString();
}

TEST(KanalyzeGate, LintWarnRecordsButDoesNotRefuse) {
  SourceTree tree;
  tree.Write("m.kvs", kWildPre);
  std::string patch = EditPatch(tree, "m.kvs", "    mov r0, 1\n",
                                "    mov r0, 1\n    .byte 0x43, 0x7f\n");

  ks::Result<ksplice::CreateResult> created =
      Create(tree, patch, ksplice::LintMode::kWarn);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_GE(created->report.lint.errors(), 1u);
  EXPECT_FALSE(WithRule(created->report.lint, "KSA202").empty())
      << created->report.lint.ToJson();
}

TEST(KanalyzeGate, LintOffSkipsAnalysis) {
  SourceTree tree;
  tree.Write("m.kvs", kWildPre);
  std::string patch = EditPatch(tree, "m.kvs", "    mov r0, 1\n",
                                "    mov r0, 1\n    .byte 0x43, 0x7f\n");

  ks::Result<ksplice::CreateResult> created =
      Create(tree, patch, ksplice::LintMode::kOff);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_TRUE(created->report.lint.findings.empty());
  EXPECT_EQ(created->report.lint.functions_scanned, 0u);
}

}  // namespace
}  // namespace kanalyze
