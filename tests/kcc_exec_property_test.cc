// Differential property tests: random KC expression trees are compiled by
// kcc, executed in the VM, and compared against a host-side evaluator of
// the same tree. Any divergence flags a bug somewhere in the compiler,
// assembler, linker, or interpreter. Also: random control-flow programs
// (loop/branch nests) against a host oracle, and a random-instruction
// encode/decode round-trip sweep for the ISA.

#include <gtest/gtest.h>

#include <memory>

#include "base/strings.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "kvm/machine.h"
#include "kvx/isa.h"

namespace {

// Deterministic PRNG shared by generation and oracle.
class Rng {
 public:
  explicit Rng(uint32_t seed) : state_(seed * 2654435761u + 12345u) {}
  uint32_t Next() {
    state_ = state_ * 1103515245u + 12345u;
    return (state_ >> 8) & 0x7fffffff;
  }
  uint32_t Below(uint32_t n) { return Next() % n; }

 private:
  uint32_t state_;
};

// Expression tree with simultaneous rendering and evaluation. All
// arithmetic is 32-bit wraparound (KC semantics); shifts are masked;
// division avoided (fault semantics tested elsewhere).
struct Node {
  std::string text;
  uint32_t value = 0;  // two's-complement bit pattern
};

Node GenExpr(Rng& rng, const std::vector<std::pair<std::string, uint32_t>>&
                           vars, int depth) {
  if (depth <= 0 || rng.Below(4) == 0) {
    if (rng.Below(2) == 0 && !vars.empty()) {
      const auto& [name, value] = vars[rng.Below(
          static_cast<uint32_t>(vars.size()))];
      return Node{name, value};
    }
    uint32_t literal = rng.Below(2) == 0 ? rng.Below(100)
                                         : rng.Below(0x7fffffff);
    return Node{std::to_string(literal), literal};
  }
  switch (rng.Below(10)) {
    case 0: {  // unary minus
      Node a = GenExpr(rng, vars, depth - 1);
      return Node{"(-(" + a.text + "))", static_cast<uint32_t>(-static_cast<int64_t>(a.value))};
    }
    case 1: {  // logical not
      Node a = GenExpr(rng, vars, depth - 1);
      return Node{"(!(" + a.text + "))", a.value == 0 ? 1u : 0u};
    }
    case 2: {  // bitwise not
      Node a = GenExpr(rng, vars, depth - 1);
      return Node{"(~(" + a.text + "))", ~a.value};
    }
    case 3: {  // comparison
      Node a = GenExpr(rng, vars, depth - 1);
      Node b = GenExpr(rng, vars, depth - 1);
      const char* ops[] = {"<", "<=", ">", ">=", "==", "!="};
      int which = static_cast<int>(rng.Below(6));
      int32_t sa = static_cast<int32_t>(a.value);
      int32_t sb = static_cast<int32_t>(b.value);
      bool result = false;
      switch (which) {
        case 0: result = sa < sb; break;
        case 1: result = sa <= sb; break;
        case 2: result = sa > sb; break;
        case 3: result = sa >= sb; break;
        case 4: result = sa == sb; break;
        case 5: result = sa != sb; break;
      }
      return Node{"((" + a.text + ") " + ops[which] + " (" + b.text + "))",
                  result ? 1u : 0u};
    }
    case 4: {  // logical && / || (no side effects, so eager oracle is fine)
      Node a = GenExpr(rng, vars, depth - 1);
      Node b = GenExpr(rng, vars, depth - 1);
      if (rng.Below(2) == 0) {
        return Node{"((" + a.text + ") && (" + b.text + "))",
                    (a.value != 0 && b.value != 0) ? 1u : 0u};
      }
      return Node{"((" + a.text + ") || (" + b.text + "))",
                  (a.value != 0 || b.value != 0) ? 1u : 0u};
    }
    case 5: {  // shifts with small constant amounts
      Node a = GenExpr(rng, vars, depth - 1);
      uint32_t amount = rng.Below(31);
      if (rng.Below(2) == 0) {
        return Node{
            "((" + a.text + ") << " + std::to_string(amount) + ")",
            a.value << amount};
      }
      return Node{"((" + a.text + ") >> " + std::to_string(amount) + ")",
                  a.value >> amount};
    }
    default: {  // arithmetic / bitwise binary
      Node a = GenExpr(rng, vars, depth - 1);
      Node b = GenExpr(rng, vars, depth - 1);
      switch (rng.Below(6)) {
        case 0:
          return Node{"((" + a.text + ") + (" + b.text + "))",
                      a.value + b.value};
        case 1:
          return Node{"((" + a.text + ") - (" + b.text + "))",
                      a.value - b.value};
        case 2:
          return Node{"((" + a.text + ") * (" + b.text + "))",
                      static_cast<uint32_t>(
                          static_cast<int64_t>(static_cast<int32_t>(a.value)) *
                          static_cast<int32_t>(b.value))};
        case 3:
          return Node{"((" + a.text + ") & (" + b.text + "))",
                      a.value & b.value};
        case 4:
          return Node{"((" + a.text + ") | (" + b.text + "))",
                      a.value | b.value};
        default:
          return Node{"((" + a.text + ") ^ (" + b.text + "))",
                      a.value ^ b.value};
      }
    }
  }
}

// Compiles and runs `source`, returning record(1, ...)'s value.
ks::Result<uint32_t> RunKernel(const std::string& source, uint32_t arg,
                               bool function_sections) {
  kdiff::SourceTree tree;
  tree.Write("m.kc", source);
  kcc::CompileOptions options;
  options.function_sections = function_sections;
  options.data_sections = function_sections;
  KS_ASSIGN_OR_RETURN(std::vector<kelf::ObjectFile> objects,
                      kcc::BuildTree(tree, options));
  kvm::MachineConfig config;
  KS_ASSIGN_OR_RETURN(std::unique_ptr<kvm::Machine> machine,
                      kvm::Machine::Boot(std::move(objects), config));
  KS_RETURN_IF_ERROR(machine->SpawnNamed("main", arg).status());
  KS_RETURN_IF_ERROR(machine->RunToCompletion());
  if (!machine->Faults().empty()) {
    return ks::Aborted("fault: " + machine->Faults()[0]);
  }
  std::vector<uint32_t> records = machine->RecordsWithKey(1);
  if (records.size() != 1) {
    return ks::Internal("no record");
  }
  return records[0];
}

class ExprOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(ExprOracleTest, VmMatchesHostEvaluator) {
  Rng rng(static_cast<uint32_t>(GetParam()));
  std::vector<std::pair<std::string, uint32_t>> vars = {
      {"a", rng.Next()}, {"b", rng.Below(1000)},
      {"c", static_cast<uint32_t>(-static_cast<int32_t>(rng.Below(500)))},
  };
  Node expr = GenExpr(rng, vars, 4);

  std::string source = ks::StrPrintf(
      "void main(int unused) {\n"
      "  int a = %d;\n"
      "  int b = %d;\n"
      "  int c = %d;\n"
      "  record(1, %s);\n"
      "}\n",
      static_cast<int32_t>(vars[0].second),
      static_cast<int32_t>(vars[1].second),
      static_cast<int32_t>(vars[2].second), expr.text.c_str());

  ks::Result<uint32_t> vm = RunKernel(source, 0, GetParam() % 2 == 0);
  ASSERT_TRUE(vm.ok()) << vm.status().ToString() << "\n" << source;
  EXPECT_EQ(*vm, expr.value) << source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprOracleTest, ::testing::Range(0, 60));

// Control-flow oracle: random loop/branch programs over a small state
// machine, mirrored in C++.
class ControlFlowOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(ControlFlowOracleTest, VmMatchesHostEvaluator) {
  Rng rng(static_cast<uint32_t>(GetParam()) + 7777);
  // Program: for i in [0, n): sequence of conditional updates over x, y.
  int n = 3 + static_cast<int>(rng.Below(20));
  struct Step {
    uint32_t kind;   // 0: x+=y, 1: y^=x, 2: if (x>y) x-=y else y+=3,
                     // 3: while (x > LIM) x >>= 1, 4: continue-if, 5: break-if
    uint32_t param;
  };
  std::vector<Step> steps;
  int num_steps = 2 + static_cast<int>(rng.Below(5));
  for (int i = 0; i < num_steps; ++i) {
    steps.push_back(Step{rng.Below(6), rng.Below(97) + 1});
  }

  std::string body;
  for (const Step& step : steps) {
    switch (step.kind) {
      case 0:
        body += "    x += y;\n";
        break;
      case 1:
        body += "    y = y ^ x;\n";
        break;
      case 2:
        body += "    if (x > y) {\n      x -= y;\n    } else {\n"
                "      y += 3;\n    }\n";
        break;
      case 3:
        body += ks::StrPrintf(
            "    while (x > %u && x > 0) {\n      x = x >> 1;\n    }\n",
            step.param);
        break;
      case 4:
        body += ks::StrPrintf(
            "    if ((x & %u) == 1) {\n      continue;\n    }\n",
            step.param);
        break;
      default:
        body += ks::StrPrintf(
            "    if (y > %u) {\n      break;\n    }\n", step.param * 1000);
        break;
    }
  }
  std::string source = ks::StrPrintf(
      "void main(int unused) {\n"
      "  int x = 7;\n"
      "  int y = 3;\n"
      "  int i;\n"
      "  for (i = 0; i < %d; i++) {\n%s  }\n"
      "  record(1, x ^ y);\n"
      "}\n",
      n, body.c_str());

  // Host oracle (same semantics, 32-bit wraparound).
  uint32_t x = 7;
  uint32_t y = 3;
  for (int i = 0; i < n; ++i) {
    bool continued = false;
    for (const Step& step : steps) {
      if (continued) {
        break;
      }
      switch (step.kind) {
        case 0:
          x += y;
          break;
        case 1:
          y ^= x;
          break;
        case 2:
          if (static_cast<int32_t>(x) > static_cast<int32_t>(y)) {
            x -= y;
          } else {
            y += 3;
          }
          break;
        case 3:
          while (static_cast<int32_t>(x) >
                     static_cast<int32_t>(step.param) &&
                 static_cast<int32_t>(x) > 0) {
            x >>= 1;
          }
          break;
        case 4:
          if ((x & step.param) == 1) {
            continued = true;
          }
          break;
        default:
          if (static_cast<int32_t>(y) >
              static_cast<int32_t>(step.param * 1000)) {
            i = n;  // break out of the for loop
            continued = true;
          }
          break;
      }
    }
  }
  uint32_t expected = x ^ y;

  ks::Result<uint32_t> vm = RunKernel(source, 0, GetParam() % 2 == 1);
  ASSERT_TRUE(vm.ok()) << vm.status().ToString() << "\n" << source;
  EXPECT_EQ(*vm, expected) << source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControlFlowOracleTest,
                         ::testing::Range(0, 40));

// ISA round trip over random valid instructions.
TEST(IsaRoundTripProperty, RandomInstructionsSurviveEncodeDecode) {
  Rng rng(424242);
  const kvx::Op ops[] = {
      kvx::Op::kHalt,   kvx::Op::kNop,    kvx::Op::kNopW,
      kvx::Op::kMovRI,  kvx::Op::kMovRR,  kvx::Op::kLoadI,
      kvx::Op::kStoreI, kvx::Op::kLoadBI, kvx::Op::kStoreBI,
      kvx::Op::kAddRR,  kvx::Op::kSubRR,  kvx::Op::kMulRR,
      kvx::Op::kAndRR,  kvx::Op::kOrRR,   kvx::Op::kXorRR,
      kvx::Op::kCmpRR,  kvx::Op::kDivRR,  kvx::Op::kAddRI,
      kvx::Op::kSubRI,  kvx::Op::kCmpRI,  kvx::Op::kAndRI,
      kvx::Op::kModRR,  kvx::Op::kShlRR,  kvx::Op::kShrRR,
      kvx::Op::kPush,   kvx::Op::kPop,    kvx::Op::kCall,
      kvx::Op::kCallR,  kvx::Op::kRet,    kvx::Op::kJmp8,
      kvx::Op::kJmp32,  kvx::Op::kJz8,    kvx::Op::kJz32,
      kvx::Op::kJnz8,   kvx::Op::kJnz32,  kvx::Op::kJlt8,
      kvx::Op::kJlt32,  kvx::Op::kJge8,   kvx::Op::kJge32,
      kvx::Op::kJgt8,   kvx::Op::kJgt32,  kvx::Op::kJle8,
      kvx::Op::kJle32,  kvx::Op::kSys,
  };
  for (int trial = 0; trial < 3000; ++trial) {
    kvx::Insn in;
    in.op = ops[rng.Below(sizeof(ops) / sizeof(ops[0]))];
    const kvx::OpInfo& info = kvx::GetOpInfo(in.op);
    in.reg1 = static_cast<uint8_t>(rng.Below(kvx::kNumRegs));
    in.reg2 = static_cast<uint8_t>(rng.Below(kvx::kNumRegs));
    in.imm = info.has_imm8 ? rng.Below(256) : rng.Next();
    if (info.has_rel8) {
      in.rel = static_cast<int8_t>(rng.Next() & 0xff);
    } else if (info.has_rel32) {
      in.rel = static_cast<int32_t>(rng.Next() ^ (rng.Next() << 16));
    }
    std::vector<uint8_t> bytes = kvx::Encode(in);
    ks::Result<kvx::Insn> out = kvx::Decode(bytes);
    ASSERT_TRUE(out.ok()) << kvx::FormatInsn(in);
    EXPECT_EQ(out->op, in.op);
    EXPECT_EQ(out->len, bytes.size());
    if (info.has_reg1) {
      EXPECT_EQ(out->reg1, in.reg1);
    }
    if (info.has_reg2) {
      EXPECT_EQ(out->reg2, in.reg2);
    }
    if (info.has_imm32 || info.has_imm8) {
      EXPECT_EQ(out->imm, in.imm);
    }
    if (info.has_rel8 || info.has_rel32) {
      EXPECT_EQ(out->rel, in.rel);
    }
    // Re-encoding the decode is byte-identical (canonical encoding).
    EXPECT_EQ(kvx::Encode(*out), bytes);
  }
}

}  // namespace
