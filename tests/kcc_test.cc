// Tests for kcc: lexer, parser, preprocessor, and the code generator's
// Ksplice-relevant behaviours (inlining, caller-side conversions, static
// mangling, determinism, sections).

#include <gtest/gtest.h>

#include "kcc/codegen.h"
#include "kcc/compile.h"
#include "kcc/lexer.h"
#include "kcc/parser.h"
#include "kcc/preprocess.h"
#include "kdiff/diff.h"

namespace kcc {
namespace {

using kdiff::SourceTree;

// ------------------------------------------------------------------ Lexer

TEST(LexerTest, TokenKinds) {
  ks::Result<std::vector<Token>> tokens =
      Lex("int x = 0x1f; // comment\nchar c = 'a';", "t.kc");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  ASSERT_GE(tokens->size(), 11u);
  EXPECT_EQ((*tokens)[0].kind, TokKind::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "int");
  EXPECT_EQ((*tokens)[1].kind, TokKind::kIdent);
  EXPECT_EQ((*tokens)[3].kind, TokKind::kIntLit);
  EXPECT_EQ((*tokens)[3].int_value, 0x1f);
  // 'a'
  bool found_char = false;
  for (const Token& tok : *tokens) {
    if (tok.kind == TokKind::kCharLit) {
      EXPECT_EQ(tok.int_value, 'a');
      found_char = true;
    }
  }
  EXPECT_TRUE(found_char);
}

TEST(LexerTest, StringEscapes) {
  ks::Result<std::vector<Token>> tokens = Lex(R"("a\n\t\"b")", "t.kc");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].str_value, "a\n\t\"b");
}

TEST(LexerTest, BlockCommentsTrackLines) {
  ks::Result<std::vector<Token>> tokens =
      Lex("/* line1\nline2 */ @", "t.kc");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("t.kc:2"), std::string::npos);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("int x = `;", "t.kc").ok());
  EXPECT_FALSE(Lex("\"unterminated", "t.kc").ok());
  EXPECT_FALSE(Lex("'ab'", "t.kc").ok());
  EXPECT_FALSE(Lex("/* never closed", "t.kc").ok());
  EXPECT_FALSE(Lex("123abc", "t.kc").ok());
}

// ----------------------------------------------------------------- Parser

TEST(ParserTest, FunctionAndGlobal) {
  ks::Result<Unit> unit = ParseSource(R"(
int counter = 5;
static char tag = 'x';
extern int other_unit_var;

int bump(int by) {
  counter = counter + by;
  return counter;
}
)",
                                      "u.kc");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  ASSERT_EQ(unit->globals.size(), 3u);
  EXPECT_EQ(unit->globals[0].name, "counter");
  EXPECT_TRUE(unit->globals[0].has_init);
  EXPECT_TRUE(unit->globals[1].is_static);
  EXPECT_TRUE(unit->globals[2].is_extern);
  ASSERT_EQ(unit->functions.size(), 1u);
  EXPECT_EQ(unit->functions[0].name, "bump");
  EXPECT_TRUE(unit->functions[0].is_definition);
  ASSERT_EQ(unit->functions[0].params.size(), 1u);
  EXPECT_GT(unit->functions[0].body_size, 0);
}

TEST(ParserTest, StructsAndPointers) {
  ks::Result<Unit> unit = ParseSource(R"(
struct node {
  int value;
  char tag;
  struct node *next;
};
struct node *head;
int sum(struct node *n) {
  int total = 0;
  while (n != 0) {
    total += n->value;
    n = n->next;
  }
  return total;
}
)",
                                      "u.kc");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  ASSERT_EQ(unit->structs.size(), 1u);
  EXPECT_EQ(unit->structs[0].fields.size(), 3u);
  EXPECT_TRUE(unit->globals[0].type->IsPointer());
}

TEST(ParserTest, ArraysAndInitializers) {
  ks::Result<Unit> unit = ParseSource(R"(
int table[4] = {1, 2+3, 0x10, -1};
char msg[] = "hello";
int handlers[2] = {handler_a, handler_b};
)",
                                      "u.kc");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  EXPECT_EQ(unit->globals[0].init.size(), 4u);
  EXPECT_EQ(unit->globals[0].init[1].int_value, 5);  // folded
  EXPECT_EQ(unit->globals[1].type->array_len, 6);    // "hello" + NUL
  EXPECT_EQ(unit->globals[2].init[0].kind, InitElem::Kind::kSym);
  EXPECT_EQ(unit->globals[2].init[0].symbol, "handler_a");
}

TEST(ParserTest, KspliceHooks) {
  ks::Result<Unit> unit = ParseSource(R"(
void myupdate(void) { }
ksplice_apply(myupdate);
ksplice_pre_apply(myupdate);
)",
                                      "u.kc");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  ASSERT_EQ(unit->hooks.size(), 2u);
  EXPECT_EQ(unit->hooks[0].kind, "apply");
  EXPECT_EQ(unit->hooks[1].kind, "pre_apply");
  EXPECT_EQ(unit->hooks[0].func, "myupdate");
}

TEST(ParserTest, ControlFlowAndFor) {
  ks::Result<Unit> unit = ParseSource(R"(
int f(int n) {
  int total = 0;
  int i;
  for (i = 0; i < n; i++) {
    if (i % 2 == 0) {
      continue;
    }
    total += i;
    if (total > 100) {
      break;
    }
  }
  return total;
}
)",
                                      "u.kc");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
}

TEST(ParserTest, ConstantFoldingShrinksAst) {
  ks::Result<Unit> small = ParseSource("int f() { return 2*3+4; }", "a.kc");
  ks::Result<Unit> lit = ParseSource("int f() { return 10; }", "b.kc");
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(lit.ok());
  EXPECT_EQ(small->functions[0].body_size, lit->functions[0].body_size);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSource("int f( {", "t.kc").ok());
  EXPECT_FALSE(ParseSource("int;", "t.kc").ok());
  EXPECT_FALSE(ParseSource("struct s { };", "t.kc").ok());
  EXPECT_FALSE(ParseSource("inline int x;", "t.kc").ok());
  EXPECT_FALSE(ParseSource("extern int x = 5;", "t.kc").ok());
  EXPECT_FALSE(ParseSource("int f() { return 1 }", "t.kc").ok());
  EXPECT_FALSE(ParseSource("int a[] ;", "t.kc").ok());
}

// ------------------------------------------------------------ Preprocess

TEST(PreprocessTest, IncludeOnceAndClosure) {
  SourceTree tree;
  tree.Write("defs.h", "int shared_decl(int x);\n");
  tree.Write("extra.h", "#include \"defs.h\"\nextern int g;\n");
  tree.Write("unit.kc",
             "#include \"defs.h\"\n#include \"extra.h\"\nint user() { "
             "return shared_decl(1); }\n");
  ks::Result<PreprocessedSource> src = Preprocess(tree, "unit.kc");
  ASSERT_TRUE(src.ok()) << src.status().ToString();
  // defs.h included once despite two paths to it.
  size_t first = src->text.find("shared_decl(int x)");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(src->text.find("shared_decl(int x)", first + 1),
            std::string::npos);
  EXPECT_EQ(src->includes.size(), 2u);

  ks::Result<std::vector<std::string>> closure =
      IncludeClosure(tree, "unit.kc");
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure->size(), 3u);  // unit + 2 headers
}

TEST(PreprocessTest, MissingIncludeFails) {
  SourceTree tree;
  tree.Write("unit.kc", "#include \"ghost.h\"\n");
  EXPECT_FALSE(Preprocess(tree, "unit.kc").ok());
}

TEST(PreprocessTest, UnknownDirectiveFails) {
  SourceTree tree;
  tree.Write("unit.kc", "#define X 1\n");
  EXPECT_FALSE(Preprocess(tree, "unit.kc").ok());
}

// --------------------------------------------------------------- Codegen

std::string MustAsm(const std::string& source, int inline_threshold = 24) {
  SourceTree tree;
  tree.Write("u.kc", source);
  CompileOptions options;
  options.inline_threshold = inline_threshold;
  ks::Result<std::string> text = CompileToAsm(tree, "u.kc", options);
  EXPECT_TRUE(text.ok()) << text.status().ToString();
  return text.ok() ? *text : "";
}

kelf::ObjectFile MustCompile(const std::string& source,
                             bool function_sections = true) {
  SourceTree tree;
  tree.Write("u.kc", source);
  CompileOptions options;
  options.function_sections = function_sections;
  options.data_sections = function_sections;
  ks::Result<kelf::ObjectFile> obj = CompileUnit(tree, "u.kc", options);
  EXPECT_TRUE(obj.ok()) << obj.status().ToString();
  return obj.ok() ? std::move(obj).value() : kelf::ObjectFile{};
}

TEST(CodegenTest, SimpleFunctionCompiles) {
  kelf::ObjectFile obj = MustCompile(R"(
int answer() {
  return 42;
}
)");
  EXPECT_NE(obj.SectionByName(".text.answer"), nullptr);
  EXPECT_TRUE(obj.FindUniqueSymbol("answer").ok());
}

TEST(CodegenTest, StaticFunctionIsLocalSymbol) {
  kelf::ObjectFile obj = MustCompile(R"(
static int helper() { return 1; }
int user() { return helper() + helper() + helper() + helper() +
             helper() + helper() + helper() + helper(); }
)");
  // helper is tiny and inlined, but its section is still emitted.
  ks::Result<int> sym = obj.FindUniqueSymbol("helper");
  ASSERT_TRUE(sym.ok());
  EXPECT_EQ(obj.symbols()[static_cast<size_t>(*sym)].binding,
            kelf::SymbolBinding::kLocal);
}

TEST(CodegenTest, InliningBelowThresholdOnly) {
  std::string src = R"(
int small(int x) { return x + 1; }
int big(int x) {
  int a = x + 1; int b = a + 2; int c = b + 3; int d = c + 4;
  int e = d + 5; int f = e + 6; int g = f + 7; int h = g + 8;
  return a + b + c + d + e + f + g + h;
}
int caller(int v) { return small(v) + big(v); }
)";
  SourceTree tree;
  tree.Write("u.kc", src);
  ks::Result<Unit> unit = ParseUnit(tree, "u.kc");
  ASSERT_TRUE(unit.ok());
  CodegenOptions options;
  options.inline_threshold = 24;
  ks::Result<std::vector<std::string>> inlined =
      InlinedFunctions(*unit, options);
  ASSERT_TRUE(inlined.ok()) << inlined.status().ToString();
  EXPECT_EQ(*inlined, std::vector<std::string>{"small"});

  // The generated assembly has no call to small, one call to big.
  std::string text = MustAsm(src);
  EXPECT_EQ(text.find("call small"), std::string::npos);
  EXPECT_NE(text.find("call big"), std::string::npos);
}

TEST(CodegenTest, InlineKeywordIsOnlyAHint) {
  // Paper §4.2: compilers inline functions without the keyword; a big
  // function is not inlined even when marked `inline`.
  std::string src = R"(
inline int big(int x) {
  int a = x + 1; int b = a + 2; int c = b + 3; int d = c + 4;
  int e = d + 5; int f = e + 6; int g = f + 7; int h = g + 8;
  return a + b + c + d + e + f + g + h;
}
int no_keyword(int x) { return x * 2; }
int caller(int v) { return big(v) + no_keyword(v); }
)";
  std::string text = MustAsm(src);
  EXPECT_NE(text.find("call big"), std::string::npos);
  EXPECT_EQ(text.find("call no_keyword"), std::string::npos);
}

TEST(CodegenTest, RecursionIsNotInlined) {
  std::string text = MustAsm(R"(
int fact(int n) {
  if (n < 2) { return 1; }
  return n * fact(n - 1);
}
)");
  EXPECT_NE(text.find("call fact"), std::string::npos);
}

TEST(CodegenTest, StaticLocalBlocksInlining) {
  std::string text = MustAsm(R"(
int counted(int x) {
  static int count = 0;
  count++;
  return x + count;
}
int caller(int v) { return counted(v); }
)");
  EXPECT_NE(text.find("call counted"), std::string::npos);
  // Mangled static local storage exists.
  EXPECT_NE(text.find("count.1:"), std::string::npos);
}

TEST(CodegenTest, StaticLocalsWithSameNameGetDistinctSymbols) {
  std::string text = MustAsm(R"(
int f() {
  static int state = 1;
  state += 1;
  return state;
}
int g() {
  static int state = 2;
  state += 2;
  return state;
}
)",
                             0);
  EXPECT_NE(text.find("state.1:"), std::string::npos);
  EXPECT_NE(text.find("state.2:"), std::string::npos);
}

TEST(CodegenTest, CallerConvertsArgumentsPerPrototype) {
  // Paper §3.1: the conversion lives in the *caller's* object code.
  std::string narrow = MustAsm(R"(
int consume(char c);
int caller(int v) { return consume(v); }
)");
  EXPECT_NE(narrow.find("and r0, 255"), std::string::npos);

  std::string wide = MustAsm(R"(
int consume(int c);
int caller(int v) { return consume(v); }
)");
  EXPECT_EQ(wide.find("and r0, 255"), std::string::npos);
}

TEST(CodegenTest, HeaderPrototypeChangeChangesCallersObjectCode) {
  // The full §3.1 scenario: the caller's own source is untouched; only the
  // header changed; the caller's object bytes differ.
  SourceTree pre;
  pre.Write("proto.h", "int consume(char c);\n");
  pre.Write("caller.kc",
            "#include \"proto.h\"\nint use(int v) { return consume(v); }\n");
  SourceTree post = pre;
  post.Write("proto.h", "int consume(int c);\n");

  CompileOptions options;
  options.function_sections = true;
  ks::Result<kelf::ObjectFile> pre_obj =
      CompileUnit(pre, "caller.kc", options);
  ks::Result<kelf::ObjectFile> post_obj =
      CompileUnit(post, "caller.kc", options);
  ASSERT_TRUE(pre_obj.ok());
  ASSERT_TRUE(post_obj.ok());
  EXPECT_NE(pre_obj->SectionByName(".text.use")->bytes,
            post_obj->SectionByName(".text.use")->bytes);
}

TEST(CodegenTest, DeterministicOutput) {
  std::string src = R"(
int shared = 3;
static char tag = 'q';
int f(int x) { return x + shared; }
int g(int y) { return f(y) * 2; }
)";
  kelf::ObjectFile a = MustCompile(src);
  kelf::ObjectFile b = MustCompile(src);
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

TEST(CodegenTest, StringLiteralsAreContentHashed) {
  std::string text = MustAsm(R"(
void f() { printk("hello\n"); }
void g() { printk("hello\n"); printk("other"); }
)");
  // Same content -> same symbol, emitted once.
  size_t first = text.find("str.h");
  ASSERT_NE(first, std::string::npos);
  std::string sym = text.substr(first, std::string("str.h").size() + 8);
  size_t defs = 0;
  size_t pos = 0;
  while ((pos = text.find(sym + ":", pos)) != std::string::npos) {
    ++defs;
    pos += 1;
  }
  EXPECT_EQ(defs, 1u);
}

TEST(CodegenTest, GlobalsEmitData) {
  kelf::ObjectFile obj = MustCompile(R"(
int scalar = 7;
int zeroed;
char message[] = "hi";
int table[3] = {1, 2, 3};
)");
  EXPECT_NE(obj.SectionByName(".data.scalar"), nullptr);
  EXPECT_NE(obj.SectionByName(".bss.zeroed"), nullptr);
  const kelf::Section* msg = obj.SectionByName(".data.message");
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->bytes.size(), 3u);
  const kelf::Section* table = obj.SectionByName(".data.table");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->bytes.size(), 12u);
}

TEST(CodegenTest, MonolithicVsFunctionSections) {
  std::string src = R"(
int a_fn() { return 1; }
int b_fn() { return a_fn() + a_fn() + a_fn() + a_fn() + a_fn() +
             a_fn() + a_fn() + a_fn() + a_fn() + a_fn(); }
)";
  kelf::ObjectFile split = MustCompile(src, true);
  kelf::ObjectFile mono = MustCompile(src, false);
  EXPECT_NE(split.SectionByName(".text.a_fn"), nullptr);
  EXPECT_NE(split.SectionByName(".text.b_fn"), nullptr);
  EXPECT_EQ(mono.SectionByName(".text.a_fn"), nullptr);
  ASSERT_NE(mono.SectionByName(".text"), nullptr);
  // Monolithic: intra-file calls carry no relocations (a_fn is too big to
  // inline? it's tiny, so it IS inlined — use the data reference instead).
  // Check instead that the split build has one section per function.
  int text_sections = 0;
  for (const kelf::Section& sec : split.sections()) {
    if (sec.kind == kelf::SectionKind::kText) {
      ++text_sections;
    }
  }
  EXPECT_EQ(text_sections, 2);
}

TEST(CodegenTest, IntraFileCallRelocOnlyInSectionMode) {
  std::string src = R"(
int big_callee(int x) {
  int a = x + 1; int b = a + 2; int c = b + 3; int d = c + 4;
  int e = d + 5; int f = e + 6; int g = f + 7; int h = g + 8;
  return a + b + c + d + e + f + g + h;
}
int caller(int v) { return big_callee(v); }
)";
  kelf::ObjectFile split = MustCompile(src, true);
  kelf::ObjectFile mono = MustCompile(src, false);

  const kelf::Section* split_caller = split.SectionByName(".text.caller");
  ASSERT_NE(split_caller, nullptr);
  bool split_has_pcrel = false;
  for (const kelf::Relocation& rel : split_caller->relocs) {
    if (rel.type == kelf::RelocType::kPcrel32) {
      split_has_pcrel = true;
    }
  }
  EXPECT_TRUE(split_has_pcrel);

  const kelf::Section* mono_text = mono.SectionByName(".text");
  ASSERT_NE(mono_text, nullptr);
  for (const kelf::Relocation& rel : mono_text->relocs) {
    EXPECT_NE(rel.type, kelf::RelocType::kPcrel32)
        << "monolithic intra-file call should be resolved at assembly";
  }
}

TEST(CodegenTest, StructMemberAccess) {
  std::string text = MustAsm(R"(
struct pair { int a; char tag; int b; };
struct pair p;
int get_b(struct pair *q) { return q->b; }
int get_a() { return p.a; }
)");
  // b is at offset 8 (a:0..4, tag:4, pad, b:8).
  EXPECT_NE(text.find("add r0, 8"), std::string::npos);
}

TEST(CodegenTest, SizeofStruct) {
  std::string text = MustAsm(R"(
struct pair { int a; char tag; int b; };
int size() { return sizeof(struct pair); }
)");
  EXPECT_NE(text.find("mov r0, 12"), std::string::npos);
}

TEST(CodegenTest, KspliceHookEmitsNoteSection) {
  kelf::ObjectFile obj = MustCompile(R"(
void myupdate() { }
ksplice_apply(myupdate);
)");
  const kelf::Section* note = obj.SectionByName(".ksplice.apply");
  ASSERT_NE(note, nullptr);
  ASSERT_EQ(note->relocs.size(), 1u);
  EXPECT_EQ(obj.symbols()[static_cast<size_t>(note->relocs[0].symbol)].name,
            "myupdate");
}

TEST(CodegenTest, BuiltinsLowerToSys) {
  std::string text = MustAsm(R"(
void f() {
  printk("x");
  sleep(10);
  record(1, 2);
  lock_kernel();
  unlock_kernel();
}
)");
  EXPECT_NE(text.find("sys 0"), std::string::npos);
  EXPECT_NE(text.find("sys 3"), std::string::npos);
  EXPECT_NE(text.find("sys 7"), std::string::npos);
  EXPECT_NE(text.find("sys 9"), std::string::npos);
  EXPECT_NE(text.find("sys 10"), std::string::npos);
}

TEST(CodegenTest, AssemblyUnitsPassThrough) {
  SourceTree tree;
  tree.Write("entry.kvs", R"(
.text
.global fast_entry
fast_entry:
    mov r0, 1
    ret
)");
  CompileOptions options;
  options.function_sections = true;
  ks::Result<kelf::ObjectFile> obj = CompileUnit(tree, "entry.kvs", options);
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  EXPECT_NE(obj->SectionByName(".text.fast_entry"), nullptr);
}

TEST(CodegenTest, BuildTreeCompilesAllUnits) {
  SourceTree tree;
  tree.Write("a.kc", "int a_var = 1;\nint get_a() { return a_var; }\n");
  tree.Write("b.kc", "extern int a_var;\nint get_b() { return a_var + 1; }\n");
  tree.Write("c.kvs", ".text\n.global casm\ncasm:\n    ret\n");
  tree.Write("shared.h", "int get_a();\n");
  CompileOptions options;
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      BuildTree(tree, options);
  ASSERT_TRUE(objects.ok()) << objects.status().ToString();
  EXPECT_EQ(objects->size(), 3u);  // .h is not a unit
}

TEST(CodegenTest, ErrorsCarryLocation) {
  SourceTree tree;
  tree.Write("u.kc", "int f() {\n  return ghost_var + 1;\n}\n");
  CompileOptions options;
  ks::Result<kelf::ObjectFile> obj = CompileUnit(tree, "u.kc", options);
  // Unknown identifiers are treated as function addresses (cross-unit
  // linkage), so this actually compiles; a true error needs a bad member.
  tree.Write("v.kc",
             "struct s { int a; };\nstruct s g;\nint f() {\n  return g.b;\n}\n");
  ks::Result<kelf::ObjectFile> bad = CompileUnit(tree, "v.kc", options);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("v.kc:4"), std::string::npos);
}

TEST(CodegenTest, CompileErrors) {
  CompileOptions options;
  SourceTree tree;
  tree.Write("u.kc", "int f() { break; }\n");
  EXPECT_FALSE(CompileUnit(tree, "u.kc", options).ok());
  tree.Write("u.kc", "int f(int a, int a2) { return b[1]; }\n");
  EXPECT_FALSE(CompileUnit(tree, "u.kc", options).ok());
  tree.Write("u.kc", "struct s { int a; };\nint f(struct s v) { return 0; }\n");
  EXPECT_FALSE(CompileUnit(tree, "u.kc", options).ok());
  tree.Write("u.kc", "int f() { return sizeof(void); }\n");
  EXPECT_FALSE(CompileUnit(tree, "u.kc", options).ok());
  tree.Write("u.kc", "int x = 1;\nint x = 2;\n");
  EXPECT_FALSE(CompileUnit(tree, "u.kc", options).ok());
  tree.Write("u.kc", "ksplice_apply(nonexistent);\n");
  EXPECT_FALSE(CompileUnit(tree, "u.kc", options).ok());
}

}  // namespace
}  // namespace kcc
