// Tests for kdiff: Myers diff properties, unified diff round trips, patch
// application with context verification.

#include <gtest/gtest.h>

#include "base/strings.h"
#include "kdiff/diff.h"

namespace kdiff {
namespace {

std::vector<std::string> Lines(std::initializer_list<const char*> lines) {
  std::vector<std::string> out;
  for (const char* line : lines) {
    out.emplace_back(line);
  }
  return out;
}

// Replays a diff script against `a` and returns the reconstruction of `b`.
std::vector<std::string> Replay(const std::vector<std::string>& a,
                                const std::vector<DiffOp>& ops) {
  std::vector<std::string> out;
  size_t ai = 0;
  for (const DiffOp& op : ops) {
    switch (op.kind) {
      case DiffOp::Kind::kKeep:
        EXPECT_LT(ai, a.size());
        EXPECT_EQ(op.line, a[ai]);
        out.push_back(a[ai++]);
        break;
      case DiffOp::Kind::kDelete:
        EXPECT_LT(ai, a.size());
        EXPECT_EQ(op.line, a[ai]);
        ++ai;
        break;
      case DiffOp::Kind::kInsert:
        out.push_back(op.line);
        break;
    }
  }
  EXPECT_EQ(ai, a.size());
  return out;
}

int EditCount(const std::vector<DiffOp>& ops) {
  int count = 0;
  for (const DiffOp& op : ops) {
    if (op.kind != DiffOp::Kind::kKeep) {
      ++count;
    }
  }
  return count;
}

TEST(DiffLinesTest, IdenticalSequences) {
  std::vector<std::string> a = Lines({"x", "y", "z"});
  std::vector<DiffOp> ops = DiffLines(a, a);
  EXPECT_EQ(EditCount(ops), 0);
  EXPECT_EQ(Replay(a, ops), a);
}

TEST(DiffLinesTest, EmptyToNonEmpty) {
  std::vector<std::string> a;
  std::vector<std::string> b = Lines({"1", "2"});
  std::vector<DiffOp> ops = DiffLines(a, b);
  EXPECT_EQ(EditCount(ops), 2);
  EXPECT_EQ(Replay(a, ops), b);
  ops = DiffLines(b, a);
  EXPECT_EQ(EditCount(ops), 2);
  EXPECT_EQ(Replay(b, ops), a);
}

TEST(DiffLinesTest, SingleLineChange) {
  std::vector<std::string> a = Lines({"int f() {", "  return 0;", "}"});
  std::vector<std::string> b = Lines({"int f() {", "  return 1;", "}"});
  std::vector<DiffOp> ops = DiffLines(a, b);
  EXPECT_EQ(EditCount(ops), 2);  // one delete + one insert
  EXPECT_EQ(Replay(a, ops), b);
}

TEST(DiffLinesTest, MinimalityOnKnownCase) {
  // Classic Myers example: ABCABBA -> CBABAC has edit distance 5.
  std::vector<std::string> a = Lines({"A", "B", "C", "A", "B", "B", "A"});
  std::vector<std::string> b = Lines({"C", "B", "A", "B", "A", "C"});
  std::vector<DiffOp> ops = DiffLines(a, b);
  EXPECT_EQ(EditCount(ops), 5);
  EXPECT_EQ(Replay(a, ops), b);
}

// Property sweep: pseudo-random sequences, replay always reconstructs b.
class DiffPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DiffPropertyTest, ReplayReconstructs) {
  uint32_t seed = static_cast<uint32_t>(GetParam()) * 2654435761u + 1;
  auto next = [&seed]() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 0x7fff;
  };
  std::vector<std::string> a;
  std::vector<std::string> b;
  int n = static_cast<int>(next() % 40);
  for (int i = 0; i < n; ++i) {
    a.push_back(std::to_string(next() % 8));
  }
  int m = static_cast<int>(next() % 40);
  for (int i = 0; i < m; ++i) {
    b.push_back(std::to_string(next() % 8));
  }
  std::vector<DiffOp> ops = DiffLines(a, b);
  EXPECT_EQ(Replay(a, ops), b);
  // Edit count is bounded by the trivial script.
  EXPECT_LE(EditCount(ops), n + m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffPropertyTest, ::testing::Range(0, 25));

// Unified diff ------------------------------------------------------------

SourceTree TreeWith(std::initializer_list<std::pair<const char*, const char*>>
                        files) {
  SourceTree tree;
  for (const auto& [path, contents] : files) {
    tree.Write(path, contents);
  }
  return tree;
}

TEST(UnifiedDiffTest, IdenticalTreesEmptyDiff) {
  SourceTree t = TreeWith({{"a.kc", "x\ny\n"}});
  EXPECT_EQ(MakeUnifiedDiff(t, t), "");
}

TEST(UnifiedDiffTest, RoundTripSimpleEdit) {
  SourceTree pre = TreeWith({{"fs/exec.kc", "a\nb\nc\nd\ne\nf\ng\n"}});
  SourceTree post = TreeWith({{"fs/exec.kc", "a\nb\nc\nD\ne\nf\ng\n"}});
  std::string diff = MakeUnifiedDiff(pre, post);
  EXPECT_NE(diff.find("--- a/fs/exec.kc"), std::string::npos);
  EXPECT_NE(diff.find("+++ b/fs/exec.kc"), std::string::npos);
  EXPECT_NE(diff.find("-d"), std::string::npos);
  EXPECT_NE(diff.find("+D"), std::string::npos);

  ks::Result<SourceTree> applied = ApplyUnifiedDiff(pre, diff);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, post);
}

TEST(UnifiedDiffTest, RoundTripFileCreationAndDeletion) {
  SourceTree pre = TreeWith({{"old.kc", "gone\n"}, {"keep.kc", "k\n"}});
  SourceTree post = TreeWith({{"new.kc", "fresh\nfile\n"}, {"keep.kc", "k\n"}});
  std::string diff = MakeUnifiedDiff(pre, post);
  EXPECT_NE(diff.find("--- /dev/null"), std::string::npos);
  EXPECT_NE(diff.find("+++ /dev/null"), std::string::npos);
  ks::Result<SourceTree> applied = ApplyUnifiedDiff(pre, diff);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, post);
}

TEST(UnifiedDiffTest, RoundTripMultipleHunksAndFiles) {
  std::string big_pre;
  std::string big_post;
  for (int i = 0; i < 60; ++i) {
    big_pre += ks::StrPrintf("line %d\n", i);
    if (i == 10) {
      big_post += "changed ten\n";
    } else if (i == 50) {
      big_post += "changed fifty\nplus extra\n";
    } else {
      big_post += ks::StrPrintf("line %d\n", i);
    }
  }
  SourceTree pre = TreeWith({{"m.kc", big_pre.c_str()},
                             {"n.kc", "one\ntwo\nthree\n"}});
  SourceTree post = TreeWith({{"m.kc", big_post.c_str()},
                              {"n.kc", "one\ntwo!\nthree\n"}});
  std::string diff = MakeUnifiedDiff(pre, post);
  ks::Result<Patch> patch = ParseUnifiedDiff(diff);
  ASSERT_TRUE(patch.ok()) << patch.status().ToString();
  EXPECT_EQ(patch->files.size(), 2u);
  EXPECT_EQ(patch->files[0].hunks.size(), 2u);  // two distant hunks in m.kc
  ks::Result<SourceTree> applied = ApplyPatch(pre, *patch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, post);
}

TEST(UnifiedDiffTest, NearbyChangesMergeIntoOneHunk) {
  SourceTree pre = TreeWith({{"f.kc", "a\nb\nc\nd\ne\nf\ng\nh\n"}});
  SourceTree post = TreeWith({{"f.kc", "a\nB\nc\nd\ne\nF\ng\nh\n"}});
  std::string diff = MakeUnifiedDiff(pre, post);
  ks::Result<Patch> patch = ParseUnifiedDiff(diff);
  ASSERT_TRUE(patch.ok());
  EXPECT_EQ(patch->files[0].hunks.size(), 1u);
  ks::Result<SourceTree> applied = ApplyPatch(pre, *patch);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, post);
}

TEST(UnifiedDiffTest, ChangedLinesCount) {
  SourceTree pre = TreeWith({{"f.kc", "a\nb\nc\n"}});
  SourceTree post = TreeWith({{"f.kc", "a\nB\nB2\nc\n"}});
  ks::Result<Patch> patch = ParseUnifiedDiff(MakeUnifiedDiff(pre, post));
  ASSERT_TRUE(patch.ok());
  // -b +B +B2 = 3 changed lines.
  EXPECT_EQ(patch->ChangedLines(), 3);
  EXPECT_EQ(patch->TouchedPaths(), std::vector<std::string>{"f.kc"});
}

TEST(UnifiedDiffTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseUnifiedDiff("not a diff at all\n").ok());
  EXPECT_FALSE(ParseUnifiedDiff("--- a/x\nmissing plus\n").ok());
  EXPECT_FALSE(
      ParseUnifiedDiff("--- a/x\n+++ b/x\n@@ bogus @@\n").ok());
  // Truncated hunk body.
  EXPECT_FALSE(
      ParseUnifiedDiff("--- a/x\n+++ b/x\n@@ -1,3 +1,3 @@\n a\n").ok());
}

TEST(UnifiedDiffTest, ParseAcceptsGitStyleProse) {
  std::string diff =
      "commit deadbeef\nAuthor: someone\n\n"
      "    fix the bug\n\n"
      "diff --git a/f.kc b/f.kc\nindex 111..222 100644\n"
      "--- a/f.kc\n+++ b/f.kc\n@@ -1,3 +1,3 @@\n a\n-b\n+B\n c\n";
  ks::Result<Patch> patch = ParseUnifiedDiff(diff);
  ASSERT_TRUE(patch.ok()) << patch.status().ToString();
  SourceTree pre = TreeWith({{"f.kc", "a\nb\nc\n"}});
  ks::Result<SourceTree> applied = ApplyPatch(pre, *patch);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied->Read("f.kc"), "a\nB\nc\n");
}

TEST(UnifiedDiffTest, ApplyRejectsContextMismatch) {
  std::string diff =
      "--- a/f.kc\n+++ b/f.kc\n@@ -1,3 +1,3 @@\n a\n-b\n+B\n c\n";
  SourceTree pre = TreeWith({{"f.kc", "completely\ndifferent\nfile\n"}});
  ks::Result<SourceTree> applied = ApplyUnifiedDiff(pre, diff);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), ks::ErrorCode::kAborted);
}

TEST(UnifiedDiffTest, ApplyFindsDriftedHunkByUniqueContext) {
  // The hunk says line 1 but the real match is further down; a unique
  // context match is accepted (like patch(1) fuzzing by search).
  std::string diff =
      "--- a/f.kc\n+++ b/f.kc\n@@ -1,3 +1,3 @@\n a\n-b\n+B\n c\n";
  SourceTree pre =
      TreeWith({{"f.kc", "extra1\nextra2\nextra3\na\nb\nc\ntail\n"}});
  ks::Result<SourceTree> applied = ApplyUnifiedDiff(pre, diff);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied->Read("f.kc"), "extra1\nextra2\nextra3\na\nB\nc\ntail\n");
}

TEST(UnifiedDiffTest, ApplyRejectsAmbiguousDriftedHunk) {
  std::string diff =
      "--- a/f.kc\n+++ b/f.kc\n@@ -9,3 +9,3 @@\n a\n-b\n+B\n c\n";
  // Two identical regions: ambiguous.
  SourceTree pre = TreeWith({{"f.kc", "a\nb\nc\nmid\na\nb\nc\n"}});
  ks::Result<SourceTree> applied = ApplyUnifiedDiff(pre, diff);
  ASSERT_FALSE(applied.ok());
}

TEST(UnifiedDiffTest, ApplyMissingFileFails) {
  std::string diff =
      "--- a/ghost.kc\n+++ b/ghost.kc\n@@ -1,1 +1,1 @@\n-a\n+b\n";
  SourceTree pre;
  EXPECT_FALSE(ApplyUnifiedDiff(pre, diff).ok());
}

TEST(UnifiedDiffTest, CreateExistingFileFails) {
  std::string diff = "--- /dev/null\n+++ b/f.kc\n@@ -0,0 +1,1 @@\n+x\n";
  SourceTree pre = TreeWith({{"f.kc", "already\n"}});
  EXPECT_EQ(ApplyUnifiedDiff(pre, diff).status().code(),
            ks::ErrorCode::kAlreadyExists);
}

TEST(UnifiedDiffTest, ContextWidthVariants) {
  SourceTree pre = TreeWith({{"f.kc", "a\nb\nc\nd\ne\nf\ng\nh\ni\n"}});
  SourceTree post = TreeWith({{"f.kc", "a\nb\nc\nd\nE\nf\ng\nh\ni\n"}});
  for (int context : {0, 1, 3, 10}) {
    std::string diff = MakeUnifiedDiff(pre, post, context);
    ks::Result<SourceTree> applied = ApplyUnifiedDiff(pre, diff);
    ASSERT_TRUE(applied.ok()) << "context=" << context << "\n" << diff;
    EXPECT_EQ(*applied, post) << "context=" << context;
  }
}

TEST(UnifiedDiffTest, AdjacentEditsAtFileBoundaries) {
  // Changes at the very first and very last line.
  SourceTree pre = TreeWith({{"f.kc", "first\nmid1\nmid2\nlast\n"}});
  SourceTree post = TreeWith({{"f.kc", "FIRST\nmid1\nmid2\nLAST\n"}});
  std::string diff = MakeUnifiedDiff(pre, post);
  ks::Result<SourceTree> applied = ApplyUnifiedDiff(pre, diff);
  ASSERT_TRUE(applied.ok()) << diff;
  EXPECT_EQ(*applied, post);
}

TEST(UnifiedDiffTest, EmptyFileTransitions) {
  // Empty -> non-empty and back, as in-place edits (not file add/remove).
  SourceTree pre = TreeWith({{"f.kc", ""}});
  SourceTree post = TreeWith({{"f.kc", "now has content\n"}});
  std::string diff = MakeUnifiedDiff(pre, post);
  ks::Result<SourceTree> applied = ApplyUnifiedDiff(pre, diff);
  ASSERT_TRUE(applied.ok()) << diff;
  EXPECT_EQ(*applied, post);

  std::string back = MakeUnifiedDiff(post, pre);
  ks::Result<SourceTree> reverted = ApplyUnifiedDiff(post, back);
  ASSERT_TRUE(reverted.ok()) << back;
  EXPECT_EQ(*reverted, pre);
}

// Whole-tree property: random edits over a multi-file tree round-trip
// through MakeUnifiedDiff + ApplyPatch.
class TreeRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(TreeRoundTripTest, DiffThenApplyIsIdentity) {
  uint32_t seed = static_cast<uint32_t>(GetParam()) * 40503u + 7;
  auto next = [&seed]() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 0x7fff;
  };
  SourceTree pre;
  for (int f = 0; f < 4; ++f) {
    std::string contents;
    int lines = 5 + static_cast<int>(next() % 30);
    for (int i = 0; i < lines; ++i) {
      contents += ks::StrPrintf("file%d line%d v%u\n", f, i, next() % 4);
    }
    pre.Write(ks::StrPrintf("dir/f%d.kc", f), contents);
  }
  // Random edits: change, insert, delete lines; maybe add/remove a file.
  SourceTree post = pre;
  for (const std::string& path : pre.Paths()) {
    if (next() % 4 == 0) {
      continue;  // leave unchanged
    }
    std::vector<std::string> lines = ks::SplitLines(*post.Read(path));
    int edits = 1 + static_cast<int>(next() % 4);
    for (int e = 0; e < edits && !lines.empty(); ++e) {
      size_t at = next() % lines.size();
      switch (next() % 3) {
        case 0:
          lines[at] = ks::StrPrintf("edited %u", next());
          break;
        case 1:
          lines.insert(lines.begin() + static_cast<long>(at),
                       ks::StrPrintf("inserted %u", next()));
          break;
        case 2:
          lines.erase(lines.begin() + static_cast<long>(at));
          break;
      }
    }
    std::string joined;
    for (const std::string& line : lines) {
      joined += line + "\n";
    }
    post.Write(path, joined);
  }
  if (next() % 2 == 0) {
    post.Write("dir/brand_new.kc", "created\nby patch\n");
  }

  std::string diff = MakeUnifiedDiff(pre, post);
  if (diff.empty()) {
    EXPECT_EQ(pre, post);
    return;
  }
  ks::Result<SourceTree> applied = ApplyUnifiedDiff(pre, diff);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString() << "\n" << diff;
  EXPECT_EQ(*applied, post) << diff;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeRoundTripTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace kdiff
