// Unit tests for kelf: object model, serialization, validation, linking.

#include <gtest/gtest.h>

#include "base/endian.h"
#include "kelf/link.h"
#include "kelf/objfile.h"

namespace kelf {
namespace {

Section TextSection(std::string name, std::vector<uint8_t> bytes) {
  Section sec;
  sec.name = std::move(name);
  sec.kind = SectionKind::kText;
  sec.align = 8;
  sec.bytes = std::move(bytes);
  return sec;
}

Section DataSection(std::string name, std::vector<uint8_t> bytes) {
  Section sec;
  sec.name = std::move(name);
  sec.kind = SectionKind::kData;
  sec.align = 4;
  sec.bytes = std::move(bytes);
  return sec;
}

// Builds an object with one function section that stores to a global and
// one data section, the shape kcc emits under -ffunction-sections.
ObjectFile MakeSimpleObject() {
  ObjectFile obj("unit.kc");
  int text = obj.AddSection(TextSection(".text.fn", {0x10, 0x00, 0, 0, 0, 0}));
  int data = obj.AddSection(DataSection(".data.counter", {1, 0, 0, 0}));

  int fn = obj.AddSymbol(Symbol{.name = "fn",
                                .binding = SymbolBinding::kGlobal,
                                .kind = SymbolKind::kFunction,
                                .section = text,
                                .value = 0,
                                .size = 6});
  (void)fn;
  int counter = obj.AddSymbol(Symbol{.name = "counter",
                                     .binding = SymbolBinding::kLocal,
                                     .kind = SymbolKind::kObject,
                                     .section = data,
                                     .value = 0,
                                     .size = 4});
  obj.sections()[static_cast<size_t>(text)].relocs.push_back(Relocation{
      .offset = 2, .type = RelocType::kAbs32, .symbol = counter, .addend = 0});
  return obj;
}

TEST(ObjectFileTest, FindSection) {
  ObjectFile obj = MakeSimpleObject();
  EXPECT_TRUE(obj.FindSection(".text.fn").has_value());
  EXPECT_FALSE(obj.FindSection(".text.other").has_value());
  EXPECT_NE(obj.SectionByName(".data.counter"), nullptr);
  EXPECT_EQ(obj.SectionByName("nope"), nullptr);
}

TEST(ObjectFileTest, FindUniqueSymbol) {
  ObjectFile obj = MakeSimpleObject();
  ks::Result<int> idx = obj.FindUniqueSymbol("fn");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(obj.symbols()[static_cast<size_t>(*idx)].name, "fn");
  EXPECT_EQ(obj.FindUniqueSymbol("ghost").status().code(),
            ks::ErrorCode::kNotFound);
}

TEST(ObjectFileTest, AmbiguousLocalSymbolsAreAllowedButNotUnique) {
  // Two local symbols may share a name (the paper's "debug"/"notesize"
  // situation); FindUniqueSymbol must refuse to pick one.
  ObjectFile obj("two.kc");
  int s0 = obj.AddSection(DataSection(".data.a", {0, 0, 0, 0}));
  int s1 = obj.AddSection(DataSection(".data.b", {0, 0, 0, 0}));
  obj.AddSymbol(Symbol{.name = "debug",
                       .binding = SymbolBinding::kLocal,
                       .kind = SymbolKind::kObject,
                       .section = s0});
  obj.AddSymbol(Symbol{.name = "debug",
                       .binding = SymbolBinding::kLocal,
                       .kind = SymbolKind::kObject,
                       .section = s1});
  EXPECT_EQ(obj.FindSymbols("debug").size(), 2u);
  EXPECT_EQ(obj.FindUniqueSymbol("debug").status().code(),
            ks::ErrorCode::kInvalidArgument);
}

TEST(ObjectFileTest, InternUndefinedSymbolDeduplicates) {
  ObjectFile obj("x.kc");
  int a = obj.InternUndefinedSymbol("printk");
  int b = obj.InternUndefinedSymbol("printk");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(obj.symbols()[static_cast<size_t>(a)].defined());
}

TEST(ObjectFileTest, DefiningSymbolForSection) {
  ObjectFile obj = MakeSimpleObject();
  std::optional<int> def = obj.DefiningSymbolForSection(0);
  ASSERT_TRUE(def.has_value());
  EXPECT_EQ(obj.symbols()[static_cast<size_t>(*def)].name, "fn");
}

TEST(ObjectFileTest, SerializeParseRoundTrip) {
  ObjectFile obj = MakeSimpleObject();
  std::vector<uint8_t> bytes = obj.Serialize();
  ks::Result<ObjectFile> parsed = ObjectFile::Parse(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->source_name(), "unit.kc");
  ASSERT_EQ(parsed->sections().size(), 2u);
  EXPECT_EQ(parsed->sections()[0].name, ".text.fn");
  EXPECT_EQ(parsed->sections()[0].bytes, obj.sections()[0].bytes);
  ASSERT_EQ(parsed->sections()[0].relocs.size(), 1u);
  EXPECT_EQ(parsed->sections()[0].relocs[0].offset, 2u);
  EXPECT_EQ(parsed->sections()[0].relocs[0].type, RelocType::kAbs32);
  ASSERT_EQ(parsed->symbols().size(), 2u);
  EXPECT_EQ(parsed->symbols()[1].name, "counter");
  // Re-serializing the parse yields identical bytes (canonical form).
  EXPECT_EQ(parsed->Serialize(), bytes);
}

TEST(ObjectFileTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ObjectFile::Parse({1, 2, 3}).ok());
  std::vector<uint8_t> truncated = MakeSimpleObject().Serialize();
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(ObjectFile::Parse(truncated).ok());
  std::vector<uint8_t> trailing = MakeSimpleObject().Serialize();
  trailing.push_back(0);
  EXPECT_FALSE(ObjectFile::Parse(trailing).ok());
}

TEST(ObjectFileTest, ValidateCatchesBadRelocation) {
  ObjectFile obj = MakeSimpleObject();
  obj.sections()[0].relocs[0].offset = 100;  // beyond section
  EXPECT_FALSE(obj.Validate().ok());
}

TEST(ObjectFileTest, ValidateCatchesBadSymbolSection) {
  ObjectFile obj = MakeSimpleObject();
  obj.symbols()[0].section = 9;
  EXPECT_FALSE(obj.Validate().ok());
}

TEST(ObjectFileTest, ValidateCatchesBssWithBytes) {
  ObjectFile obj("b.kc");
  Section sec;
  sec.name = ".bss.x";
  sec.kind = SectionKind::kBss;
  sec.bytes = {1};
  obj.AddSection(std::move(sec));
  EXPECT_FALSE(obj.Validate().ok());
}

TEST(ObjectFileTest, ValidateCatchesNonPowerOfTwoAlign) {
  ObjectFile obj("a.kc");
  Section sec = TextSection(".text", {});
  sec.align = 3;
  obj.AddSection(std::move(sec));
  EXPECT_FALSE(obj.Validate().ok());
}

// Linker ----------------------------------------------------------------

TEST(LinkerTest, LaysOutTextBeforeDataBeforeBss) {
  ObjectFile obj("m.kc");
  obj.AddSection(TextSection(".text.f", {0x42}));  // ret
  obj.AddSection(DataSection(".data.d", {1, 2, 3, 4}));
  Section bss;
  bss.name = ".bss.z";
  bss.kind = SectionKind::kBss;
  bss.align = 4;
  bss.bss_size = 16;
  obj.AddSection(std::move(bss));

  Linker linker;
  linker.AddObject(obj);
  ks::Result<LinkedImage> image = linker.Link(0x1000);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  ASSERT_EQ(image->placements.size(), 3u);
  EXPECT_EQ(image->placements[0].name, ".text.f");
  EXPECT_EQ(image->placements[0].address, 0x1000u);
  EXPECT_EQ(image->placements[1].name, ".data.d");
  EXPECT_LT(image->placements[1].address, image->placements[2].address);
  EXPECT_EQ(image->placements[2].name, ".bss.z");
  EXPECT_EQ(image->bytes.size(), image->end() - image->base);
  // bss bytes are zero.
  uint32_t bss_off = image->placements[2].address - image->base;
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(image->bytes[bss_off + i], 0);
  }
}

TEST(LinkerTest, ResolvesAbs32AndPcrel32) {
  // .text.caller: mov r0, =target (abs32 at +2); call target (pcrel32 at +7,
  // addend -4).
  ObjectFile obj("m.kc");
  std::vector<uint8_t> code(11, 0);
  code[0] = 0x10;  // MovRI
  code[1] = 0;
  code[6] = 0x40;  // Call
  int text = obj.AddSection(TextSection(".text.caller", code));
  int target_sec = obj.AddSection(TextSection(".text.target", {0x42}));
  int target = obj.AddSymbol(Symbol{.name = "target",
                                    .binding = SymbolBinding::kGlobal,
                                    .kind = SymbolKind::kFunction,
                                    .section = target_sec,
                                    .value = 0,
                                    .size = 1});
  obj.AddSymbol(Symbol{.name = "caller",
                       .binding = SymbolBinding::kGlobal,
                       .kind = SymbolKind::kFunction,
                       .section = text,
                       .value = 0,
                       .size = 11});
  obj.sections()[static_cast<size_t>(text)].relocs.push_back(Relocation{
      .offset = 2, .type = RelocType::kAbs32, .symbol = target, .addend = 0});
  obj.sections()[static_cast<size_t>(text)].relocs.push_back(
      Relocation{.offset = 7,
                 .type = RelocType::kPcrel32,
                 .symbol = target,
                 .addend = -4});

  Linker linker;
  linker.AddObject(obj);
  ks::Result<LinkedImage> image = linker.Link(0x2000);
  ASSERT_TRUE(image.ok()) << image.status().ToString();

  uint32_t target_addr = 0;
  for (const LinkedSymbol& sym : image->symbols) {
    if (sym.name == "target") {
      target_addr = sym.address;
    }
  }
  ASSERT_NE(target_addr, 0u);

  // ABS32: word at 0x2002 == S.
  EXPECT_EQ(ks::ReadLe32(image->bytes.data() + 2), target_addr);
  // PCREL32: word at 0x2007 == S - 4 - P; jump lands on S from insn end.
  uint32_t field = ks::ReadLe32(image->bytes.data() + 7);
  EXPECT_EQ(0x2007u + 4u + field, target_addr);
}

TEST(LinkerTest, CrossObjectGlobalResolution) {
  ObjectFile a("a.kc");
  std::vector<uint8_t> call(5, 0);
  call[0] = 0x40;
  int text = a.AddSection(TextSection(".text.main", call));
  int imported = a.InternUndefinedSymbol("helper");
  a.AddSymbol(Symbol{.name = "main",
                     .binding = SymbolBinding::kGlobal,
                     .kind = SymbolKind::kFunction,
                     .section = text,
                     .size = 5});
  a.sections()[static_cast<size_t>(text)].relocs.push_back(
      Relocation{.offset = 1,
                 .type = RelocType::kPcrel32,
                 .symbol = imported,
                 .addend = -4});

  ObjectFile b("b.kc");
  int helper_sec = b.AddSection(TextSection(".text.helper", {0x42}));
  b.AddSymbol(Symbol{.name = "helper",
                     .binding = SymbolBinding::kGlobal,
                     .kind = SymbolKind::kFunction,
                     .section = helper_sec,
                     .size = 1});

  Linker linker;
  linker.AddObject(a);
  linker.AddObject(b);
  ks::Result<LinkedImage> image = linker.Link(0x1000);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
}

TEST(LinkerTest, UndefinedSymbolFails) {
  ObjectFile a("a.kc");
  std::vector<uint8_t> call(5, 0);
  call[0] = 0x40;
  int text = a.AddSection(TextSection(".text.main", call));
  int imported = a.InternUndefinedSymbol("ghost");
  a.sections()[static_cast<size_t>(text)].relocs.push_back(
      Relocation{.offset = 1,
                 .type = RelocType::kPcrel32,
                 .symbol = imported,
                 .addend = -4});
  Linker linker;
  linker.AddObject(a);
  ks::Result<LinkedImage> image = linker.Link(0x1000);
  ASSERT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), ks::ErrorCode::kNotFound);
}

TEST(LinkerTest, ExternalResolverSuppliesKernelExports) {
  ObjectFile a("mod.kc");
  std::vector<uint8_t> call(5, 0);
  call[0] = 0x40;
  int text = a.AddSection(TextSection(".text.main", call));
  int imported = a.InternUndefinedSymbol("printk");
  a.sections()[static_cast<size_t>(text)].relocs.push_back(
      Relocation{.offset = 1,
                 .type = RelocType::kPcrel32,
                 .symbol = imported,
                 .addend = -4});
  Linker linker;
  linker.AddObject(a);
  linker.set_external_resolver([](const std::string& name) {
    return name == "printk" ? std::optional<uint32_t>(0x500)
                            : std::nullopt;
  });
  ks::Result<LinkedImage> image = linker.Link(0x1000);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  uint32_t field = ks::ReadLe32(image->bytes.data() + 1);
  EXPECT_EQ(0x1001u + 4u + field, 0x500u);
}

TEST(LinkerTest, DuplicateGlobalsFail) {
  ObjectFile a("a.kc");
  int sa = a.AddSection(TextSection(".text.f", {0x42}));
  a.AddSymbol(Symbol{.name = "f",
                     .binding = SymbolBinding::kGlobal,
                     .kind = SymbolKind::kFunction,
                     .section = sa,
                     .size = 1});
  ObjectFile b("b.kc");
  int sb = b.AddSection(TextSection(".text.f", {0x42}));
  b.AddSymbol(Symbol{.name = "f",
                     .binding = SymbolBinding::kGlobal,
                     .kind = SymbolKind::kFunction,
                     .section = sb,
                     .size = 1});
  Linker linker;
  linker.AddObject(a);
  linker.AddObject(b);
  EXPECT_EQ(linker.Link(0x1000).status().code(),
            ks::ErrorCode::kAlreadyExists);
}

TEST(LinkerTest, DuplicateLocalsAreFine) {
  // Local symbols with the same name in different units coexist; the
  // kallsyms-like table keeps both (7.9% of Linux symbols do this, §6.3).
  ObjectFile a("dst.kc");
  int sa = a.AddSection(DataSection(".data.debug", {0, 0, 0, 0}));
  a.AddSymbol(Symbol{.name = "debug",
                     .binding = SymbolBinding::kLocal,
                     .kind = SymbolKind::kObject,
                     .section = sa,
                     .size = 4});
  ObjectFile b("dst_ca.kc");
  int sb = b.AddSection(DataSection(".data.debug", {0, 0, 0, 0}));
  b.AddSymbol(Symbol{.name = "debug",
                     .binding = SymbolBinding::kLocal,
                     .kind = SymbolKind::kObject,
                     .section = sb,
                     .size = 4});
  Linker linker;
  linker.AddObject(a);
  linker.AddObject(b);
  ks::Result<LinkedImage> image = linker.Link(0x1000);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  int debug_count = 0;
  for (const LinkedSymbol& sym : image->symbols) {
    if (sym.name == "debug") {
      ++debug_count;
    }
  }
  EXPECT_EQ(debug_count, 2);
}

TEST(LinkerTest, AlignmentIsHonoured) {
  ObjectFile obj("m.kc");
  obj.AddSection(TextSection(".text.a", {0x42}));  // 1 byte
  Section b = TextSection(".text.b", {0x42});
  b.align = 16;
  obj.AddSection(std::move(b));
  Linker linker;
  linker.AddObject(obj);
  ks::Result<LinkedImage> image = linker.Link(0x1001);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->placements[1].address % 16, 0u);
}

}  // namespace
}  // namespace kelf
