// Edge cases and properties for the Ksplice core beyond the main
// integration flow: pre-post differencing invariants, package parsing
// robustness (truncation/corruption sweeps), create-time gates, apply
// failure cleanliness, and hook failure handling.

#include <gtest/gtest.h>

#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "ksplice/prepost.h"
#include "kvm/machine.h"

namespace ksplice {
namespace {

using kdiff::SourceTree;

kcc::CompileOptions Monolithic() {
  kcc::CompileOptions options;
  options.function_sections = false;
  options.data_sections = false;
  return options;
}

SourceTree SmallKernel() {
  SourceTree tree;
  tree.Write("main.kc", R"(
int state = 10;
int small_helper(int x) {
  return x + 1;
}
int big_worker(int x) {
  int a = x + 1; int b = a + 2; int c = b + 3; int d = c + 4;
  int e = d + 5; int f = e + 6; int g = f + 7; int h = g + 8;
  state = state + h;
  return a + b + c + d + e + f + g + h;
}
void probe(int x) {
  record(1, big_worker(x) + small_helper(x));
}
)");
  return tree;
}

std::string EditTree(const SourceTree& tree, const std::string& path,
                     const std::string& from, const std::string& to,
                     SourceTree* post_out = nullptr) {
  SourceTree post = tree;
  std::string contents = *tree.Read(path);
  size_t at = contents.find(from);
  EXPECT_NE(at, std::string::npos);
  contents.replace(at, from.size(), to);
  post.Write(path, contents);
  if (post_out != nullptr) {
    *post_out = post;
  }
  return kdiff::MakeUnifiedDiff(tree, post);
}

// ---------------------------------------------------------------- prepost

TEST(PrePostTest, IdentityPatchRebuildsButChangesNothing) {
  SourceTree tree = SmallKernel();
  // Whitespace-only change forces a rebuild with no object difference.
  std::string patch = EditTree(tree, "main.kc", "int state = 10;",
                               "int state =  10;");
  ks::Result<kdiff::Patch> parsed = kdiff::ParseUnifiedDiff(patch);
  ASSERT_TRUE(parsed.ok());
  ks::Result<PrePostResult> result =
      RunPrePost(tree, *parsed, Monolithic());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rebuilt_units.size(), 1u);
  EXPECT_TRUE(result->changed.empty());
}

TEST(PrePostTest, SingleFunctionChangeIsLocalized) {
  SourceTree tree = SmallKernel();
  std::string patch = EditTree(tree, "main.kc", "int e = d + 5;",
                               "int e = d + 50;");
  ks::Result<kdiff::Patch> parsed = kdiff::ParseUnifiedDiff(patch);
  ASSERT_TRUE(parsed.ok());
  ks::Result<PrePostResult> result =
      RunPrePost(tree, *parsed, Monolithic());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->changed.size(), 1u);
  EXPECT_EQ(result->changed[0].name, ".text.big_worker");
  EXPECT_EQ(result->changed[0].change, SectionChange::kModified);
}

TEST(PrePostTest, InlineCalleeChangePropagatesToCallers) {
  SourceTree tree = SmallKernel();
  std::string patch = EditTree(tree, "main.kc", "return x + 1;",
                               "return x + 2;");
  ks::Result<kdiff::Patch> parsed = kdiff::ParseUnifiedDiff(patch);
  ASSERT_TRUE(parsed.ok());
  ks::Result<PrePostResult> result =
      RunPrePost(tree, *parsed, Monolithic());
  ASSERT_TRUE(result.ok());
  std::set<std::string> changed;
  for (const ChangedSection& section : result->changed) {
    changed.insert(section.name);
  }
  EXPECT_TRUE(changed.count(".text.small_helper"));
  EXPECT_TRUE(changed.count(".text.probe"))
      << "probe inlined small_helper; its object code changed";
  EXPECT_FALSE(changed.count(".text.big_worker"));
}

TEST(PrePostTest, FunctionAdditionAndRemovalClassified) {
  SourceTree tree = SmallKernel();
  SourceTree post;
  std::string patch =
      EditTree(tree, "main.kc",
               "int small_helper(int x) {\n  return x + 1;\n}",
               "int brand_new(int x) {\n  return x * 9;\n}", &post);
  ks::Result<kdiff::Patch> parsed = kdiff::ParseUnifiedDiff(patch);
  ASSERT_TRUE(parsed.ok());
  ks::Result<PrePostResult> result =
      RunPrePost(tree, *parsed, Monolithic());
  // probe calls small_helper which no longer exists -> the post build of
  // probe references an unknown symbol... which compiles (imports are
  // legal) so the diff classifies sections:
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  bool added = false;
  bool removed = false;
  for (const ChangedSection& section : result->changed) {
    if (section.name == ".text.brand_new" &&
        section.change == SectionChange::kAdded) {
      added = true;
    }
    if (section.name == ".text.small_helper" &&
        section.change == SectionChange::kRemoved) {
      removed = true;
    }
  }
  EXPECT_TRUE(added);
  EXPECT_TRUE(removed);
}

TEST(PrePostTest, SectionsEquivalentComparesRelocationIdentity) {
  // Two sections with identical bytes but relocations against different
  // symbol NAMES are not equivalent; against the same name (different
  // index) they are.
  kelf::ObjectFile a("u.kc");
  kelf::ObjectFile b("u.kc");
  kelf::Section sa;
  sa.name = ".text.f";
  sa.kind = kelf::SectionKind::kText;
  sa.bytes = std::vector<uint8_t>(8, 0x01);
  kelf::Section sb = sa;

  int imp_a = a.InternUndefinedSymbol("alpha");
  a.AddSymbol(kelf::Symbol{.name = "pad", .section = kelf::kUndefSection});
  int imp_b_same = b.InternUndefinedSymbol("alpha");
  sa.relocs.push_back(kelf::Relocation{0, kelf::RelocType::kAbs32, imp_a, 0});
  sb.relocs.push_back(
      kelf::Relocation{0, kelf::RelocType::kAbs32, imp_b_same, 0});
  int ia = a.AddSection(sa);
  int ib = b.AddSection(sb);
  EXPECT_TRUE(SectionsEquivalent(a, a.sections()[ia], b, b.sections()[ib]));

  // Same bytes, different target name.
  kelf::ObjectFile c("u.kc");
  kelf::Section sc = a.sections()[ia];
  sc.relocs[0].symbol = c.InternUndefinedSymbol("beta");
  int ic = c.AddSection(sc);
  EXPECT_FALSE(SectionsEquivalent(a, a.sections()[ia], c, c.sections()[ic]));

  // Different addend.
  kelf::ObjectFile d("u.kc");
  kelf::Section sd = a.sections()[ia];
  sd.relocs[0].symbol = d.InternUndefinedSymbol("alpha");
  sd.relocs[0].addend = 4;
  int id = d.AddSection(sd);
  EXPECT_FALSE(SectionsEquivalent(a, a.sections()[ia], d, d.sections()[id]));
}

// ---------------------------------------------------------------- package

TEST(PackageTest, TruncationSweepNeverCrashesAndAlwaysErrors) {
  SourceTree tree = SmallKernel();
  std::string patch = EditTree(tree, "main.kc", "int e = d + 5;",
                               "int e = d + 50;");
  CreateOptions options;
  options.compile = Monolithic();
  ks::Result<CreateResult> created = CreateUpdate(tree, patch, options);
  ASSERT_TRUE(created.ok());
  std::vector<uint8_t> bytes = created->package.Serialize();
  // Every strict prefix must fail to parse, without crashing.
  for (size_t len = 0; len < bytes.size();
       len += std::max<size_t>(1, bytes.size() / 197)) {
    std::vector<uint8_t> prefix(bytes.begin(),
                                bytes.begin() + static_cast<long>(len));
    EXPECT_FALSE(UpdatePackage::Parse(prefix).ok()) << "len=" << len;
  }
  // Flipping the magic fails.
  std::vector<uint8_t> corrupt = bytes;
  corrupt[0] ^= 0xff;
  EXPECT_FALSE(UpdatePackage::Parse(corrupt).ok());
  // Any single flipped payload byte is caught by the checksum.
  for (size_t at = 16; at < bytes.size(); at += bytes.size() / 23 + 1) {
    std::vector<uint8_t> bitrot = bytes;
    bitrot[at] ^= 0x40;
    EXPECT_FALSE(UpdatePackage::Parse(bitrot).ok()) << "at=" << at;
  }
  // The intact package round-trips.
  ks::Result<UpdatePackage> parsed = UpdatePackage::Parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Serialize(), bytes);
}

TEST(PackageTest, ScopedNameRoundTrip) {
  EXPECT_EQ(ScopedName("fs/exec.kc", "debug"), "fs/exec.kc::debug");
  ScopedSymbol scoped = SplitScopedName("fs/exec.kc::debug");
  EXPECT_EQ(scoped.unit, "fs/exec.kc");
  EXPECT_EQ(scoped.symbol, "debug");
  ScopedSymbol plain = SplitScopedName("printk");
  EXPECT_TRUE(plain.unit.empty());
  EXPECT_EQ(plain.symbol, "printk");
}

// ------------------------------------------------------------------ apply

std::unique_ptr<kvm::Machine> Boot(const SourceTree& tree) {
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, Monolithic());
  EXPECT_TRUE(objects.ok());
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  EXPECT_TRUE(machine.ok());
  return machine.ok() ? std::move(machine).value() : nullptr;
}

TEST(ApplyEdgeTest, FailedApplyLeavesNoResidue) {
  SourceTree tree = SmallKernel();
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);

  // Create a valid update against DIFFERENT source so run-pre aborts.
  SourceTree wrong = SmallKernel();
  std::string contents = *wrong.Read("main.kc");
  contents.replace(contents.find("state = state + h;"),
                   std::string("state = state + h;").size(),
                   "state = state + h + 1;");
  wrong.Write("main.kc", contents);
  std::string patch = EditTree(wrong, "main.kc", "int e = d + 5;",
                               "int e = d + 50;");
  CreateOptions options;
  options.compile = Monolithic();
  ks::Result<CreateResult> created = CreateUpdate(wrong, patch, options);
  ASSERT_TRUE(created.ok());

  uint32_t arena_before = machine->ModuleArenaBytesInUse();
  std::vector<kelf::LinkedSymbol> syms_before = machine->Kallsyms();

  KspliceCore core(machine.get());
  ks::Result<ApplyReport> applied = core.Apply(created->package);
  ASSERT_FALSE(applied.ok());

  EXPECT_EQ(machine->ModuleArenaBytesInUse(), arena_before);
  EXPECT_EQ(machine->Kallsyms().size(), syms_before.size());
  EXPECT_TRUE(core.applied().empty());
  // Machine still works.
  ASSERT_TRUE(machine->SpawnNamed("probe", 1).ok());
  ASSERT_TRUE(machine->RunToCompletion().ok());
  EXPECT_TRUE(machine->Faults().empty());
}

TEST(ApplyEdgeTest, FailingApplyHookAbortsBeforeSplice) {
  SourceTree tree = SmallKernel();
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  EXPECT_TRUE(machine->SpawnNamed("probe", 1).ok());
  EXPECT_TRUE(machine->RunToCompletion().ok());
  uint32_t before = machine->RecordsWithKey(1).back();

  // The patch's pre_apply hook dereferences NULL: apply must fail and the
  // splice must not have happened.
  SourceTree post = tree;
  std::string contents = *tree.Read("main.kc");
  size_t at = contents.find("int e = d + 5;");
  contents.replace(at, std::string("int e = d + 5;").size(),
                   "int e = d + 50;");
  contents +=
      "void bad_hook() {\n"
      "  int *p = 0;\n"
      "  *p = 1;\n"
      "}\n"
      "ksplice_pre_apply(bad_hook);\n";
  post.Write("main.kc", contents);
  std::string patch = kdiff::MakeUnifiedDiff(tree, post);

  CreateOptions options;
  options.compile = Monolithic();
  ks::Result<CreateResult> created = CreateUpdate(tree, patch, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  KspliceCore core(machine.get());
  ks::Result<ApplyReport> applied = core.Apply(created->package);
  ASSERT_FALSE(applied.ok());
  EXPECT_NE(applied.status().message().find("hook"), std::string::npos);
  EXPECT_TRUE(core.applied().empty());

  // Old behaviour intact.
  EXPECT_TRUE(machine->SpawnNamed("probe", 1).ok());
  EXPECT_TRUE(machine->RunToCompletion().ok());
  EXPECT_EQ(machine->RecordsWithKey(1).back(), before);
}

TEST(ApplyEdgeTest, SamePackageAppliesToTwoMachines) {
  SourceTree tree = SmallKernel();
  std::string patch = EditTree(tree, "main.kc", "int e = d + 5;",
                               "int e = d + 50;");
  CreateOptions options;
  options.compile = Monolithic();
  ks::Result<CreateResult> created = CreateUpdate(tree, patch, options);
  ASSERT_TRUE(created.ok());
  // Serialize once, apply the parsed artifact to two independent kernels
  // (the paper's distribution model: one package, many machines).
  ks::Result<UpdatePackage> pkg =
      UpdatePackage::Parse(created->package.Serialize());
  ASSERT_TRUE(pkg.ok());

  // Reference values: unpatched vs patched behaviour.
  uint32_t unpatched_value = 0;
  {
    std::unique_ptr<kvm::Machine> machine = Boot(tree);
    ASSERT_NE(machine, nullptr);
    ASSERT_TRUE(machine->SpawnNamed("probe", 1).ok());
    ASSERT_TRUE(machine->RunToCompletion().ok());
    unpatched_value = machine->RecordsWithKey(1).back();
  }
  uint32_t patched_value = 0;
  for (int i = 0; i < 2; ++i) {
    std::unique_ptr<kvm::Machine> machine = Boot(tree);
    ASSERT_NE(machine, nullptr);
    KspliceCore core(machine.get());
    ks::Result<ApplyReport> applied = core.Apply(*pkg);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    ASSERT_TRUE(machine->SpawnNamed("probe", 1).ok());
    ASSERT_TRUE(machine->RunToCompletion().ok());
    uint32_t value = machine->RecordsWithKey(1).back();
    EXPECT_NE(value, unpatched_value) << "machine " << i;
    if (i == 0) {
      patched_value = value;
    } else {
      EXPECT_EQ(value, patched_value) << "identical package, same effect";
    }
  }
}

TEST(ApplyEdgeTest, NewFunctionCalledFromPatchedCode) {
  SourceTree tree = SmallKernel();
  SourceTree post = tree;
  std::string contents = *tree.Read("main.kc");
  size_t at = contents.find("  state = state + h;");
  contents.replace(at, std::string("  state = state + h;").size(),
                   "  state = audit_add(state, h);");
  contents +=
      "int audit_add(int base, int delta) {\n"
      "  record(77, delta);\n"
      "  return base + delta;\n"
      "}\n";
  post.Write("main.kc", contents);
  std::string patch = kdiff::MakeUnifiedDiff(tree, post);

  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  CreateOptions options;
  options.compile = Monolithic();
  ks::Result<CreateResult> created = CreateUpdate(tree, patch, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  KspliceCore core(machine.get());
  ks::Result<ApplyReport> applied = core.Apply(created->package);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  ASSERT_TRUE(machine->SpawnNamed("probe", 1).ok());
  ASSERT_TRUE(machine->RunToCompletion().ok());
  // The new function ran inside the replacement code.
  EXPECT_FALSE(machine->RecordsWithKey(77).empty());
}

TEST(ApplyEdgeTest, UndoAfterHelperUnloadWorks) {
  SourceTree tree = SmallKernel();
  std::string patch = EditTree(tree, "main.kc", "int e = d + 5;",
                               "int e = d + 50;");
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  CreateOptions options;
  options.compile = Monolithic();
  ks::Result<CreateResult> created = CreateUpdate(tree, patch, options);
  ASSERT_TRUE(created.ok());
  KspliceCore core(machine.get());
  ApplyOptions apply_options;
  apply_options.keep_helper = true;
  ks::Result<ApplyReport> applied =
      core.Apply(created->package, apply_options);
  ASSERT_TRUE(applied.ok());
  ASSERT_TRUE(core.UnloadHelper(applied->id).ok());
  EXPECT_TRUE(core.Undo(applied->id).ok());
  EXPECT_TRUE(core.applied().empty());
}

TEST(ApplyEdgeTest, PatchApplicationFailsOnMismatchedSource) {
  // The patch itself does not apply to the given tree (context mismatch):
  // create must fail with the patch error, not a build error.
  SourceTree tree = SmallKernel();
  std::string patch =
      "--- a/main.kc\n+++ b/main.kc\n@@ -1,3 +1,3 @@\n"
      " no such\n-context\n+lines\n";
  CreateOptions options;
  options.compile = Monolithic();
  ks::Result<CreateResult> created = CreateUpdate(tree, patch, options);
  ASSERT_FALSE(created.ok());
}

TEST(ApplyEdgeTest, CompilerConfigurationDriftAborts) {
  // §4.3: "Ksplice does not strictly require that the hot update be
  // prepared using exactly the same compiler version ... but doing so is
  // advisable since the run-pre check will, in order to be safe, abort the
  // upgrade if it detects unexpected object code differences."
  // A different inlining configuration is our analogue of a different
  // compiler version: the pre build no longer matches the run code.
  SourceTree tree;
  tree.Write("m.kc", R"(
int acc = 0;
int leaf(int x) {
  return x * 3 + 1;
}
int trunk(int x) {
  acc = acc + leaf(x) + leaf(x + 1);
  return acc;
}
)");
  // Run kernel: compiler inlines leaf into trunk.
  kcc::CompileOptions run_options = Monolithic();
  run_options.inline_threshold = 24;
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, run_options);
  ASSERT_TRUE(objects.ok());
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  ASSERT_TRUE(machine.ok());

  std::string patch = EditTree(tree, "m.kc", "return x * 3 + 1;",
                               "return x * 3 + 2;");

  // Update built with a DIFFERENT "compiler" (inlining disabled): trunk's
  // pre rendering calls leaf instead of inlining it.
  CreateOptions drifted;
  drifted.compile = Monolithic();
  drifted.compile.inline_threshold = 0;
  ks::Result<CreateResult> bad = CreateUpdate(tree, patch, drifted);
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  KspliceCore core(machine->get());
  ks::Result<ApplyReport> applied = core.Apply(bad->package);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), ks::ErrorCode::kAborted);
  EXPECT_NE(applied.status().message().find("run-pre"), std::string::npos);

  // The matching configuration works.
  CreateOptions correct;
  correct.compile = run_options;
  ks::Result<CreateResult> good = CreateUpdate(tree, patch, correct);
  ASSERT_TRUE(good.ok());
  ks::Result<ApplyReport> applied_good = core.Apply(good->package);
  EXPECT_TRUE(applied_good.ok()) << applied_good.status().ToString();
}

TEST(ApplyEdgeTest, StackedUpdateDoesNotRerunEarlierHooks) {
  // Update 1 carries a ksplice_apply hook. Update 2 (created against the
  // previously-patched source, which now contains the hook's code) must
  // NOT include or re-run update 1's hook: hooks belong to the patch that
  // introduced them.
  SourceTree v0;
  v0.Write("m.kc", R"(
int hook_runs = 0;
int knob = 1;
int api(int x) {
  return x + knob;
}
)");
  std::unique_ptr<kvm::Machine> machine = Boot(v0);
  ASSERT_NE(machine, nullptr);
  KspliceCore core(machine.get());

  // Update 1: change api, add a hook.
  SourceTree v1 = v0;
  std::string contents = *v0.Read("m.kc");
  contents.replace(contents.find("return x + knob;"),
                   std::string("return x + knob;").size(),
                   "return x + knob + 1;");
  contents +=
      "void count_hook() {\n"
      "  hook_runs = hook_runs + 1;\n"
      "}\n"
      "ksplice_apply(count_hook);\n";
  v1.Write("m.kc", contents);
  CreateOptions options;
  options.compile = Monolithic();
  options.id = "u1";
  ks::Result<CreateResult> u1 =
      CreateUpdate(v0, kdiff::MakeUnifiedDiff(v0, v1), options);
  ASSERT_TRUE(u1.ok()) << u1.status().ToString();
  ASSERT_TRUE(core.Apply(u1->package).ok());
  uint32_t runs_addr = *machine->GlobalSymbol("hook_runs");
  EXPECT_EQ(*machine->ReadWord(runs_addr), 1u);

  // Update 2: unrelated change in the same unit, created against v1.
  SourceTree v2 = v1;
  std::string c2 = *v1.Read("m.kc");
  c2.replace(c2.find("return x + knob + 1;"),
             std::string("return x + knob + 1;").size(),
             "return x + knob + 2;");
  v2.Write("m.kc", c2);
  options.id = "u2";
  ks::Result<CreateResult> u2 =
      CreateUpdate(v1, kdiff::MakeUnifiedDiff(v1, v2), options);
  ASSERT_TRUE(u2.ok()) << u2.status().ToString();
  // u2's primary must not carry a hook table.
  for (const kelf::ObjectFile& primary : u2->package.primary_objects) {
    for (const kelf::Section& section : primary.sections()) {
      EXPECT_NE(section.kind, kelf::SectionKind::kNote)
          << "update 2 must not re-ship update 1's hooks";
    }
  }
  ks::Result<ApplyReport> applied = core.Apply(u2->package);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*machine->ReadWord(runs_addr), 1u)
      << "update 1's hook must not run again";
}

}  // namespace
}  // namespace ksplice
