// Reverse hooks (§5.3), automatic quiescence retry (§5.2), SMP-mode apply
// with virtual CPUs running, and direct tests of the kvm facilities the
// core relies on (CallFunction, LoadBlob, ModulePlacements).

#include <gtest/gtest.h>

#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "kvm/machine.h"

namespace ksplice {
namespace {

using kdiff::SourceTree;

kcc::CompileOptions Monolithic() {
  kcc::CompileOptions options;
  options.function_sections = false;
  options.data_sections = false;
  return options;
}

std::unique_ptr<kvm::Machine> Boot(const SourceTree& tree) {
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, Monolithic());
  EXPECT_TRUE(objects.ok()) << objects.status().ToString();
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  EXPECT_TRUE(machine.ok()) << machine.status().ToString();
  return machine.ok() ? std::move(machine).value() : nullptr;
}

TEST(ReverseHooksTest, AllSixHookStagesRun) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int mode = 1;
int hook_trace = 0;
int get_mode() {
  return mode + 100;
}
)");
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);

  SourceTree post = tree;
  std::string contents = *tree.Read("m.kc");
  contents.replace(contents.find("return mode + 100;"),
                   std::string("return mode + 100;").size(),
                   "return mode + 200;");
  contents +=
      "void h_pre_apply() { hook_trace = hook_trace * 10 + 1; }\n"
      "void h_apply() { hook_trace = hook_trace * 10 + 2; }\n"
      "void h_post_apply() { hook_trace = hook_trace * 10 + 3; }\n"
      "void h_pre_reverse() { hook_trace = hook_trace * 10 + 4; }\n"
      "void h_reverse() { hook_trace = hook_trace * 10 + 5; }\n"
      "void h_post_reverse() { hook_trace = hook_trace * 10 + 6; }\n"
      "ksplice_pre_apply(h_pre_apply);\n"
      "ksplice_apply(h_apply);\n"
      "ksplice_post_apply(h_post_apply);\n"
      "ksplice_pre_reverse(h_pre_reverse);\n"
      "ksplice_reverse(h_reverse);\n"
      "ksplice_post_reverse(h_post_reverse);\n";
  post.Write("m.kc", contents);

  CreateOptions options;
  options.compile = Monolithic();
  ks::Result<CreateResult> created =
      CreateUpdate(tree, kdiff::MakeUnifiedDiff(tree, post), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  KspliceCore core(machine.get());
  ks::Result<ApplyReport> applied = core.Apply(created->package);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  ASSERT_EQ(core.applied().size(), 1u);
  const AppliedUpdate& update = core.applied()[0];
  EXPECT_EQ(update.hooks.pre_apply.size(), 1u);
  EXPECT_EQ(update.hooks.apply.size(), 1u);
  EXPECT_EQ(update.hooks.post_apply.size(), 1u);
  EXPECT_EQ(update.hooks.reverse.size(), 1u);

  uint32_t trace_addr = *machine->GlobalSymbol("hook_trace");
  EXPECT_EQ(*machine->ReadWord(trace_addr), 123u)
      << "pre_apply, apply, post_apply in order";

  ASSERT_TRUE(core.Undo(applied->id).ok());
  EXPECT_EQ(*machine->ReadWord(trace_addr), 123456u)
      << "pre_reverse, reverse, post_reverse in order";
}

TEST(QuiescenceTest, ApplyRetriesUntilFunctionQuiesces) {
  // A thread sleeps *inside* the patched function briefly; apply's retry
  // loop must advance the machine and succeed automatically (§5.2's
  // "tries again after a short delay").
  SourceTree tree;
  tree.Write("m.kc", R"(
int busy_stat_a; int busy_stat_b; int busy_stat_c; int busy_stat_d;
int busy_op(int n) {
  busy_stat_a += 1; busy_stat_b += 2; busy_stat_c += 3; busy_stat_d += 4;
  busy_stat_a += busy_stat_b; busy_stat_c += busy_stat_d;
  sleep(n);
  busy_stat_b += busy_stat_c;
  return 7;
}
void runner(int n) {
  record(1, busy_op(n));
}
)");
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  ASSERT_TRUE(machine->SpawnNamed("runner", 30'000).ok());
  ASSERT_TRUE(machine->Run(5'000).ok());  // park inside busy_op's sleep

  SourceTree post = tree;
  std::string contents = *tree.Read("m.kc");
  contents.replace(contents.find("return 7;"), 9, "return 8;");
  post.Write("m.kc", contents);
  CreateOptions options;
  options.compile = Monolithic();
  ks::Result<CreateResult> created =
      CreateUpdate(tree, kdiff::MakeUnifiedDiff(tree, post), options);
  ASSERT_TRUE(created.ok());

  KspliceCore core(machine.get());
  ApplyOptions apply_options;
  apply_options.rendezvous.max_attempts = 10;
  // Backoff from 10k ticks doubles past the sleeper's 30k-tick nap well
  // within the attempt budget.
  apply_options.rendezvous.backoff_base_ticks = 10'000;
  ks::Result<ApplyReport> applied =
      core.Apply(created->package, apply_options);
  ASSERT_TRUE(applied.ok())
      << "apply must succeed after the sleeper leaves: "
      << applied.status().ToString();

  // The in-flight call completed with the OLD code (7); new calls get 8.
  ASSERT_TRUE(machine->RunToCompletion().ok());
  EXPECT_EQ(machine->RecordsWithKey(1).front(), 7u);
  ASSERT_TRUE(machine->SpawnNamed("runner", 1).ok());
  ASSERT_TRUE(machine->RunToCompletion().ok());
  EXPECT_EQ(machine->RecordsWithKey(1).back(), 8u);
}

TEST(SmpTest, ApplyWhileVirtualCpusChurn) {
  // The §5.2 scenario proper: worker threads run on virtual CPUs (host
  // threads) while the update applies through stop_machine.
  SourceTree tree;
  tree.Write("m.kc", R"(
int spin = 1;
int iterations = 0;
int cls_a; int cls_b; int cls_c; int cls_d;
int classify(int x) {
  cls_a += 1; cls_b += 2; cls_c += 3; cls_d += 4;
  cls_a += cls_b; cls_c += cls_d; cls_b += cls_c; cls_d += cls_a;
  if (x > 10) {
    return 1;
  }
  return 0;
}
void worker(int unused) {
  while (spin) {
    iterations += classify(iterations % 20);
    yield();
  }
}
)");
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  ASSERT_TRUE(machine->SpawnNamed("worker", 0).ok());
  ASSERT_TRUE(machine->SpawnNamed("worker", 0).ok());
  machine->StartCpus(2);

  SourceTree post = tree;
  std::string contents = *tree.Read("m.kc");
  contents.replace(contents.find("if (x > 10) {"),
                   std::string("if (x > 10) {").size(), "if (x > 5) {");
  post.Write("m.kc", contents);
  CreateOptions options;
  options.compile = Monolithic();
  ks::Result<CreateResult> created =
      CreateUpdate(tree, kdiff::MakeUnifiedDiff(tree, post), options);
  ASSERT_TRUE(created.ok());

  KspliceCore core(machine.get());
  ks::Result<ApplyReport> applied = core.Apply(created->package);
  EXPECT_TRUE(applied.ok()) << applied.status().ToString();

  // Stop the workers and check nothing faulted.
  ASSERT_TRUE(machine
                  ->StopMachine([](kvm::Machine& m) {
                    return m.WriteWord(*m.GlobalSymbol("spin"), 0);
                  })
                  .ok());
  for (int i = 0; i < 2000 && machine->HasLiveThreads(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  machine->StopCpus();
  EXPECT_FALSE(machine->HasLiveThreads());
  EXPECT_TRUE(machine->Faults().empty());
  if (applied.ok()) {
    EXPECT_TRUE(core.Undo(applied->id).ok());
  }
}

TEST(SmpTest, RepeatedApplyUndoSoak) {
  // Twenty apply/undo cycles while two virtual CPUs churn: shakes out
  // races between stop_machine, the module arena, and the registry.
  SourceTree tree;
  tree.Write("m.kc", R"(
int spin = 1;
int sum = 0;
int s_a; int s_b; int s_c; int s_d;
int step(int x) {
  s_a += 1; s_b += 2; s_c += 3; s_d += 4;
  s_a += s_b; s_c += s_d; s_b += s_c; s_d += s_a;
  return x + 1;
}
void worker(int unused) {
  while (spin) {
    sum += step(sum % 13);
    yield();
  }
}
)");
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  ASSERT_TRUE(machine->SpawnNamed("worker", 0).ok());
  ASSERT_TRUE(machine->SpawnNamed("worker", 0).ok());
  machine->StartCpus(2);

  SourceTree post = tree;
  std::string contents = *tree.Read("m.kc");
  contents.replace(contents.find("return x + 1;"),
                   std::string("return x + 1;").size(), "return x + 2;");
  post.Write("m.kc", contents);
  CreateOptions options;
  options.compile = Monolithic();
  ks::Result<CreateResult> created =
      CreateUpdate(tree, kdiff::MakeUnifiedDiff(tree, post), options);
  ASSERT_TRUE(created.ok());

  KspliceCore core(machine.get());
  ApplyOptions apply_options;
  apply_options.rendezvous.max_attempts = 50;
  int cycles = 0;
  for (int i = 0; i < 20; ++i) {
    ks::Result<ApplyReport> applied =
        core.Apply(created->package, apply_options);
    ASSERT_TRUE(applied.ok()) << "cycle " << i << ": "
                              << applied.status().ToString();
    ks::Result<UndoReport> undone =
        core.Undo(applied->id, apply_options.rendezvous);
    ASSERT_TRUE(undone.ok()) << "cycle " << i << ": " << undone.status().ToString();
    ++cycles;
  }
  EXPECT_EQ(cycles, 20);

  ASSERT_TRUE(machine
                  ->StopMachine([](kvm::Machine& m) {
                    return m.WriteWord(*m.GlobalSymbol("spin"), 0);
                  })
                  .ok());
  for (int i = 0; i < 2000 && machine->HasLiveThreads(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  machine->StopCpus();
  EXPECT_TRUE(machine->Faults().empty());
  EXPECT_TRUE(core.applied().empty());
}

// ------------------------------------------------------------------- kvm

TEST(KvmFacilityTest, CallFunctionReturnsValueAndReportsFaults) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int doubler(int x) {
  return x * 2;
}
int crasher(int x) {
  int *p = 0;
  return *p + x;
}
int sleeper(int x) {
  sleep(100);
  return x;
}
)");
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);

  uint32_t doubler = *machine->GlobalSymbol("doubler");
  ks::Result<uint32_t> result = machine->CallFunction(doubler, 21);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, 42u);

  // Repeated calls reuse the hook stack.
  for (uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(*machine->CallFunction(doubler, i), i * 2);
  }

  uint32_t crasher = *machine->GlobalSymbol("crasher");
  ks::Result<uint32_t> crash = machine->CallFunction(crasher, 1);
  ASSERT_FALSE(crash.ok());
  EXPECT_EQ(crash.status().code(), ks::ErrorCode::kAborted);

  uint32_t sleeper = *machine->GlobalSymbol("sleeper");
  ks::Result<uint32_t> blocked = machine->CallFunction(sleeper, 1);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), ks::ErrorCode::kFailedPrecondition);
}

TEST(KvmFacilityTest, LoadBlobAccountsAndFrees) {
  SourceTree tree;
  tree.Write("m.kc", "int x = 1;\n");
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  uint32_t before = machine->ModuleArenaBytesInUse();
  ks::Result<kvm::ModuleHandle> blob = machine->LoadBlob("helper", 10'000);
  ASSERT_TRUE(blob.ok());
  EXPECT_GE(machine->ModuleArenaBytesInUse(), before + 10'000);
  ks::Result<kvm::ModuleInfo> info = machine->GetModuleInfo(*blob);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->loaded);
  // Blob memory is writable/readable.
  ASSERT_TRUE(machine->WriteWord(info->base, 0xabcd).ok());
  EXPECT_EQ(*machine->ReadWord(info->base), 0xabcdu);
  ASSERT_TRUE(machine->UnloadModule(*blob).ok());
  EXPECT_EQ(machine->ModuleArenaBytesInUse(), before);
}

TEST(KvmFacilityTest, ModulePlacementsExposeSections) {
  SourceTree tree;
  tree.Write("m.kc", "int x = 1;\n");
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);

  SourceTree mod;
  mod.Write("mod.kc", R"(
int mod_data = 7;
int mod_fn(int a) {
  return mod_data + a;
}
)");
  kcc::CompileOptions options;
  options.function_sections = true;
  options.data_sections = true;
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(mod, options);
  ASSERT_TRUE(objects.ok());
  ks::Result<kvm::ModuleHandle> handle =
      machine->LoadModule(*objects, "m");
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  ks::Result<std::vector<kelf::PlacedSection>> placements =
      machine->ModulePlacements(*handle);
  ASSERT_TRUE(placements.ok());
  bool text = false;
  bool data = false;
  for (const kelf::PlacedSection& placement : *placements) {
    if (placement.name == ".text.mod_fn") {
      text = true;
    }
    if (placement.name == ".data.mod_data") {
      data = true;
    }
  }
  EXPECT_TRUE(text);
  EXPECT_TRUE(data);
  // Placements of an unloaded module are unavailable.
  ASSERT_TRUE(machine->UnloadModule(*handle).ok());
  EXPECT_FALSE(machine->ModulePlacements(*handle).ok());
}

}  // namespace
}  // namespace ksplice
