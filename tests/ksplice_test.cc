// Integration tests for the Ksplice core: create -> run-pre match -> apply
// -> undo, on a live simulated kernel. Covers the paper's §3-§5 behaviours:
// pre-post differencing, ambiguous local symbols, inlining, header
// prototype changes, static locals (state preservation!), custom hooks,
// quiescence aborts, stacking, assembly units, and data-change rejection.

#include <gtest/gtest.h>

#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "kvm/machine.h"

namespace ksplice {
namespace {

using kdiff::SourceTree;

// ------------------------------------------------------------------------
// The miniature kernel used throughout these tests.

SourceTree TestKernelTree() {
  SourceTree tree;
  tree.Write("kapi.h", R"(
int check_access(int uid, int requested);
int ca_get_value(int idx);
int dst_get_value(int idx);
int compute_sum(int a, int b);
int slow_op(int n);
int count_events(int delta);
int check_limit(int v);
int fast_syscall();
int narrow_channel(char c);
)");

  // The "vulnerable" access check (patched by most tests).
  tree.Write("sys/vuln.kc", R"(
int check_access(int uid, int requested) {
  if (requested > 100) {
    return 1;
  }
  if (uid == 0) {
    return 1;
  }
  return 0;
}
)");

  // Two units with identically-named file-scope statics (the paper's
  // dst.c / dst_ca.c "debug" ambiguity, §6.3).
  tree.Write("drv/dst.kc", R"(
static int debug = 5;
int dst_get_value(int idx) {
  if (debug > 0) {
    return idx + debug;
  }
  return idx;
}
)");
  tree.Write("drv/dst_ca.kc", R"(
static int debug = 7;
int ca_get_value(int idx) {
  if (debug > 0) {
    return idx + debug;
  }
  return idx;
}
)");

  // A tiny callee that the compiler inlines into its caller (§4.2).
  tree.Write("lib/math.kc", R"(
int helper_small(int x) {
  return x + 1;
}
int compute_sum(int a, int b) {
  return helper_small(a) + helper_small(b);
}
)");

  // A function threads can sleep inside (quiescence tests). Padded past
  // the inline threshold.
  tree.Write("sys/slow.kc", R"(
int slow_stat_a; int slow_stat_b; int slow_stat_c; int slow_stat_d;
int slow_op(int n) {
  slow_stat_a += 1; slow_stat_b += 2; slow_stat_c += 3; slow_stat_d += 4;
  slow_stat_a += slow_stat_b; slow_stat_c += slow_stat_d;
  sleep(n);
  slow_stat_b += slow_stat_c;
  return 7;
}
)");

  // Function-scope static (state must survive hot updates).
  tree.Write("sys/counter.kc", R"(
int count_events(int delta) {
  static int total = 0;
  total += delta;
  return total;
}
)");

  // A limit check whose data init a buggy patch wants to change.
  tree.Write("sys/limits.kc", R"(
int limit = 100;
int check_limit(int v) {
  if (v > limit) {
    return 1;
  }
  return 0;
}
)");

  // A prototype that narrows its argument (header-change tests).
  tree.Write("sys/narrow.kc", R"(
#include "kapi.h"
int narrow_channel(char c) {
  return c + 1;
}
)");

  // A pure assembly unit with a unit-local data symbol (the ia32entry.S
  // analogue, §6.3).
  tree.Write("sys/entry.kvs", R"(
.text
.global fast_syscall
fast_syscall:
    push fp
    mov fp, sp
    mov r0, =syscall_count
    load r1, [r0]
    add r1, 1
    store [r0], r1
    mov r0, 1
    mov sp, fp
    pop fp
    ret
.data
syscall_count:
    .word 0
)");

  // Probe entry points used by tests to observe kernel behaviour.
  tree.Write("sys/probes.kc", R"(
#include "kapi.h"
void probe_access(int requested) { record(200, check_access(1000, requested)); }
void probe_ca(int idx) { record(201, ca_get_value(idx)); }
void probe_dst(int idx) { record(202, dst_get_value(idx)); }
void probe_sum(int unused) { record(203, compute_sum(20, 21)); }
void probe_slow(int n) { record(204, slow_op(n)); }
void probe_count(int d) { record(205, count_events(d)); }
void probe_limit(int v) { record(206, check_limit(v)); }
void probe_asm(int unused) { record(207, fast_syscall()); }
void probe_narrow(int v) { record(208, narrow_channel(v)); }
)");
  return tree;
}

kcc::CompileOptions RunBuildOptions() {
  // The running kernel is built monolithically, like the distribution
  // kernels in the paper's evaluation ("None of the original binary
  // kernels ... had -ffunction-sections enabled", §6.3).
  kcc::CompileOptions options;
  options.function_sections = false;
  options.data_sections = false;
  return options;
}

std::unique_ptr<kvm::Machine> BootTree(const SourceTree& tree) {
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, RunBuildOptions());
  EXPECT_TRUE(objects.ok()) << objects.status().ToString();
  if (!objects.ok()) {
    return nullptr;
  }
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  EXPECT_TRUE(machine.ok()) << machine.status().ToString();
  return machine.ok() ? std::move(machine).value() : nullptr;
}

// Runs probe `name(arg)` to completion and returns the value it recorded
// under `key`.
uint32_t Probe(kvm::Machine& machine, const std::string& name, uint32_t arg,
               uint32_t key) {
  size_t before = machine.RecordsWithKey(key).size();
  EXPECT_TRUE(machine.SpawnNamed(name, arg).ok());
  EXPECT_TRUE(machine.RunToCompletion().ok());
  std::vector<uint32_t> records = machine.RecordsWithKey(key);
  EXPECT_EQ(records.size(), before + 1) << name;
  return records.empty() ? 0xdeadbeef : records.back();
}

// Builds an update package for `patch` against `tree`.
ks::Result<CreateResult> Create(const SourceTree& tree,
                                const std::string& patch,
                                const std::string& id = "test-update") {
  CreateOptions options;
  options.compile = RunBuildOptions();
  options.id = id;
  return CreateUpdate(tree, patch, options);
}

// Produces the unified diff between `tree` and a copy with `path` edited by
// replacing `from` with `to` (first occurrence).
std::string EditPatch(const SourceTree& tree, const std::string& path,
                      const std::string& from, const std::string& to) {
  SourceTree post = tree;
  std::string contents = *tree.Read(path);
  size_t at = contents.find(from);
  EXPECT_NE(at, std::string::npos) << from;
  contents.replace(at, from.size(), to);
  post.Write(path, contents);
  return kdiff::MakeUnifiedDiff(tree, post);
}

class KspliceIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    tree_ = TestKernelTree();
    machine_ = BootTree(tree_);
    ASSERT_NE(machine_, nullptr);
    core_ = std::make_unique<KspliceCore>(machine_.get());
  }

  SourceTree tree_;
  std::unique_ptr<kvm::Machine> machine_;
  std::unique_ptr<KspliceCore> core_;
};

// ------------------------------------------------------------------------

TEST_F(KspliceIntegration, CreateProducesWellFormedPackage) {
  std::string patch = EditPatch(tree_, "sys/vuln.kc",
                                "if (requested > 100) {\n    return 1;",
                                "if (requested > 100) {\n    return 0;");
  ks::Result<CreateResult> created = Create(tree_, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  const UpdatePackage& pkg = created->package;
  EXPECT_EQ(pkg.id, "test-update");
  ASSERT_EQ(pkg.targets.size(), 1u);
  EXPECT_EQ(pkg.targets[0].unit, "sys/vuln.kc");
  EXPECT_EQ(pkg.targets[0].symbol, "check_access");
  ASSERT_EQ(pkg.helper_objects.size(), 1u);
  // Helper carries the whole unit, not just the changed function.
  EXPECT_NE(pkg.helper_objects[0].SectionByName(".text.check_access"),
            nullptr);
  ASSERT_EQ(pkg.primary_objects.size(), 1u);
  EXPECT_NE(pkg.primary_objects[0].SectionByName(".text.check_access"),
            nullptr);

  // Serialization round trip.
  std::vector<uint8_t> bytes = pkg.Serialize();
  ks::Result<UpdatePackage> parsed = UpdatePackage::Parse(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Serialize(), bytes);
  EXPECT_EQ(parsed->targets.size(), 1u);
}

TEST_F(KspliceIntegration, ApplyFixesVulnerabilityWithoutReboot) {
  // Exploit works before the update...
  EXPECT_EQ(Probe(*machine_, "probe_access", 150, 200), 1u);

  std::string patch = EditPatch(tree_, "sys/vuln.kc",
                                "if (requested > 100) {\n    return 1;",
                                "if (requested > 100) {\n    return 0;");
  ks::Result<CreateResult> created = Create(tree_, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ks::Result<ApplyReport> applied = core_->Apply(created->package);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  // ...and stops working after, on the same running machine.
  EXPECT_EQ(Probe(*machine_, "probe_access", 150, 200), 0u);
  // Legitimate behaviour unchanged.
  EXPECT_EQ(Probe(*machine_, "probe_access", 50, 200), 0u);
  // The update is registered.
  ASSERT_EQ(core_->applied().size(), 1u);
  EXPECT_EQ(core_->applied()[0].functions.size(), 1u);
}

TEST_F(KspliceIntegration, UndoRestoresOriginalBehaviour) {
  std::string patch = EditPatch(tree_, "sys/vuln.kc",
                                "if (requested > 100) {\n    return 1;",
                                "if (requested > 100) {\n    return 0;");
  ks::Result<CreateResult> created = Create(tree_, patch);
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(core_->Apply(created->package).ok());
  EXPECT_EQ(Probe(*machine_, "probe_access", 150, 200), 0u);

  ks::Result<UndoReport> undone = core_->Undo("test-update");
  ASSERT_TRUE(undone.ok()) << undone.status().ToString();
  EXPECT_EQ(Probe(*machine_, "probe_access", 150, 200), 1u);
  EXPECT_TRUE(core_->applied().empty());
}

TEST_F(KspliceIntegration, DoubleApplyAndBadUndoFail) {
  std::string patch = EditPatch(tree_, "sys/vuln.kc",
                                "if (requested > 100) {\n    return 1;",
                                "if (requested > 100) {\n    return 0;");
  ks::Result<CreateResult> created = Create(tree_, patch);
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(core_->Apply(created->package).ok());
  EXPECT_EQ(core_->Apply(created->package).status().code(),
            ks::ErrorCode::kAlreadyExists);
  EXPECT_EQ(core_->Undo("nonexistent").status().code(),
            ks::ErrorCode::kFailedPrecondition);
}

TEST_F(KspliceIntegration, RunPreAbortsOnWrongSource) {
  // "Original" source that does NOT correspond to the running kernel
  // (paper §4.2: protect against a user providing wrong source).
  SourceTree wrong = tree_;
  std::string contents = *wrong.Read("sys/vuln.kc");
  size_t at = contents.find("uid == 0");
  ASSERT_NE(at, std::string::npos);
  contents.replace(at, 8, "uid == 1");
  wrong.Write("sys/vuln.kc", contents);

  std::string patch = EditPatch(wrong, "sys/vuln.kc",
                                "if (requested > 100) {\n    return 1;",
                                "if (requested > 100) {\n    return 0;");
  ks::Result<CreateResult> created = Create(wrong, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ks::Result<ApplyReport> applied = core_->Apply(created->package);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), ks::ErrorCode::kAborted);
  EXPECT_NE(applied.status().message().find("run-pre"), std::string::npos);
  // Nothing was left loaded.
  EXPECT_EQ(core_->applied().size(), 0u);
  EXPECT_EQ(Probe(*machine_, "probe_access", 150, 200), 1u);
}

TEST_F(KspliceIntegration, AmbiguousLocalSymbolResolvedByRunPre) {
  // Patch dst_ca.kc's function, which references *its* `debug` — a name
  // defined by two units (§4.1, CVE-2005-4639 analogue). Resolution must
  // bind the dst_ca copy: idx*debug with debug==7, not dst's 5.
  EXPECT_EQ(Probe(*machine_, "probe_ca", 10, 201), 17u);  // 10 + 7
  std::string patch = EditPatch(tree_, "drv/dst_ca.kc",
                                "return idx + debug;", "return idx * debug;");
  ks::Result<CreateResult> created = Create(tree_, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ks::Result<ApplyReport> applied = core_->Apply(created->package);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(Probe(*machine_, "probe_ca", 10, 201), 70u);  // 10 * 7: dst_ca's debug
  // dst.kc untouched.
  EXPECT_EQ(Probe(*machine_, "probe_dst", 10, 202), 15u);
}

TEST_F(KspliceIntegration, PatchingInlinedFunctionReplacesCallersToo) {
  // helper_small is inlined into compute_sum (it lacks the `inline`
  // keyword); patching it must replace compute_sum as well (§4.2).
  EXPECT_EQ(Probe(*machine_, "probe_sum", 0, 203), 43u);  // 21 + 22
  std::string patch = EditPatch(tree_, "lib/math.kc", "return x + 1;",
                                "return x + 2;");
  ks::Result<CreateResult> created = Create(tree_, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  std::vector<std::string> target_symbols;
  for (const Target& target : created->package.targets) {
    target_symbols.push_back(target.symbol);
  }
  EXPECT_NE(std::find(target_symbols.begin(), target_symbols.end(),
                      "compute_sum"),
            target_symbols.end())
      << "caller that inlined the patched function must be a target";
  EXPECT_NE(std::find(target_symbols.begin(), target_symbols.end(),
                      "helper_small"),
            target_symbols.end());

  ASSERT_TRUE(core_->Apply(created->package).ok());
  EXPECT_EQ(Probe(*machine_, "probe_sum", 0, 203), 45u);  // 22 + 23
}

TEST_F(KspliceIntegration, HeaderPrototypeChangeUpdatesCallers) {
  // §3.1: widening narrow_channel's parameter from char to int changes the
  // *callers'* object code (the truncation disappears) though their source
  // is untouched.
  EXPECT_EQ(Probe(*machine_, "probe_narrow", 300, 208), 45u);  // (300&0xff)+1
  SourceTree post = tree_;
  post.Write("kapi.h", [&] {
    std::string h = *tree_.Read("kapi.h");
    size_t at = h.find("int narrow_channel(char c);");
    EXPECT_NE(at, std::string::npos);
    h.replace(at, std::string("int narrow_channel(char c);").size(),
              "int narrow_channel(int c);");
    return h;
  }());
  post.Write("sys/narrow.kc", [&] {
    std::string c = *tree_.Read("sys/narrow.kc");
    size_t at = c.find("int narrow_channel(char c)");
    EXPECT_NE(at, std::string::npos);
    c.replace(at, std::string("int narrow_channel(char c)").size(),
              "int narrow_channel(int c)");
    return c;
  }());
  std::string patch = kdiff::MakeUnifiedDiff(tree_, post);

  ks::Result<CreateResult> created = Create(tree_, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  // The probe unit includes kapi.h, so its caller is rebuilt and changed.
  bool probe_unit_rebuilt = false;
  for (const std::string& unit : created->prepost.rebuilt_units) {
    if (unit == "sys/probes.kc") {
      probe_unit_rebuilt = true;
    }
  }
  EXPECT_TRUE(probe_unit_rebuilt);
  bool caller_target = false;
  for (const Target& target : created->package.targets) {
    if (target.symbol == "probe_narrow") {
      caller_target = true;
    }
  }
  EXPECT_TRUE(caller_target)
      << "caller's object code changed via the header; it must be spliced";

  ASSERT_TRUE(core_->Apply(created->package).ok());
  EXPECT_EQ(Probe(*machine_, "probe_narrow", 300, 208), 301u);
}

TEST_F(KspliceIntegration, StaticLocalStateSurvivesHotUpdate) {
  // check_access-style patches never reset state: the replacement code
  // must bind the *existing* static storage (total.1), mid-count.
  EXPECT_EQ(Probe(*machine_, "probe_count", 5, 205), 5u);
  EXPECT_EQ(Probe(*machine_, "probe_count", 5, 205), 10u);

  std::string patch = EditPatch(tree_, "sys/counter.kc",
                                "total += delta;", "total += delta * 2;");
  ks::Result<CreateResult> created = Create(tree_, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_TRUE(core_->Apply(created->package).ok());

  // 10 (preserved) + 5*2.
  EXPECT_EQ(Probe(*machine_, "probe_count", 5, 205), 20u);
}

TEST_F(KspliceIntegration, DataInitChangeIsRejectedAtCreate) {
  std::string patch =
      EditPatch(tree_, "sys/limits.kc", "int limit = 100;",
                "int limit = 50;");
  ks::Result<CreateResult> created = Create(tree_, patch);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), ks::ErrorCode::kFailedPrecondition);
  EXPECT_NE(created.status().message().find("data"), std::string::npos);
}

TEST_F(KspliceIntegration, CustomApplyHookChangesDataAtomically) {
  // The Table-1 pattern: instead of changing the initializer, the revised
  // patch adds custom code run while the machine is stopped (§5.3).
  EXPECT_EQ(Probe(*machine_, "probe_limit", 80, 206), 0u);  // 80 <= 100
  SourceTree post = tree_;
  std::string contents = *tree_.Read("sys/limits.kc");
  size_t at = contents.find("if (v > limit) {");
  ASSERT_NE(at, std::string::npos);
  contents.replace(at, std::string("if (v > limit) {").size(),
                   "if (v >= limit) {");
  contents +=
      "void fix_limit() {\n"
      "  limit = 50;\n"
      "}\n"
      "ksplice_apply(fix_limit);\n";
  post.Write("sys/limits.kc", contents);
  std::string patch = kdiff::MakeUnifiedDiff(tree_, post);

  ks::Result<CreateResult> created = Create(tree_, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ks::Result<ApplyReport> applied = core_->Apply(created->package);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  ASSERT_EQ(core_->applied().size(), 1u);
  EXPECT_EQ(core_->applied()[0].hooks.apply.size(), 1u);

  EXPECT_EQ(Probe(*machine_, "probe_limit", 80, 206), 1u);  // 80 >= 50
  EXPECT_EQ(Probe(*machine_, "probe_limit", 30, 206), 0u);
}

TEST_F(KspliceIntegration, NonQuiescentFunctionAbortsThenSucceeds) {
  // A thread is asleep inside slow_op; the update must abort (§5.2), and
  // succeed once the thread has left.
  ASSERT_TRUE(machine_->SpawnNamed("probe_slow", 500'000).ok());
  ASSERT_TRUE(machine_->Run(10'000).ok());  // let it reach the sleep

  std::string patch =
      EditPatch(tree_, "sys/slow.kc", "return 7;", "return 8;");
  ks::Result<CreateResult> created = Create(tree_, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  ApplyOptions options;
  options.rendezvous.max_attempts = 3;
  options.rendezvous.backoff_base_ticks = 1'000;
  options.rendezvous.backoff_max_ticks = 1'000;
  options.rendezvous.backoff_jitter = 0.0;
  ks::Result<ApplyReport> applied = core_->Apply(created->package, options);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), ks::ErrorCode::kResourceExhausted);
  EXPECT_NE(applied.status().message().find("in use"), std::string::npos);
  // The exhaustion report names the blocking thread and its pc.
  EXPECT_NE(applied.status().message().find("thread"), std::string::npos);
  EXPECT_NE(applied.status().message().find("pc 0x"), std::string::npos);

  // Let the sleeper finish; the old code records 7.
  ASSERT_TRUE(machine_->RunToCompletion().ok());
  EXPECT_EQ(machine_->RecordsWithKey(204).back(), 7u);

  ks::Result<ApplyReport> retried = core_->Apply(created->package, options);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(Probe(*machine_, "probe_slow", 10, 204), 8u);
}

TEST_F(KspliceIntegration, StackedUpdatesAndOutOfOrderUndo) {
  // Update 1.
  std::string patch1 = EditPatch(tree_, "sys/vuln.kc",
                                 "if (requested > 100) {\n    return 1;",
                                 "if (requested > 100) {\n    return 0;");
  ks::Result<CreateResult> created1 = Create(tree_, patch1, "update-1");
  ASSERT_TRUE(created1.ok());
  ASSERT_TRUE(core_->Apply(created1->package).ok());
  EXPECT_EQ(Probe(*machine_, "probe_access", 150, 200), 0u);

  // Update 2 is created from the previously-patched source (§5.4).
  ks::Result<SourceTree> patched_tree = kdiff::ApplyUnifiedDiff(tree_, patch1);
  ASSERT_TRUE(patched_tree.ok());
  std::string patch2 =
      EditPatch(*patched_tree, "sys/vuln.kc", "if (uid == 0) {\n    return 1;",
                "if (uid == 0) {\n    return 2;");
  CreateOptions create_options;
  create_options.compile = RunBuildOptions();
  create_options.id = "update-2";
  ks::Result<CreateResult> created2 =
      CreateUpdate(*patched_tree, patch2, create_options);
  ASSERT_TRUE(created2.ok()) << created2.status().ToString();
  ks::Result<ApplyReport> applied2 = core_->Apply(created2->package);
  ASSERT_TRUE(applied2.ok()) << applied2.status().ToString();

  // Both changes visible: uid-0 path now returns 2, big-request path 0.
  EXPECT_EQ(Probe(*machine_, "probe_access", 150, 200), 0u);
  // probe_access uses uid 1000; exercise uid 0 via a direct thread: not
  // available — check the second change indirectly by undo semantics.

  // Out-of-order undo (§5.4): update-1 leaves the middle of the stack.
  // update-2 matched update-1's replacement code, so its stacked record is
  // re-pointed at what update-1 had replaced (chain rewriting) and its
  // trampoline stays live.
  ks::Result<UndoReport> undone1 = core_->Undo("update-1");
  ASSERT_TRUE(undone1.ok()) << undone1.status().ToString();
  EXPECT_TRUE(undone1->out_of_order);
  EXPECT_EQ(undone1->chains_rewritten, 1u);
  // update-2's trampoline still owns the function: it was built from the
  // patch1-patched source, so both changes remain visible.
  ASSERT_EQ(core_->applied().size(), 1u);
  EXPECT_EQ(Probe(*machine_, "probe_access", 150, 200), 0u);
  // Undoing update-2 now restores the *original* bytes (the rewritten
  // chain carries update-1's saved bytes).
  ks::Result<UndoReport> undone2 = core_->Undo("update-2");
  ASSERT_TRUE(undone2.ok()) << undone2.status().ToString();
  EXPECT_FALSE(undone2->out_of_order);
  EXPECT_EQ(Probe(*machine_, "probe_access", 150, 200), 1u);  // original
}

TEST_F(KspliceIntegration, AssemblyUnitPatch) {
  // §6.3's ia32entry.S case: a patch to a pure assembly file goes through
  // the same machinery, including a scoped local data symbol.
  EXPECT_EQ(Probe(*machine_, "probe_asm", 0, 207), 1u);
  std::string patch =
      EditPatch(tree_, "sys/entry.kvs", "mov r0, 1", "mov r0, 2");
  ks::Result<CreateResult> created = Create(tree_, patch);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_EQ(created->package.targets.size(), 1u);
  EXPECT_EQ(created->package.targets[0].symbol, "fast_syscall");
  ks::Result<ApplyReport> applied = core_->Apply(created->package);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(Probe(*machine_, "probe_asm", 0, 207), 2u);
  // The local counter kept counting in place: two calls so far.
  // (fast_syscall increments syscall_count; value not directly probed, but
  // a run-pre resolution failure would have failed the apply.)
}

TEST_F(KspliceIntegration, HelperUnloadReclaimsMemory) {
  std::string patch = EditPatch(tree_, "sys/vuln.kc",
                                "if (requested > 100) {\n    return 1;",
                                "if (requested > 100) {\n    return 0;");
  ks::Result<CreateResult> created = Create(tree_, patch);
  ASSERT_TRUE(created.ok());

  ApplyOptions options;
  options.keep_helper = true;
  uint32_t before = machine_->ModuleArenaBytesInUse();
  ASSERT_TRUE(core_->Apply(created->package, options).ok());
  uint32_t with_helper = machine_->ModuleArenaBytesInUse();
  EXPECT_GT(with_helper, before);

  ASSERT_TRUE(core_->UnloadHelper("test-update").ok());
  uint32_t without_helper = machine_->ModuleArenaBytesInUse();
  EXPECT_LT(without_helper, with_helper);
  EXPECT_GT(without_helper, before);  // primary stays
  // Double unload fails.
  EXPECT_FALSE(core_->UnloadHelper("test-update").ok());
}

TEST_F(KspliceIntegration, NoOpPatchIsRejected) {
  // A comment-only change produces no object code difference.
  std::string patch = EditPatch(tree_, "sys/vuln.kc", "int check_access",
                                "/* audited */ int check_access");
  ks::Result<CreateResult> created = Create(tree_, patch);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), ks::ErrorCode::kFailedPrecondition);
}

TEST_F(KspliceIntegration, UpdateWhileWorkloadRuns) {
  // Hot update with a stress workload in flight: no faults, behaviour
  // flips, workload completes (§6.2's correctness criterion).
  tree_ = TestKernelTree();  // (machine_ already booted from it)
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(machine_->SpawnNamed("probe_access", 150).ok());
    ASSERT_TRUE(machine_->SpawnNamed("probe_sum", 0).ok());
    ASSERT_TRUE(machine_->SpawnNamed("probe_dst", 1).ok());
  }
  ASSERT_TRUE(machine_->Run(3'000).ok());  // some probes mid-flight

  std::string patch = EditPatch(tree_, "sys/vuln.kc",
                                "if (requested > 100) {\n    return 1;",
                                "if (requested > 100) {\n    return 0;");
  ks::Result<CreateResult> created = Create(tree_, patch);
  ASSERT_TRUE(created.ok());
  ks::Result<ApplyReport> applied = core_->Apply(created->package);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  ASSERT_TRUE(machine_->RunToCompletion().ok());
  EXPECT_TRUE(machine_->Faults().empty());
  // After the dust settles, fresh probes see the new behaviour.
  EXPECT_EQ(Probe(*machine_, "probe_access", 150, 200), 0u);
}

}  // namespace
}  // namespace ksplice
