// Transaction-engine tests: batched apply with a single shared
// stop_machine rendezvous, whole-batch rollback on any stage failure,
// pre_apply side-effect compensation, and out-of-order undo of mid-stack
// updates (chain rewriting and the import dependency check).

#include <gtest/gtest.h>

#include "base/metrics.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "kvm/machine.h"

namespace ksplice {
namespace {

using kdiff::SourceTree;

kcc::CompileOptions Monolithic() {
  kcc::CompileOptions options;
  options.function_sections = false;
  options.data_sections = false;
  return options;
}

// Three independently patchable units so a batch of three packages has
// disjoint targets.
SourceTree TriKernel() {
  SourceTree tree;
  // Each op is padded past kcc's inline threshold so patches stay
  // localized to the op itself (no caller re-splicing).
  tree.Write("alpha.kc", R"(
int alpha_state = 100;
int alpha_op(int x) {
  int a = x + 1; int b = a + 2; int c = b + 3; int d = c + 4;
  int e = d + 5; int f = e + 6; int g = f + 7; int h = g + 8;
  return a + b + c + d + e + f + g + h + alpha_state;
}
void alpha_probe(int x) {
  record(11, alpha_op(x));
}
)");
  tree.Write("beta.kc", R"(
int beta_state = 200;
int beta_op(int x) {
  int a = x * 2; int b = a + 5; int c = b * 2; int d = c + 7;
  int e = d + 3; int f = e * 2; int g = f + 9; int h = g + 4;
  return a + b + c + d + e + f + g + h + beta_state;
}
void beta_probe(int x) {
  record(22, beta_op(x));
}
)");
  tree.Write("gamma.kc", R"(
int gamma_state = 300;
int gamma_op(int x) {
  int a = x + 9; int b = a * 3; int c = b - 2; int d = c + 1;
  int e = d + 8; int f = e - 3; int g = f * 2; int h = g + 6;
  return a + b + c + d + e + f + g + h + gamma_state;
}
void gamma_probe(int x) {
  record(33, gamma_op(x));
}
)");
  return tree;
}

std::unique_ptr<kvm::Machine> Boot(const SourceTree& tree) {
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, Monolithic());
  EXPECT_TRUE(objects.ok());
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  EXPECT_TRUE(machine.ok());
  return machine.ok() ? std::move(machine).value() : nullptr;
}

std::string EditTree(const SourceTree& tree, const std::string& path,
                     const std::string& from, const std::string& to,
                     SourceTree* post_out = nullptr) {
  SourceTree post = tree;
  std::string contents = *tree.Read(path);
  size_t at = contents.find(from);
  EXPECT_NE(at, std::string::npos);
  contents.replace(at, from.size(), to);
  post.Write(path, contents);
  if (post_out != nullptr) {
    *post_out = post;
  }
  return kdiff::MakeUnifiedDiff(tree, post);
}

ks::Result<CreateResult> Create(const SourceTree& tree,
                                const std::string& patch,
                                const std::string& id) {
  CreateOptions options;
  options.compile = Monolithic();
  options.id = id;
  return CreateUpdate(tree, patch, options);
}

// Runs the named probe to completion and returns the last value it
// recorded under `key`.
uint32_t Probe(kvm::Machine& machine, const std::string& probe, uint32_t arg,
               uint32_t key) {
  EXPECT_TRUE(machine.SpawnNamed(probe, arg).ok());
  EXPECT_TRUE(machine.RunToCompletion().ok());
  std::vector<uint32_t> values = machine.RecordsWithKey(key);
  EXPECT_FALSE(values.empty());
  return values.empty() ? 0 : values.back();
}

// --------------------------------------------------------------- batching

TEST(BatchApplyTest, ThreePackagesOneRendezvous) {
  SourceTree tree = TriKernel();
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);

  uint32_t before_alpha = Probe(*machine, "alpha_probe", 1, 11);
  uint32_t before_beta = Probe(*machine, "beta_probe", 1, 22);
  uint32_t before_gamma = Probe(*machine, "gamma_probe", 1, 33);

  std::vector<UpdatePackage> packages;
  ks::Result<CreateResult> u1 = Create(
      tree, EditTree(tree, "alpha.kc", "int a = x + 1;", "int a = x + 10;"),
      "batch-alpha");
  ASSERT_TRUE(u1.ok()) << u1.status().ToString();
  packages.push_back(u1->package);
  ks::Result<CreateResult> u2 = Create(
      tree, EditTree(tree, "beta.kc", "int b = a + 5;", "int b = a + 50;"),
      "batch-beta");
  ASSERT_TRUE(u2.ok()) << u2.status().ToString();
  packages.push_back(u2->package);
  ks::Result<CreateResult> u3 = Create(
      tree, EditTree(tree, "gamma.kc", "int c = b - 2;", "int c = b - 20;"),
      "batch-gamma");
  ASSERT_TRUE(u3.ok()) << u3.status().ToString();
  packages.push_back(u3->package);

  // The whole point of ApplyAll: N packages, exactly ONE stop_machine
  // rendezvous (one combined quiescence check and pause).
  ks::Counter& stops = ks::Metrics().GetCounter("kvm.stop_machine_calls");
  uint64_t stops_before = stops.value();
  KspliceCore core(machine.get());
  ks::Result<BatchApplyReport> batch = core.ApplyAll(packages);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(stops.value() - stops_before, 1u);

  EXPECT_EQ(batch->packages, 3u);
  EXPECT_EQ(batch->updates.size(), 3u);
  EXPECT_EQ(batch->functions_spliced, 3u);
  EXPECT_EQ(batch->attempts, 1);
  EXPECT_EQ(core.applied().size(), 3u);
  // Every member report carries the shared rendezvous numbers plus the six
  // stage timings.
  for (const ApplyReport& report : batch->updates) {
    EXPECT_EQ(report.attempts, batch->attempts);
    EXPECT_EQ(report.pause_ns, batch->pause_ns);
    ASSERT_EQ(report.stages.size(), 6u);
    EXPECT_EQ(report.stages[0].stage, "prepare");
    EXPECT_EQ(report.stages[4].stage, "rendezvous");
  }

  // All three functions redirected (executed in kvm, not just bookkept).
  EXPECT_NE(Probe(*machine, "alpha_probe", 1, 11), before_alpha);
  EXPECT_NE(Probe(*machine, "beta_probe", 1, 22), before_beta);
  EXPECT_NE(Probe(*machine, "gamma_probe", 1, 33), before_gamma);

  // Status reflects the stack.
  StatusReport status = core.Status();
  ASSERT_EQ(status.updates.size(), 3u);
  EXPECT_EQ(status.updates[0].id, "batch-alpha");
  EXPECT_EQ(status.updates[0].functions, 1u);
  EXPECT_FALSE(status.updates[0].helper_loaded);
  EXPECT_GT(status.updates[0].primary_bytes, 0u);
  EXPECT_GT(status.arena_bytes_in_use, 0u);
}

TEST(BatchApplyTest, OverlappingTargetsRejectedUpFront) {
  SourceTree tree = TriKernel();
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);

  std::vector<UpdatePackage> packages;
  ks::Result<CreateResult> u1 = Create(
      tree, EditTree(tree, "alpha.kc", "int a = x + 1;", "int a = x + 10;"),
      "overlap-1");
  ASSERT_TRUE(u1.ok());
  packages.push_back(u1->package);
  ks::Result<CreateResult> u2 = Create(
      tree, EditTree(tree, "alpha.kc", "int b = a + 2;", "int b = a + 20;"),
      "overlap-2");
  ASSERT_TRUE(u2.ok());
  packages.push_back(u2->package);

  uint32_t arena_before = machine->ModuleArenaBytesInUse();
  KspliceCore core(machine.get());
  ks::Result<BatchApplyReport> batch = core.ApplyAll(packages);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), ks::ErrorCode::kInvalidArgument);
  EXPECT_NE(batch.status().message().find("separate transactions"),
            std::string::npos);
  EXPECT_TRUE(core.applied().empty());
  EXPECT_EQ(machine->ModuleArenaBytesInUse(), arena_before);
}

TEST(BatchApplyTest, QuiescenceFailureRollsBackWholeBatch) {
  // One of the three patched functions hosts a sleeping thread; with a
  // tiny retry budget the shared rendezvous never succeeds and the WHOLE
  // batch must roll back — including the two packages whose functions
  // were idle.
  SourceTree tree = TriKernel();
  tree.Write("sleeper.kc", R"(
int sleepy_a; int sleepy_b; int sleepy_c; int sleepy_d;
int sleepy_op(int n) {
  sleepy_a += 1; sleepy_b += 2; sleepy_c += 3; sleepy_d += 4;
  sleepy_a += sleepy_b; sleepy_c += sleepy_d;
  sleep(n);
  sleepy_b += sleepy_c;
  return 7;
}
void sleeper(int n) {
  record(44, sleepy_op(n));
}
)");
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  ASSERT_TRUE(machine->SpawnNamed("sleeper", 500'000).ok());
  ASSERT_TRUE(machine->Run(10'000).ok());  // let it reach the sleep

  std::vector<UpdatePackage> packages;
  ks::Result<CreateResult> u1 = Create(
      tree, EditTree(tree, "alpha.kc", "int a = x + 1;", "int a = x + 10;"),
      "qf-alpha");
  ASSERT_TRUE(u1.ok());
  packages.push_back(u1->package);
  ks::Result<CreateResult> u2 = Create(
      tree, EditTree(tree, "sleeper.kc", "return 7;", "return 8;"),
      "qf-sleeper");
  ASSERT_TRUE(u2.ok()) << u2.status().ToString();
  packages.push_back(u2->package);
  ks::Result<CreateResult> u3 = Create(
      tree, EditTree(tree, "gamma.kc", "int c = b - 2;", "int c = b - 20;"),
      "qf-gamma");
  ASSERT_TRUE(u3.ok());
  packages.push_back(u3->package);

  uint32_t arena_before = machine->ModuleArenaBytesInUse();
  size_t kallsyms_before = machine->Kallsyms().size();

  KspliceCore core(machine.get());
  ApplyOptions options;
  options.rendezvous.max_attempts = 2;
  options.rendezvous.backoff_base_ticks = 1'000;
  options.rendezvous.backoff_max_ticks = 1'000;
  options.rendezvous.backoff_jitter = 0.0;
  ks::Result<BatchApplyReport> batch = core.ApplyAll(packages, options);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), ks::ErrorCode::kResourceExhausted);
  EXPECT_NE(batch.status().message().find("in use"), std::string::npos);

  // Nothing applied, nothing leaked: no update registered, every module
  // unloaded, kallsyms back to the boot set.
  EXPECT_TRUE(core.applied().empty());
  EXPECT_EQ(machine->ModuleArenaBytesInUse(), arena_before);
  EXPECT_EQ(machine->Kallsyms().size(), kallsyms_before);

  // The machine still runs the original code everywhere.
  ASSERT_TRUE(machine->RunToCompletion().ok());
  uint32_t alpha_orig;
  {
    std::unique_ptr<kvm::Machine> fresh = Boot(tree);
    ASSERT_NE(fresh, nullptr);
    alpha_orig = Probe(*fresh, "alpha_probe", 1, 11);
  }
  EXPECT_EQ(Probe(*machine, "alpha_probe", 1, 11), alpha_orig);
}

// --------------------------------------------------------- stage rollback

TEST(TxnRollbackTest, PreApplyFailureCompensatesSideEffects) {
  // The patch's first pre_apply hook mutates live kernel state; the second
  // faults. The transaction must roll back the completed stage work by
  // running the package's post_reverse hooks (the stage that undoes
  // pre_apply in a reversed update), leaving the machine byte-identical.
  SourceTree tree = TriKernel();
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);

  SourceTree post = tree;
  std::string contents = *tree.Read("alpha.kc");
  size_t at = contents.find("int a = x + 1;");
  contents.replace(at, std::string("int a = x + 1;").size(),
                   "int a = x + 10;");
  contents +=
      "void setup_hook() {\n"
      "  alpha_state = alpha_state + 9000;\n"
      "}\n"
      "void crash_hook() {\n"
      "  int *p = 0;\n"
      "  *p = 1;\n"
      "}\n"
      "void teardown_hook() {\n"
      "  alpha_state = alpha_state - 9000;\n"
      "}\n"
      "ksplice_pre_apply(setup_hook);\n"
      "ksplice_pre_apply(crash_hook);\n"
      "ksplice_post_reverse(teardown_hook);\n";
  post.Write("alpha.kc", contents);

  CreateOptions options;
  options.compile = Monolithic();
  options.id = "hook-rollback";
  ks::Result<CreateResult> created =
      CreateUpdate(tree, kdiff::MakeUnifiedDiff(tree, post), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  uint32_t state_addr = *machine->GlobalSymbol("alpha_state");
  uint32_t state_before = *machine->ReadWord(state_addr);
  uint32_t arena_before = machine->ModuleArenaBytesInUse();
  size_t kallsyms_before = machine->Kallsyms().size();

  KspliceCore core(machine.get());
  ks::Result<ApplyReport> applied = core.Apply(created->package);
  ASSERT_FALSE(applied.ok());
  EXPECT_NE(applied.status().message().find("hook"), std::string::npos);
  EXPECT_TRUE(core.applied().empty());

  // setup_hook's mutation was compensated by teardown_hook; modules gone.
  EXPECT_EQ(*machine->ReadWord(state_addr), state_before);
  EXPECT_EQ(machine->ModuleArenaBytesInUse(), arena_before);
  EXPECT_EQ(machine->Kallsyms().size(), kallsyms_before);
}

// ------------------------------------------------------ out-of-order undo

TEST(OutOfOrderUndoTest, MidStackUndoKeepsNewerUpdatesLive) {
  SourceTree tree = TriKernel();
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);

  uint32_t before_alpha = Probe(*machine, "alpha_probe", 1, 11);
  uint32_t before_beta = Probe(*machine, "beta_probe", 1, 22);
  uint32_t before_gamma = Probe(*machine, "gamma_probe", 1, 33);

  KspliceCore core(machine.get());
  ks::Result<CreateResult> u1 = Create(
      tree, EditTree(tree, "alpha.kc", "int a = x + 1;", "int a = x + 10;"),
      "mid-1");
  ASSERT_TRUE(u1.ok());
  ASSERT_TRUE(core.Apply(u1->package).ok());
  ks::Result<CreateResult> u2 = Create(
      tree, EditTree(tree, "beta.kc", "int b = a + 5;", "int b = a + 50;"),
      "mid-2");
  ASSERT_TRUE(u2.ok());
  ASSERT_TRUE(core.Apply(u2->package).ok());
  ks::Result<CreateResult> u3 = Create(
      tree, EditTree(tree, "gamma.kc", "int c = b - 2;", "int c = b - 20;"),
      "mid-3");
  ASSERT_TRUE(u3.ok());
  ASSERT_TRUE(core.Apply(u3->package).ok());

  uint32_t patched_alpha = Probe(*machine, "alpha_probe", 1, 11);
  uint32_t patched_gamma = Probe(*machine, "gamma_probe", 1, 33);
  ASSERT_NE(patched_alpha, before_alpha);

  // Remove the middle update. The other two patch different functions, so
  // no chains need rewriting — but the registry is no longer LIFO.
  ks::Result<UndoReport> undone = core.Undo("mid-2");
  ASSERT_TRUE(undone.ok()) << undone.status().ToString();
  EXPECT_TRUE(undone->out_of_order);
  EXPECT_EQ(undone->chains_rewritten, 0u);
  EXPECT_EQ(undone->functions_restored, 1u);
  ASSERT_EQ(core.applied().size(), 2u);
  EXPECT_EQ(core.applied()[0].id, "mid-1");
  EXPECT_EQ(core.applied()[1].id, "mid-3");

  // beta is back to original; alpha and gamma still redirected — and still
  // execute correctly in the vm.
  EXPECT_EQ(Probe(*machine, "beta_probe", 1, 22), before_beta);
  EXPECT_EQ(Probe(*machine, "alpha_probe", 1, 11), patched_alpha);
  EXPECT_EQ(Probe(*machine, "gamma_probe", 1, 33), patched_gamma);

  // Remaining updates undo cleanly in any order.
  ASSERT_TRUE(core.Undo("mid-1").ok());
  ASSERT_TRUE(core.Undo("mid-3").ok());
  EXPECT_EQ(Probe(*machine, "alpha_probe", 1, 11), before_alpha);
  EXPECT_EQ(Probe(*machine, "gamma_probe", 1, 33), before_gamma);
  EXPECT_TRUE(core.applied().empty());
}

TEST(OutOfOrderUndoTest, HelperUnloadThenMidStackUndo) {
  SourceTree tree = TriKernel();
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  uint32_t before_alpha = Probe(*machine, "alpha_probe", 1, 11);

  KspliceCore core(machine.get());
  ks::Result<CreateResult> u1 = Create(
      tree, EditTree(tree, "alpha.kc", "int a = x + 1;", "int a = x + 10;"),
      "hu-1");
  ASSERT_TRUE(u1.ok());
  ApplyOptions keep;
  keep.keep_helper = true;
  ASSERT_TRUE(core.Apply(u1->package, keep).ok());
  ks::Result<CreateResult> u2 = Create(
      tree, EditTree(tree, "beta.kc", "int b = a + 5;", "int b = a + 50;"),
      "hu-2");
  ASSERT_TRUE(u2.ok());
  ASSERT_TRUE(core.Apply(u2->package).ok());

  StatusReport status = core.Status();
  ASSERT_EQ(status.updates.size(), 2u);
  EXPECT_TRUE(status.updates[0].helper_loaded);
  ASSERT_TRUE(core.UnloadHelper("hu-1").ok());
  EXPECT_FALSE(core.Status().updates[0].helper_loaded);

  // Undo the bottom of the stack after its helper is gone.
  ks::Result<UndoReport> undone = core.Undo("hu-1");
  ASSERT_TRUE(undone.ok()) << undone.status().ToString();
  EXPECT_TRUE(undone->out_of_order);
  EXPECT_EQ(undone->helper_bytes_reclaimed, 0u);
  EXPECT_GT(undone->primary_bytes_reclaimed, 0u);
  EXPECT_EQ(Probe(*machine, "alpha_probe", 1, 11), before_alpha);
  ASSERT_EQ(core.applied().size(), 1u);
  EXPECT_EQ(core.applied()[0].id, "hu-2");
}

TEST(OutOfOrderUndoTest, RefusedWhileNewerUpdateImportsItsModule) {
  // Update 1 introduces a new function; update 2 (built on the patched
  // source) calls it, so its primary links against update 1's module.
  // Removing update 1 from under it must be refused.
  SourceTree tree = TriKernel();
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  uint32_t before_alpha = Probe(*machine, "alpha_probe", 1, 11);
  uint32_t before_beta = Probe(*machine, "beta_probe", 1, 22);

  const std::string alpha_ret =
      "return a + b + c + d + e + f + g + h + alpha_state;";
  SourceTree post1 = tree;
  std::string alpha = *tree.Read("alpha.kc");
  size_t at = alpha.find(alpha_ret);
  ASSERT_NE(at, std::string::npos);
  alpha.replace(at, alpha_ret.size(),
                "return audit(a + b + c + d + e + f + g + h + alpha_state);");
  alpha +=
      "int audit(int v) {\n"
      "  record(99, v);\n"
      "  return v + 1;\n"
      "}\n";
  post1.Write("alpha.kc", alpha);
  CreateOptions options1;
  options1.compile = Monolithic();
  options1.id = "dep-base";
  ks::Result<CreateResult> u1 =
      CreateUpdate(tree, kdiff::MakeUnifiedDiff(tree, post1), options1);
  ASSERT_TRUE(u1.ok()) << u1.status().ToString();

  KspliceCore core(machine.get());
  ASSERT_TRUE(core.Apply(u1->package).ok());

  // Update 2: beta_op starts calling audit() — an import that resolves
  // into dep-base's primary module.
  const std::string beta_ret =
      "return a + b + c + d + e + f + g + h + beta_state;";
  SourceTree post2 = post1;
  std::string beta = "int audit(int v);\n" + *post1.Read("beta.kc");
  at = beta.find(beta_ret);
  ASSERT_NE(at, std::string::npos);
  beta.replace(at, beta_ret.size(),
               "return audit(a + b + c + d + e + f + g + h + beta_state);");
  post2.Write("beta.kc", beta);
  CreateOptions options2;
  options2.compile = Monolithic();
  options2.id = "dep-user";
  ks::Result<CreateResult> u2 =
      CreateUpdate(post1, kdiff::MakeUnifiedDiff(post1, post2), options2);
  ASSERT_TRUE(u2.ok()) << u2.status().ToString();
  ASSERT_TRUE(core.Apply(u2->package).ok());

  // dep-user's beta_op calls into dep-base's module: removal refused.
  ks::Result<UndoReport> refused = core.Undo("dep-base");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), ks::ErrorCode::kFailedPrecondition);
  EXPECT_NE(refused.status().message().find("depends on"),
            std::string::npos);
  ASSERT_EQ(core.applied().size(), 2u);

  // Both updates still live and executable.
  EXPECT_NE(Probe(*machine, "beta_probe", 1, 22), before_beta);
  EXPECT_FALSE(machine->RecordsWithKey(99).empty());

  // LIFO order still works.
  ASSERT_TRUE(core.Undo("dep-user").ok());
  ASSERT_TRUE(core.Undo("dep-base").ok());
  EXPECT_EQ(Probe(*machine, "alpha_probe", 1, 11), before_alpha);
  EXPECT_EQ(Probe(*machine, "beta_probe", 1, 22), before_beta);
}

}  // namespace
}  // namespace ksplice
