// End-to-end tests of the simulated kernel: compile KC source with kcc,
// boot it, run threads, and observe behaviour. These exercise the entire
// substrate stack (kcc -> kas -> kelf link -> kvm execution).

#include <gtest/gtest.h>

#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "kvm/machine.h"

namespace kvm {
namespace {

using kdiff::SourceTree;

std::unique_ptr<Machine> BootSource(const std::string& source,
                                    bool function_sections = false) {
  SourceTree tree;
  tree.Write("kernel.kc", source);
  kcc::CompileOptions options;
  options.function_sections = function_sections;
  options.data_sections = function_sections;
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, options);
  EXPECT_TRUE(objects.ok()) << objects.status().ToString();
  if (!objects.ok()) {
    return nullptr;
  }
  MachineConfig config;
  ks::Result<std::unique_ptr<Machine>> machine =
      Machine::Boot(std::move(objects).value(), config);
  EXPECT_TRUE(machine.ok()) << machine.status().ToString();
  return machine.ok() ? std::move(machine).value() : nullptr;
}

// Runs `source`'s global function `entry(arg)` in a fresh machine and
// returns the values recorded with key 100.
std::vector<uint32_t> RunAndRecord(const std::string& source,
                                   const std::string& entry,
                                   uint32_t arg = 0) {
  std::unique_ptr<Machine> machine = BootSource(source);
  if (machine == nullptr) {
    return {};
  }
  ks::Result<int> tid = machine->SpawnNamed(entry, arg);
  EXPECT_TRUE(tid.ok()) << tid.status().ToString();
  ks::Status run = machine->RunToCompletion();
  EXPECT_TRUE(run.ok()) << run.ToString();
  for (const std::string& fault : machine->Faults()) {
    ADD_FAILURE() << "unexpected fault: " << fault;
  }
  return machine->RecordsWithKey(100);
}

TEST(MachineTest, ArithmeticAndRecord) {
  std::vector<uint32_t> vals = RunAndRecord(R"(
void main(int arg) {
  record(100, 2 + arg * 10);
}
)",
                                            "main", 4);
  EXPECT_EQ(vals, std::vector<uint32_t>{42});
}

TEST(MachineTest, ControlFlowLoops) {
  std::vector<uint32_t> vals = RunAndRecord(R"(
void main(int n) {
  int total = 0;
  int i;
  for (i = 1; i <= n; i++) {
    if (i % 3 == 0) { continue; }
    total += i;
  }
  while (total > 100) {
    total -= 100;
  }
  record(100, total);
}
)",
                                            "main", 10);
  // 1+2+4+5+7+8+10 = 37.
  EXPECT_EQ(vals, std::vector<uint32_t>{37});
}

TEST(MachineTest, GlobalsAndPointers) {
  std::vector<uint32_t> vals = RunAndRecord(R"(
int counter = 5;
int *alias;
void main(int unused) {
  alias = &counter;
  *alias = *alias + 37;
  record(100, counter);
}
)",
                                            "main");
  EXPECT_EQ(vals, std::vector<uint32_t>{42});
}

TEST(MachineTest, ArraysAndCharData) {
  std::vector<uint32_t> vals = RunAndRecord(R"(
char buf[8];
int table[4] = {10, 20, 30, 40};
void main(int unused) {
  int i;
  for (i = 0; i < 8; i++) {
    buf[i] = (char)(i * 2);
  }
  record(100, buf[3] + table[2]);
}
)",
                                            "main");
  EXPECT_EQ(vals, std::vector<uint32_t>{36});
}

TEST(MachineTest, CharTruncationSemantics) {
  std::vector<uint32_t> vals = RunAndRecord(R"(
char c;
void main(int unused) {
  c = (char)300;     /* 300 & 0xff == 44 */
  record(100, c);
}
)",
                                            "main");
  EXPECT_EQ(vals, std::vector<uint32_t>{44});
}

TEST(MachineTest, StructsAndLinkedList) {
  std::vector<uint32_t> vals = RunAndRecord(R"(
struct node {
  int value;
  struct node *next;
};
struct node a;
struct node b;
struct node c;
void main(int unused) {
  a.value = 1; a.next = &b;
  b.value = 2; b.next = &c;
  c.value = 39; c.next = 0;
  int total = 0;
  struct node *cur = &a;
  while (cur != 0) {
    total += cur->value;
    cur = cur->next;
  }
  record(100, total);
}
)",
                                            "main");
  EXPECT_EQ(vals, std::vector<uint32_t>{42});
}

TEST(MachineTest, FunctionCallsAndRecursion) {
  std::vector<uint32_t> vals = RunAndRecord(R"(
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
void main(int n) {
  record(100, fib(n));
}
)",
                                            "main", 10);
  EXPECT_EQ(vals, std::vector<uint32_t>{55});
}

TEST(MachineTest, StaticLocalsPersistAcrossCalls) {
  std::vector<uint32_t> vals = RunAndRecord(R"(
int bump() {
  static int count = 40;
  count++;
  return count;
}
void main(int unused) {
  bump();
  record(100, bump());
}
)",
                                            "main");
  EXPECT_EQ(vals, std::vector<uint32_t>{42});
}

TEST(MachineTest, InlinedCalleeBehavesIdentically) {
  // `twice` is small enough to inline; semantics must not change.
  std::vector<uint32_t> vals = RunAndRecord(R"(
int twice(int x) { return x * 2; }
void main(int n) {
  record(100, twice(n) + twice(1));
}
)",
                                            "main", 20);
  EXPECT_EQ(vals, std::vector<uint32_t>{42});
}

TEST(MachineTest, KmallocAndKfree) {
  std::vector<uint32_t> vals = RunAndRecord(R"(
void main(int unused) {
  int *p = (int*)kmalloc(sizeof(int) * 4);
  if (p == 0) {
    record(100, 0);
    return;
  }
  p[0] = 40;
  p[3] = 2;
  record(100, p[0] + p[3]);
  kfree((char*)p);
}
)",
                                            "main");
  EXPECT_EQ(vals, std::vector<uint32_t>{42});
}

TEST(MachineTest, ShadowDataStructures) {
  std::vector<uint32_t> vals = RunAndRecord(R"(
int object = 7;
void main(int unused) {
  int *shadow = (int*)shadow_attach((int)&object, 1, sizeof(int));
  *shadow = 41;
  int *again = (int*)shadow_get((int)&object, 1);
  record(100, *again + 1);
  shadow_detach((int)&object, 1);
  record(100, shadow_get((int)&object, 1));
}
)",
                                            "main");
  EXPECT_EQ(vals, (std::vector<uint32_t>{42, 0}));
}

TEST(MachineTest, KthreadAndSleep) {
  std::vector<uint32_t> vals = RunAndRecord(R"(
int done = 0;
void worker(int value) {
  sleep(50);
  done = value;
}
void main(int unused) {
  kthread(worker, 42);
  while (done == 0) {
    sleep(10);
  }
  record(100, done);
}
)",
                                            "main");
  EXPECT_EQ(vals, std::vector<uint32_t>{42});
}

TEST(MachineTest, BigKernelLockExcludesConcurrentCritical) {
  std::vector<uint32_t> vals = RunAndRecord(R"(
int shared = 0;
void bump_many(int n) {
  int i;
  for (i = 0; i < n; i++) {
    lock_kernel();
    int old = shared;
    yield();               /* invite a preemption inside the critical section */
    shared = old + 1;
    unlock_kernel();
  }
}
void main(int n) {
  int t1 = kthread(bump_many, n);
  int t2 = kthread(bump_many, n);
  bump_many(n);
  sleep(100000);
  record(100, shared);
}
)",
                                            "main", 50);
  EXPECT_EQ(vals, std::vector<uint32_t>{150});
}

TEST(MachineTest, PrintkLog) {
  std::unique_ptr<Machine> machine = BootSource(R"(
void main(int unused) {
  printk("hello from the kernel\n");
  printk("second line");
}
)");
  ASSERT_NE(machine, nullptr);
  ASSERT_TRUE(machine->SpawnNamed("main", 0).ok());
  ASSERT_TRUE(machine->RunToCompletion().ok());
  std::vector<std::string> log = machine->PrintkLog();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "hello from the kernel\n");
  EXPECT_EQ(log[1], "second line");
}

TEST(MachineTest, NullDereferenceFaults) {
  std::unique_ptr<Machine> machine = BootSource(R"(
void main(int unused) {
  int *p = 0;
  *p = 1;
  record(100, 999);
}
)");
  ASSERT_NE(machine, nullptr);
  ASSERT_TRUE(machine->SpawnNamed("main", 0).ok());
  ASSERT_TRUE(machine->RunToCompletion().ok());
  EXPECT_EQ(machine->Faults().size(), 1u);
  EXPECT_TRUE(machine->RecordsWithKey(100).empty());
  std::vector<ThreadInfo> threads = machine->Threads();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].state, ThreadState::kFaulted);
}

TEST(MachineTest, DivisionByZeroFaults) {
  std::unique_ptr<Machine> machine = BootSource(R"(
int denom = 0;
void main(int n) {
  record(100, n / denom);
}
)");
  ASSERT_NE(machine, nullptr);
  ASSERT_TRUE(machine->SpawnNamed("main", 10).ok());
  ASSERT_TRUE(machine->RunToCompletion().ok());
  ASSERT_EQ(machine->Faults().size(), 1u);
  EXPECT_NE(machine->Faults()[0].find("division by zero"),
            std::string::npos);
}

TEST(MachineTest, StackOverflowFaults) {
  std::unique_ptr<Machine> machine = BootSource(R"(
int infinite(int n) {
  return infinite(n + 1);
}
void main(int unused) {
  record(100, infinite(0));
}
)");
  ASSERT_NE(machine, nullptr);
  ASSERT_TRUE(machine->SpawnNamed("main", 0).ok());
  ASSERT_TRUE(machine->RunToCompletion().ok());
  ASSERT_EQ(machine->Faults().size(), 1u);
  EXPECT_NE(machine->Faults()[0].find("stack overflow"), std::string::npos);
}

TEST(MachineTest, SleepingThreadKeepsStackFrames) {
  // The §5.2 quiescence scenario: a thread blocked in a sleep-like kernel
  // function keeps its caller chain on the stack; the paused pc sits
  // inside the schedule-analogue.
  // my_schedule is padded past the inline threshold, like the real
  // schedule(): callers reach it through a genuine call frame.
  std::unique_ptr<Machine> machine = BootSource(R"(
int sched_stat_a; int sched_stat_b; int sched_stat_c;
void my_schedule() {
  sched_stat_a += 1; sched_stat_b += 2; sched_stat_c += 3;
  sched_stat_a += sched_stat_b; sched_stat_b += sched_stat_c;
  sched_stat_c += sched_stat_a; sched_stat_a += 4; sched_stat_b += 5;
  sleep(1000000);
  sched_stat_c += 6;
}
void waiter(int unused) {
  my_schedule();
}
)");
  ASSERT_NE(machine, nullptr);
  ASSERT_TRUE(machine->SpawnNamed("waiter", 0).ok());
  ASSERT_TRUE(machine->Run(10'000).ok());

  std::vector<ThreadInfo> threads = machine->Threads();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].state, ThreadState::kSleeping);

  std::vector<kelf::LinkedSymbol> sched =
      machine->SymbolsNamed("my_schedule");
  ASSERT_EQ(sched.size(), 1u);
  // pc paused inside my_schedule (it is too small to matter whether it was
  // inlined — check the return-address fallback too).
  bool pc_inside = threads[0].pc >= sched[0].address &&
                   threads[0].pc < sched[0].address + sched[0].size;
  bool retaddr_inside = false;
  for (uint32_t sp = threads[0].sp; sp + 4 <= threads[0].stack_top;
       sp += 4) {
    uint32_t word = *machine->ReadWord(sp);
    if (word >= sched[0].address &&
        word < sched[0].address + sched[0].size) {
      retaddr_inside = true;
    }
  }
  EXPECT_TRUE(pc_inside || retaddr_inside);
}

TEST(MachineTest, AssemblyUnitRuns) {
  SourceTree tree;
  tree.Write("entry.kvs", R"(
.text
.global asm_entry
asm_entry:
    push fp
    mov fp, sp
    mov r0, =result
    mov r1, 42
    store [r0], r1
    mov r0, =result
    load r0, [r0]
    mov r1, r0
    mov r0, 100
    sys 7          ; record(100, 42)
    mov sp, fp
    pop fp
    ret
.data
.global result
result:
    .word 0
)");
  kcc::CompileOptions options;
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, options);
  ASSERT_TRUE(objects.ok()) << objects.status().ToString();
  MachineConfig config;
  ks::Result<std::unique_ptr<Machine>> machine =
      Machine::Boot(std::move(objects).value(), config);
  ASSERT_TRUE(machine.ok()) << machine.status().ToString();
  ASSERT_TRUE((*machine)->SpawnNamed("asm_entry", 0).ok());
  ASSERT_TRUE((*machine)->RunToCompletion().ok());
  EXPECT_EQ((*machine)->RecordsWithKey(100), std::vector<uint32_t>{42});
}

TEST(MachineTest, CrossUnitCallsAndData) {
  SourceTree tree;
  tree.Write("lib.h", "int libfunc(int x);\nextern int lib_state;\n");
  tree.Write("lib.kc", R"(
int lib_state = 30;
int libfunc(int x) {
  lib_state += x;
  return lib_state;
}
)");
  tree.Write("main.kc", R"(
#include "lib.h"
void main(int unused) {
  libfunc(4);
  record(100, libfunc(8));
}
)");
  kcc::CompileOptions options;
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, options);
  ASSERT_TRUE(objects.ok()) << objects.status().ToString();
  MachineConfig config;
  ks::Result<std::unique_ptr<Machine>> machine =
      Machine::Boot(std::move(objects).value(), config);
  ASSERT_TRUE(machine.ok()) << machine.status().ToString();
  ASSERT_TRUE((*machine)->SpawnNamed("main", 0).ok());
  ASSERT_TRUE((*machine)->RunToCompletion().ok());
  EXPECT_EQ((*machine)->RecordsWithKey(100), std::vector<uint32_t>{42});
}

TEST(MachineTest, MonolithicAndSectionedKernelsBehaveIdentically) {
  std::string src = R"(
int acc = 0;
int helper(int x) { return x + 1; }
void main(int n) {
  int i;
  for (i = 0; i < n; i++) {
    acc += helper(i);
  }
  record(100, acc);
}
)";
  for (bool sections : {false, true}) {
    std::unique_ptr<Machine> machine = BootSource(src, sections);
    ASSERT_NE(machine, nullptr);
    ASSERT_TRUE(machine->SpawnNamed("main", 8).ok());
    ASSERT_TRUE(machine->RunToCompletion().ok());
    // sum over i in [0,8) of (i+1) = 36.
    EXPECT_EQ(machine->RecordsWithKey(100), std::vector<uint32_t>{36})
        << "sections=" << sections;
  }
}

TEST(MachineTest, ModuleLoadAndUnload) {
  std::unique_ptr<Machine> machine = BootSource(R"(
int kernel_value = 40;
int kernel_add(int x) {
  kernel_value += x;
  return kernel_value;
}
)");
  ASSERT_NE(machine, nullptr);

  SourceTree mod_tree;
  mod_tree.Write("mod.kc", R"(
extern int kernel_value;
int kernel_add(int x);
void mod_entry(int unused) {
  record(100, kernel_add(2));
}
)");
  kcc::CompileOptions options;
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(mod_tree, options);
  ASSERT_TRUE(objects.ok()) << objects.status().ToString();

  uint32_t before = machine->ModuleArenaBytesInUse();
  ks::Result<ModuleHandle> handle =
      machine->LoadModule(*objects, "testmod");
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_GT(machine->ModuleArenaBytesInUse(), before);

  ASSERT_TRUE(machine->SpawnNamed("mod_entry", 0).ok());
  ASSERT_TRUE(machine->RunToCompletion().ok());
  EXPECT_EQ(machine->RecordsWithKey(100), std::vector<uint32_t>{42});

  ASSERT_TRUE(machine->UnloadModule(*handle).ok());
  EXPECT_EQ(machine->ModuleArenaBytesInUse(), before);
  // Unloaded module's symbols are gone.
  EXPECT_TRUE(machine->SymbolsNamed("mod_entry").empty());
  // Double unload fails.
  EXPECT_FALSE(machine->UnloadModule(*handle).ok());
}

TEST(MachineTest, ModuleCannotRedefineExportedGlobal) {
  std::unique_ptr<Machine> machine = BootSource("int exported = 1;\n");
  ASSERT_NE(machine, nullptr);
  SourceTree mod_tree;
  mod_tree.Write("mod.kc", "int exported = 2;\n");
  kcc::CompileOptions options;
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(mod_tree, options);
  ASSERT_TRUE(objects.ok());
  EXPECT_EQ(machine->LoadModule(*objects, "dup").status().code(),
            ks::ErrorCode::kAlreadyExists);
}

TEST(MachineTest, ModuleWithUnresolvedImportFails) {
  std::unique_ptr<Machine> machine = BootSource("int x = 1;\n");
  ASSERT_NE(machine, nullptr);
  SourceTree mod_tree;
  mod_tree.Write("mod.kc",
                 "int missing_fn(int);\nvoid e(int u) { missing_fn(1); }\n");
  kcc::CompileOptions options;
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(mod_tree, options);
  ASSERT_TRUE(objects.ok());
  EXPECT_FALSE(machine->LoadModule(*objects, "bad").ok());
}

TEST(MachineTest, StopMachineRunsQuiesced) {
  std::unique_ptr<Machine> machine = BootSource(R"(
int spin = 1;
void worker(int unused) {
  while (spin) {
    yield();
  }
}
)");
  ASSERT_NE(machine, nullptr);
  ASSERT_TRUE(machine->SpawnNamed("worker", 0).ok());
  ASSERT_TRUE(machine->Run(5000).ok());

  bool ran = false;
  ks::Status status = machine->StopMachine([&](Machine& m) {
    ran = true;
    // Flip the spin flag from "inside" stop_machine.
    uint32_t addr = *m.GlobalSymbol("spin");
    return m.WriteWord(addr, 0);
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(ran);
  ASSERT_TRUE(machine->RunToCompletion().ok());
  EXPECT_TRUE(machine->Faults().empty());
}

TEST(MachineTest, StopMachineWithVirtualCpus) {
  std::unique_ptr<Machine> machine = BootSource(R"(
int spin = 1;
int progress = 0;
void worker(int unused) {
  while (spin) {
    progress += 1;
    yield();
  }
}
)");
  ASSERT_NE(machine, nullptr);
  ASSERT_TRUE(machine->SpawnNamed("worker", 0).ok());
  ASSERT_TRUE(machine->SpawnNamed("worker", 0).ok());
  machine->StartCpus(2);
  EXPECT_EQ(machine->ActiveCpus(), 2);

  // stop_machine while CPUs churn: must not crash or deadlock, and the
  // write must be atomic with respect to slices.
  for (int i = 0; i < 10; ++i) {
    ks::Status status = machine->StopMachine(
        [](Machine& m) { return m.WriteWord(*m.GlobalSymbol("spin"), 1); });
    ASSERT_TRUE(status.ok());
  }
  ks::Status stop = machine->StopMachine(
      [](Machine& m) { return m.WriteWord(*m.GlobalSymbol("spin"), 0); });
  ASSERT_TRUE(stop.ok());
  // Workers exit on their own now.
  for (int i = 0; i < 2000 && machine->HasLiveThreads(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  machine->StopCpus();
  EXPECT_FALSE(machine->HasLiveThreads());
  EXPECT_TRUE(machine->Faults().empty());
}

TEST(MachineTest, DeterministicExecution) {
  std::string src = R"(
void main(int n) {
  int total = 0;
  int i;
  for (i = 0; i < n; i++) {
    total += krand() % 100;
  }
  record(100, total);
}
)";
  std::vector<uint32_t> a = RunAndRecord(src, "main", 25);
  std::vector<uint32_t> b = RunAndRecord(src, "main", 25);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a, b);
}

TEST(MachineTest, NestedStructsByValue) {
  std::vector<uint32_t> vals = RunAndRecord(R"(
struct point {
  int x;
  int y;
};
struct rect {
  struct point lo;
  struct point hi;
  char label;
};
struct rect r;
int area(struct rect *p) {
  int w = p->hi.x - p->lo.x;
  int h = p->hi.y - p->lo.y;
  return w * h;
}
void main(int unused) {
  r.lo.x = 2;
  r.lo.y = 3;
  r.hi.x = 8;
  r.hi.y = 10;
  r.label = 'q';
  record(100, area(&r) + r.label - 'q');
}
)",
                                            "main");
  EXPECT_EQ(vals, std::vector<uint32_t>{42});
}

TEST(MachineTest, SizeofNestedStructRoundsUp) {
  std::vector<uint32_t> vals = RunAndRecord(R"(
struct inner {
  char tag;
  int v;
};
struct outer {
  struct inner a;
  char pad;
};
void main(int unused) {
  record(100, sizeof(struct outer));
}
)",
                                            "main");
  // inner: tag at 0, v at 4 -> 8; outer: a at 0 (8), pad at 8 -> 12.
  EXPECT_EQ(vals, std::vector<uint32_t>{12});
}

TEST(MachineTest, SignedDivisionAndModuloCorners) {
  std::vector<uint32_t> vals = RunAndRecord(R"(
void main(int unused) {
  int a = -7;
  int b = 2;
  record(100, a / b);        /* -3: truncation toward zero */
  record(100, a % b);        /* -1 */
  int min = -2147483647 - 1;
  record(100, min / -1);     /* wraps to INT_MIN, no trap */
  record(100, 7 / -2);       /* -3 */
  record(100, -7 % -2);      /* -1 */
}
)",
                                            "main");
  ASSERT_EQ(vals.size(), 5u);
  EXPECT_EQ(static_cast<int32_t>(vals[0]), -3);
  EXPECT_EQ(static_cast<int32_t>(vals[1]), -1);
  EXPECT_EQ(vals[2], 0x80000000u);
  EXPECT_EQ(static_cast<int32_t>(vals[3]), -3);
  EXPECT_EQ(static_cast<int32_t>(vals[4]), -1);
}

TEST(MachineTest, ShiftAmountsAreMasked) {
  std::vector<uint32_t> vals = RunAndRecord(R"(
void main(int unused) {
  int x = 1;
  int k = 33;                /* masked to 1 */
  record(100, x << k);
  int y = -2147483647 - 1;   /* logical right shift */
  record(100, y >> 31);
}
)",
                                            "main");
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_EQ(vals[0], 2u);
  EXPECT_EQ(vals[1], 1u);
}

TEST(MachineTest, MutuallyRecursiveSmallFunctions) {
  // Both halves are under the inline threshold; the emitter's inline
  // stack must break the cycle and still produce correct code.
  std::vector<uint32_t> vals = RunAndRecord(R"(
int is_odd(int n);
int is_even(int n) {
  if (n == 0) { return 1; }
  return is_odd(n - 1);
}
int is_odd(int n) {
  if (n == 0) { return 0; }
  return is_even(n - 1);
}
void main(int n) {
  record(100, is_even(n) * 10 + is_odd(n));
}
)",
                                            "main", 9);
  EXPECT_EQ(vals, std::vector<uint32_t>{1});  // 9: even=0, odd=1
}

TEST(MachineTest, TicksAdvance) {
  std::unique_ptr<Machine> machine = BootSource(R"(
void main(int unused) {
  int start = ticks();
  int i;
  for (i = 0; i < 100; i++) { }
  record(100, ticks() > start);
}
)");
  ASSERT_NE(machine, nullptr);
  ASSERT_TRUE(machine->SpawnNamed("main", 0).ok());
  ASSERT_TRUE(machine->RunToCompletion().ok());
  EXPECT_EQ(machine->RecordsWithKey(100), std::vector<uint32_t>{1});
}

}  // namespace
}  // namespace kvm
