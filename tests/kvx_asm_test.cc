// Tests for the KVX assembler: sections, labels, relaxation, relocations,
// function-sections behaviour, directives, and error reporting.

#include <gtest/gtest.h>

#include "base/endian.h"
#include "kvx/asm.h"
#include "kvx/isa.h"

namespace kvx {
namespace {

using kelf::ObjectFile;
using kelf::RelocType;
using kelf::Section;
using kelf::SectionKind;
using kelf::SymbolBinding;

ObjectFile MustAssemble(std::string_view src, const AsmOptions& options = {}) {
  ks::Result<ObjectFile> obj = Assemble(src, "test.kvs", options);
  EXPECT_TRUE(obj.ok()) << obj.status().ToString();
  return std::move(obj).value();
}

TEST(AsmTest, EmptySourceYieldsEmptyText) {
  ObjectFile obj = MustAssemble("");
  ASSERT_EQ(obj.sections().size(), 1u);
  EXPECT_EQ(obj.sections()[0].name, ".text");
  EXPECT_TRUE(obj.sections()[0].bytes.empty());
}

TEST(AsmTest, SimpleFunctionMonolithic) {
  ObjectFile obj = MustAssemble(R"(
.text
.global f
f:
    mov r0, 42
    ret
)");
  const Section* text = obj.SectionByName(".text");
  ASSERT_NE(text, nullptr);
  // mov(6) + ret(1) = 7 bytes.
  ASSERT_EQ(text->bytes.size(), 7u);
  EXPECT_EQ(text->bytes[0], 0x10);
  EXPECT_EQ(ks::ReadLe32(text->bytes.data() + 2), 42u);
  EXPECT_EQ(text->bytes[6], 0x42);

  ks::Result<int> f = obj.FindUniqueSymbol("f");
  ASSERT_TRUE(f.ok());
  const kelf::Symbol& sym = obj.symbols()[static_cast<size_t>(*f)];
  EXPECT_EQ(sym.binding, SymbolBinding::kGlobal);
  EXPECT_EQ(sym.value, 0u);
  EXPECT_EQ(sym.size, 7u);
}

TEST(AsmTest, FunctionSectionsSplit) {
  AsmOptions opts;
  opts.function_sections = true;
  ObjectFile obj = MustAssemble(R"(
.text
.global a
a:
    ret
b:
    ret
)",
                                opts);
  EXPECT_NE(obj.SectionByName(".text.a"), nullptr);
  EXPECT_NE(obj.SectionByName(".text.b"), nullptr);
  ks::Result<int> b = obj.FindUniqueSymbol("b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(obj.symbols()[static_cast<size_t>(*b)].binding,
            SymbolBinding::kLocal);
}

TEST(AsmTest, MonolithicAlignsFunctionsWithNops) {
  ObjectFile obj = MustAssemble(R"(
.text
a:
    ret
b:
    ret
)");
  const Section* text = obj.SectionByName(".text");
  ASSERT_NE(text, nullptr);
  // a: ret at 0; padding nops to 8; b: ret at 8.
  ASSERT_EQ(text->bytes.size(), 9u);
  EXPECT_EQ(text->bytes[0], 0x42);
  EXPECT_EQ(text->bytes[8], 0x42);
  // Bytes 1..7 decode as no-ops.
  size_t pos = 1;
  while (pos < 8) {
    ks::Result<Insn> insn = Decode(
        std::span<const uint8_t>(text->bytes).subspan(pos, 8 - pos));
    ASSERT_TRUE(insn.ok());
    EXPECT_TRUE(GetOpInfo(insn->op).is_nop);
    pos += insn->len;
  }
  ks::Result<int> b = obj.FindUniqueSymbol("b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(obj.symbols()[static_cast<size_t>(*b)].value, 8u);
}

TEST(AsmTest, ShortJumpChosenWhenClose) {
  ObjectFile obj = MustAssemble(R"(
f:
    jmp .done
    nop
.done:
    ret
)");
  const Section* text = obj.SectionByName(".text");
  ASSERT_NE(text, nullptr);
  // jmp8(2) + nop(1) + ret(1).
  ASSERT_EQ(text->bytes.size(), 4u);
  EXPECT_EQ(text->bytes[0], static_cast<uint8_t>(Op::kJmp8));
  EXPECT_EQ(static_cast<int8_t>(text->bytes[1]), 1);  // skip the nop
}

TEST(AsmTest, LongJumpChosenWhenFar) {
  std::string src = "f:\n    jmp .done\n";
  for (int i = 0; i < 50; ++i) {
    src += "    mov r0, 1\n";  // 6 bytes each => 300 bytes, too far for rel8
  }
  src += ".done:\n    ret\n";
  ObjectFile obj = MustAssemble(src);
  const Section* text = obj.SectionByName(".text");
  ASSERT_NE(text, nullptr);
  EXPECT_EQ(text->bytes[0], static_cast<uint8_t>(Op::kJmp32));
  int32_t rel = static_cast<int32_t>(ks::ReadLe32(text->bytes.data() + 1));
  EXPECT_EQ(rel, 300);
  // No relocation: target resolved internally.
  EXPECT_TRUE(text->relocs.empty());
}

TEST(AsmTest, BackwardShortJump) {
  ObjectFile obj = MustAssemble(R"(
f:
.loop:
    sub r0, 1
    jnz .loop
    ret
)");
  const Section* text = obj.SectionByName(".text");
  // sub(6) jnz8(2) ret(1)
  ASSERT_EQ(text->bytes.size(), 9u);
  EXPECT_EQ(text->bytes[6], static_cast<uint8_t>(Op::kJnz8));
  EXPECT_EQ(static_cast<int8_t>(text->bytes[7]), -8);
}

TEST(AsmTest, CrossSectionBranchGetsRelocation) {
  AsmOptions opts;
  opts.function_sections = true;
  ObjectFile obj = MustAssemble(R"(
.text
a:
    jmp b
b:
    ret
)",
                                opts);
  const Section* ta = obj.SectionByName(".text.a");
  ASSERT_NE(ta, nullptr);
  EXPECT_EQ(ta->bytes[0], static_cast<uint8_t>(Op::kJmp32));
  ASSERT_EQ(ta->relocs.size(), 1u);
  EXPECT_EQ(ta->relocs[0].type, RelocType::kPcrel32);
  EXPECT_EQ(ta->relocs[0].addend, -4);
  EXPECT_EQ(ta->relocs[0].offset, 1u);
  EXPECT_EQ(obj.symbols()[static_cast<size_t>(ta->relocs[0].symbol)].name,
            "b");
}

TEST(AsmTest, SameFileBranchResolvedWithoutRelocMonolithic) {
  // The monolithic contrast to the previous test: the paper's "relative
  // jumps to other addresses within this section" (§3.1).
  ObjectFile obj = MustAssemble(R"(
.text
a:
    jmp b
b:
    ret
)");
  const Section* text = obj.SectionByName(".text");
  ASSERT_NE(text, nullptr);
  EXPECT_TRUE(text->relocs.empty());
}

TEST(AsmTest, CallAlwaysLongWithRelocWhenExternal) {
  ObjectFile obj = MustAssemble(R"(
f:
    call external_fn
    ret
)");
  const Section* text = obj.SectionByName(".text");
  ASSERT_EQ(text->relocs.size(), 1u);
  EXPECT_EQ(text->relocs[0].type, RelocType::kPcrel32);
  const kelf::Symbol& sym =
      obj.symbols()[static_cast<size_t>(text->relocs[0].symbol)];
  EXPECT_EQ(sym.name, "external_fn");
  EXPECT_FALSE(sym.defined());
}

TEST(AsmTest, CallInternalResolvedMonolithic) {
  ObjectFile obj = MustAssemble(R"(
f:
    call g
    ret
g:
    ret
)");
  const Section* text = obj.SectionByName(".text");
  EXPECT_TRUE(text->relocs.empty());
  // call at 0, length 5, g at 8 (aligned): rel = 8 - 5 = 3.
  EXPECT_EQ(static_cast<int32_t>(ks::ReadLe32(text->bytes.data() + 1)), 3);
}

TEST(AsmTest, AddressMaterializationReloc) {
  ObjectFile obj = MustAssemble(R"(
.data
counter:
    .word 5
.text
f:
    mov r1, =counter+8
    ret
)");
  const Section* text = obj.SectionByName(".text");
  ASSERT_EQ(text->relocs.size(), 1u);
  EXPECT_EQ(text->relocs[0].type, RelocType::kAbs32);
  EXPECT_EQ(text->relocs[0].offset, 2u);
  EXPECT_EQ(text->relocs[0].addend, 8);
}

TEST(AsmTest, DataDirectives) {
  ObjectFile obj = MustAssemble(R"(
.data
table:
    .word 1, 2, f
    .byte 9, 0xff
msg:
    .asciz "hi\n"
.bss
buf:
    .space 64
.text
f:
    ret
)");
  const Section* data = obj.SectionByName(".data");
  ASSERT_NE(data, nullptr);
  // table is 4-aligned at 0: 3 words + 2 bytes; msg aligned to 4 => at 16.
  EXPECT_EQ(ks::ReadLe32(data->bytes.data()), 1u);
  EXPECT_EQ(ks::ReadLe32(data->bytes.data() + 4), 2u);
  ASSERT_EQ(data->relocs.size(), 1u);
  EXPECT_EQ(data->relocs[0].offset, 8u);
  EXPECT_EQ(data->bytes[12], 9);
  EXPECT_EQ(data->bytes[13], 0xff);
  EXPECT_EQ(data->bytes[16], 'h');
  EXPECT_EQ(data->bytes[17], 'i');
  EXPECT_EQ(data->bytes[18], '\n');
  EXPECT_EQ(data->bytes[19], 0);

  const Section* bss = obj.SectionByName(".bss");
  ASSERT_NE(bss, nullptr);
  EXPECT_EQ(bss->bss_size, 64u);
  EXPECT_TRUE(bss->bytes.empty());
}

TEST(AsmTest, DataSectionsSplit) {
  AsmOptions opts;
  opts.data_sections = true;
  ObjectFile obj = MustAssemble(R"(
.data
a:
    .word 1
b:
    .word 2
.bss
c:
    .space 8
)",
                                opts);
  EXPECT_NE(obj.SectionByName(".data.a"), nullptr);
  EXPECT_NE(obj.SectionByName(".data.b"), nullptr);
  EXPECT_NE(obj.SectionByName(".bss.c"), nullptr);
}

TEST(AsmTest, KspliceHookDirectives) {
  ObjectFile obj = MustAssemble(R"(
.text
myupdate:
    ret
.ksplice_apply myupdate
.ksplice_pre_apply myupdate
.ksplice_post_reverse myupdate
)");
  const Section* apply = obj.SectionByName(".ksplice.apply");
  ASSERT_NE(apply, nullptr);
  EXPECT_EQ(apply->kind, SectionKind::kNote);
  ASSERT_EQ(apply->bytes.size(), 4u);
  ASSERT_EQ(apply->relocs.size(), 1u);
  EXPECT_EQ(obj.symbols()[static_cast<size_t>(apply->relocs[0].symbol)].name,
            "myupdate");
  EXPECT_NE(obj.SectionByName(".ksplice.pre_apply"), nullptr);
  EXPECT_NE(obj.SectionByName(".ksplice.post_reverse"), nullptr);
}

TEST(AsmTest, LoadStoreForms) {
  ObjectFile obj = MustAssemble(R"(
f:
    load r0, [r1]
    store [r2], r3
    loadb r4, [fp]
    storeb [sp], r0
    ret
)");
  const Section* text = obj.SectionByName(".text");
  EXPECT_EQ(text->bytes[0], static_cast<uint8_t>(Op::kLoadI));
  EXPECT_EQ(text->bytes[1], 0);
  EXPECT_EQ(text->bytes[2], 1);
  EXPECT_EQ(text->bytes[3], static_cast<uint8_t>(Op::kStoreI));
  EXPECT_EQ(text->bytes[6], static_cast<uint8_t>(Op::kLoadBI));
  EXPECT_EQ(text->bytes[8], kRegFp);
  EXPECT_EQ(text->bytes[9], static_cast<uint8_t>(Op::kStoreBI));
  EXPECT_EQ(text->bytes[10], kRegSp);
}

TEST(AsmTest, Errors) {
  AsmOptions opts;
  EXPECT_FALSE(Assemble("bogus r0\n", "t.kvs", opts).ok());
  EXPECT_FALSE(Assemble("mov r9, 1\n", "t.kvs", opts).ok());
  EXPECT_FALSE(Assemble(".data\n x: .space -1\n", "t.kvs", opts).ok());
  EXPECT_FALSE(Assemble(".bss\nx:\n .word 1\n", "t.kvs", opts).ok());
  EXPECT_FALSE(Assemble("f:\nf:\n ret\n", "t.kvs", opts).ok());
  EXPECT_FALSE(Assemble(".align 3\n", "t.kvs", opts).ok());
  EXPECT_FALSE(Assemble(".data\nx:\n mov r0, 1\n", "t.kvs", opts).ok());
  EXPECT_FALSE(Assemble("mul r0, 5\n", "t.kvs", opts).ok());
  // Error messages carry file and line.
  ks::Status st = Assemble("\n\nbogus\n", "file.kvs", opts).status();
  EXPECT_NE(st.message().find("file.kvs:3"), std::string::npos);
}

TEST(AsmTest, CommentsAndBlankLines) {
  ObjectFile obj = MustAssemble(R"(
; full line comment
f:          ; trailing comment
    ret     # hash comment
)");
  const Section* text = obj.SectionByName(".text");
  ASSERT_EQ(text->bytes.size(), 1u);
  EXPECT_EQ(text->bytes[0], 0x42);
}

TEST(AsmTest, RelaxationBoundaryAtRel8Limits) {
  // Forward displacement 127 is the last short-encodable value; 128 must
  // promote. Build paddings that land exactly on each side.
  for (int pad_insns : {0, 1}) {
    std::string src = "f:\n    jmp .target\n";
    // Each mov is 6 bytes; base: 20 movs + 7 nops = 127 bytes.
    for (int i = 0; i < 20; ++i) {
      src += "    mov r0, 1\n";
    }
    for (int i = 0; i < 7 + pad_insns; ++i) {
      src += "    nop\n";
    }
    src += ".target:\n    ret\n";
    ks::Result<kelf::ObjectFile> obj = Assemble(src, "b.kvs", AsmOptions{});
    ASSERT_TRUE(obj.ok()) << obj.status().ToString();
    const kelf::Section* text = obj->SectionByName(".text");
    ASSERT_NE(text, nullptr);
    if (pad_insns == 0) {
      EXPECT_EQ(text->bytes[0], static_cast<uint8_t>(Op::kJmp8))
          << "displacement 127 fits rel8";
      EXPECT_EQ(static_cast<int8_t>(text->bytes[1]), 127);
    } else {
      EXPECT_EQ(text->bytes[0], static_cast<uint8_t>(Op::kJmp32))
          << "displacement 128 must promote to rel32";
    }
  }
  // Backward: -128 fits, -129 promotes.
  for (int extra : {0, 1}) {
    std::string src = "f:\n.back:\n";
    // jmp8 is 2 bytes; 21 movs = 126 bytes -> disp = -(126+2) = -128.
    for (int i = 0; i < 21; ++i) {
      src += "    mov r0, 1\n";
    }
    for (int i = 0; i < extra; ++i) {
      src += "    nop\n";
    }
    src += "    jmp .back\n    ret\n";
    ks::Result<kelf::ObjectFile> obj = Assemble(src, "b.kvs", AsmOptions{});
    ASSERT_TRUE(obj.ok()) << obj.status().ToString();
    const kelf::Section* text = obj->SectionByName(".text");
    size_t jmp_at = 126 + static_cast<size_t>(extra);
    if (extra == 0) {
      EXPECT_EQ(text->bytes[jmp_at], static_cast<uint8_t>(Op::kJmp8));
      EXPECT_EQ(static_cast<int8_t>(text->bytes[jmp_at + 1]), -128);
    } else {
      EXPECT_EQ(text->bytes[jmp_at], static_cast<uint8_t>(Op::kJmp32));
    }
  }
}

TEST(AsmTest, RelaxationConvergesOnChains) {
  // A chain of branches, each barely in short range of the next, where
  // promoting one could push others out of range. The assembler must
  // converge and every branch must land on its target.
  std::string src = "f:\n";
  for (int i = 0; i < 20; ++i) {
    src += "    jmp .l" + std::to_string(i) + "\n";
    for (int j = 0; j < 19; ++j) {
      src += "    mov r0, 1\n";
    }
    src += ".l" + std::to_string(i) + ":\n";
  }
  src += "    ret\n";
  ObjectFile obj = MustAssemble(src);
  const Section* text = obj.SectionByName(".text");
  ASSERT_NE(text, nullptr);
  // Validate structurally: decode the stream and check every branch target
  // is an instruction boundary.
  std::vector<bool> boundary(text->bytes.size() + 1, false);
  size_t pos = 0;
  while (pos < text->bytes.size()) {
    boundary[pos] = true;
    ks::Result<Insn> insn =
        Decode(std::span<const uint8_t>(text->bytes).subspan(pos));
    ASSERT_TRUE(insn.ok());
    pos += insn->len;
  }
  boundary[pos] = true;
  pos = 0;
  while (pos < text->bytes.size()) {
    ks::Result<Insn> insn =
        Decode(std::span<const uint8_t>(text->bytes).subspan(pos));
    ASSERT_TRUE(insn.ok());
    if (IsPcRelative(insn->op)) {
      size_t target = pos + insn->len + static_cast<size_t>(insn->rel);
      ASSERT_LE(target, text->bytes.size());
      EXPECT_TRUE(boundary[target]) << "branch at " << pos;
    }
    pos += insn->len;
  }
}

}  // namespace
}  // namespace kvx
