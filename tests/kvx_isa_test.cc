// Unit tests for the KVX ISA: opcode table, encode/decode round trips,
// no-op recognition, branch families, disassembly.

#include <gtest/gtest.h>

#include "kvx/isa.h"

namespace kvx {
namespace {

TEST(OpInfoTest, InvalidOpcodesHaveNoMnemonic) {
  EXPECT_EQ(GetOpInfo(uint8_t{0xff}).mnemonic, nullptr);
  EXPECT_EQ(GetOpInfo(uint8_t{0x99}).mnemonic, nullptr);
}

TEST(OpInfoTest, LengthsMatchSpec) {
  EXPECT_EQ(GetOpInfo(Op::kHalt).length, 1);
  EXPECT_EQ(GetOpInfo(Op::kNop).length, 1);
  EXPECT_EQ(GetOpInfo(Op::kNopW).length, 2);
  EXPECT_EQ(GetOpInfo(Op::kNopN).length, 0);  // variable
  EXPECT_EQ(GetOpInfo(Op::kMovRI).length, 6);
  EXPECT_EQ(GetOpInfo(Op::kMovRR).length, 3);
  EXPECT_EQ(GetOpInfo(Op::kCall).length, 5);
  EXPECT_EQ(GetOpInfo(Op::kJmp8).length, 2);
  EXPECT_EQ(GetOpInfo(Op::kJmp32).length, 5);
  EXPECT_EQ(GetOpInfo(Op::kSys).length, 2);
  EXPECT_EQ(GetOpInfo(Op::kRet).length, 1);
}

TEST(OpInfoTest, NopsAreMarked) {
  EXPECT_TRUE(GetOpInfo(Op::kNop).is_nop);
  EXPECT_TRUE(GetOpInfo(Op::kNopW).is_nop);
  EXPECT_TRUE(GetOpInfo(Op::kNopN).is_nop);
  EXPECT_FALSE(GetOpInfo(Op::kMovRR).is_nop);
  EXPECT_FALSE(GetOpInfo(Op::kRet).is_nop);
}

TEST(BranchFamilyTest, ShortAndLongFormsPair) {
  EXPECT_EQ(LongForm(Op::kJmp8), Op::kJmp32);
  EXPECT_EQ(ShortForm(Op::kJmp32), Op::kJmp8);
  EXPECT_EQ(LongForm(Op::kJle8), Op::kJle32);
  EXPECT_EQ(ShortForm(Op::kJle32), Op::kJle8);
  // Call has no short form.
  EXPECT_EQ(LongForm(Op::kCall), Op::kCall);
  EXPECT_EQ(ShortForm(Op::kCall), Op::kCall);
}

TEST(BranchFamilyTest, SameBranchFamily) {
  EXPECT_TRUE(SameBranchFamily(Op::kJz8, Op::kJz32));
  EXPECT_TRUE(SameBranchFamily(Op::kJz32, Op::kJz8));
  EXPECT_TRUE(SameBranchFamily(Op::kJz8, Op::kJz8));
  EXPECT_FALSE(SameBranchFamily(Op::kJz8, Op::kJnz8));
  EXPECT_FALSE(SameBranchFamily(Op::kJz8, Op::kMovRR));
  EXPECT_TRUE(SameBranchFamily(Op::kCall, Op::kCall));
}

TEST(BranchFamilyTest, IsPcRelative) {
  EXPECT_TRUE(IsPcRelative(Op::kCall));
  EXPECT_TRUE(IsPcRelative(Op::kJmp8));
  EXPECT_TRUE(IsPcRelative(Op::kJge32));
  EXPECT_FALSE(IsPcRelative(Op::kCallR));
  EXPECT_FALSE(IsPcRelative(Op::kMovRI));
  EXPECT_FALSE(IsPcRelative(Op::kRet));
}

TEST(Imm32FieldTest, Offsets) {
  EXPECT_EQ(Imm32FieldOffset(Op::kMovRI), 2);
  EXPECT_EQ(Imm32FieldOffset(Op::kAddRI), 2);
  EXPECT_EQ(Imm32FieldOffset(Op::kCall), 1);
  EXPECT_EQ(Imm32FieldOffset(Op::kJmp32), 1);
  EXPECT_EQ(Imm32FieldOffset(Op::kJmp8), -1);
  EXPECT_EQ(Imm32FieldOffset(Op::kRet), -1);
}

// Property-style round trip over all register/immediate combinations.
struct RoundTripCase {
  Op op;
  uint8_t reg1;
  uint8_t reg2;
  uint32_t imm;
  int32_t rel;
};

class EncodeDecodeTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(EncodeDecodeTest, RoundTrip) {
  const RoundTripCase& c = GetParam();
  Insn in;
  in.op = c.op;
  in.reg1 = c.reg1;
  in.reg2 = c.reg2;
  in.imm = c.imm;
  in.rel = c.rel;
  std::vector<uint8_t> bytes = Encode(in);
  ks::Result<Insn> out = Decode(bytes);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->op, c.op);
  EXPECT_EQ(out->len, bytes.size());
  const OpInfo& info = GetOpInfo(c.op);
  if (info.has_reg1) {
    EXPECT_EQ(out->reg1, c.reg1);
  }
  if (info.has_reg2) {
    EXPECT_EQ(out->reg2, c.reg2);
  }
  if (info.has_imm32) {
    EXPECT_EQ(out->imm, c.imm);
  }
  if (info.has_imm8) {
    EXPECT_EQ(out->imm, c.imm & 0xff);
  }
  if (info.has_rel8 || info.has_rel32) {
    EXPECT_EQ(out->rel, c.rel);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllForms, EncodeDecodeTest,
    ::testing::Values(
        RoundTripCase{Op::kHalt, 0, 0, 0, 0},
        RoundTripCase{Op::kNop, 0, 0, 0, 0},
        RoundTripCase{Op::kNopW, 0, 0, 0, 0},
        RoundTripCase{Op::kMovRI, 3, 0, 0xdeadbeef, 0},
        RoundTripCase{Op::kMovRI, 7, 0, 0, 0},
        RoundTripCase{Op::kMovRR, 1, 2, 0, 0},
        RoundTripCase{Op::kLoadI, 0, 6, 0, 0},
        RoundTripCase{Op::kStoreI, 5, 4, 0, 0},
        RoundTripCase{Op::kLoadBI, 2, 3, 0, 0},
        RoundTripCase{Op::kStoreBI, 3, 2, 0, 0},
        RoundTripCase{Op::kAddRR, 0, 1, 0, 0},
        RoundTripCase{Op::kSubRI, 4, 0, 0xffffffff, 0},
        RoundTripCase{Op::kCmpRI, 2, 0, 100, 0},
        RoundTripCase{Op::kDivRR, 1, 1, 0, 0},
        RoundTripCase{Op::kShlRR, 6, 7, 0, 0},
        RoundTripCase{Op::kPush, 6, 0, 0, 0},
        RoundTripCase{Op::kPop, 7, 0, 0, 0},
        RoundTripCase{Op::kCall, 0, 0, 0, -4},
        RoundTripCase{Op::kCall, 0, 0, 0, 0x1000},
        RoundTripCase{Op::kCallR, 3, 0, 0, 0},
        RoundTripCase{Op::kRet, 0, 0, 0, 0},
        RoundTripCase{Op::kJmp8, 0, 0, 0, -128},
        RoundTripCase{Op::kJmp8, 0, 0, 0, 127},
        RoundTripCase{Op::kJmp32, 0, 0, 0, -70000},
        RoundTripCase{Op::kJz8, 0, 0, 0, 5},
        RoundTripCase{Op::kJnz32, 0, 0, 0, 1 << 20},
        RoundTripCase{Op::kJlt8, 0, 0, 0, -1},
        RoundTripCase{Op::kJge32, 0, 0, 0, 0},
        RoundTripCase{Op::kJgt8, 0, 0, 0, 7},
        RoundTripCase{Op::kJle32, 0, 0, 0, -12345},
        RoundTripCase{Op::kSys, 0, 0, 7, 0}));

TEST(DecodeTest, VariableNopLengths) {
  for (uint8_t len = 2; len <= 15; ++len) {
    Insn in;
    in.op = Op::kNopN;
    in.len = len;
    std::vector<uint8_t> bytes = Encode(in);
    ASSERT_EQ(bytes.size(), len);
    ks::Result<Insn> out = Decode(bytes);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->len, len);
    EXPECT_TRUE(GetOpInfo(out->op).is_nop);
  }
}

TEST(DecodeTest, RejectsBadNopLength) {
  EXPECT_FALSE(Decode(std::vector<uint8_t>{0x03, 0x01}).ok());
  EXPECT_FALSE(Decode(std::vector<uint8_t>{0x03, 16, 0, 0}).ok());
}

TEST(DecodeTest, RejectsTruncation) {
  // MovRI needs 6 bytes.
  EXPECT_FALSE(Decode(std::vector<uint8_t>{0x10, 0x00, 0x01}).ok());
  // Empty input.
  EXPECT_FALSE(Decode(std::vector<uint8_t>{}).ok());
  // Call needs 5.
  EXPECT_FALSE(Decode(std::vector<uint8_t>{0x40, 1, 2, 3}).ok());
}

TEST(DecodeTest, RejectsBadRegister) {
  // MovRR with register 9.
  EXPECT_FALSE(Decode(std::vector<uint8_t>{0x11, 9, 0}).ok());
}

TEST(DecodeTest, RejectsInvalidOpcode) {
  EXPECT_FALSE(Decode(std::vector<uint8_t>{0xee}).ok());
}

TEST(NopFillTest, ExactLengthsAndDecodability) {
  for (uint32_t n = 0; n <= 64; ++n) {
    std::vector<uint8_t> buf;
    AppendNopFill(buf, n);
    ASSERT_EQ(buf.size(), n);
    // Every filled byte range decodes as a sequence of no-ops.
    size_t pos = 0;
    while (pos < buf.size()) {
      ks::Result<Insn> insn =
          Decode(std::span<const uint8_t>(buf).subspan(pos));
      ASSERT_TRUE(insn.ok()) << "at " << pos << " n=" << n;
      EXPECT_TRUE(GetOpInfo(insn->op).is_nop);
      pos += insn->len;
    }
    EXPECT_EQ(pos, n);
  }
}

TEST(FormatTest, RendersOperands) {
  Insn mov;
  mov.op = Op::kMovRI;
  mov.reg1 = 3;
  mov.imm = 0x42;
  EXPECT_EQ(FormatInsn(mov), "mov r3, 0x42");

  Insn jz;
  jz.op = Op::kJz8;
  jz.rel = -6;
  EXPECT_EQ(FormatInsn(jz), "jz -0x6");

  Insn ret;
  ret.op = Op::kRet;
  EXPECT_EQ(FormatInsn(ret), "ret");
}

TEST(DisassembleTest, WalksAndRecovers) {
  std::vector<uint8_t> code;
  Insn mov;
  mov.op = Op::kMovRI;
  mov.reg1 = 0;
  mov.imm = 1;
  for (uint8_t b : Encode(mov)) {
    code.push_back(b);
  }
  code.push_back(0xee);  // junk byte
  code.push_back(0x42);  // ret
  std::string text = Disassemble(code, 0x1000);
  EXPECT_NE(text.find("mov r0, 0x1"), std::string::npos);
  EXPECT_NE(text.find(".byte 0xee"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

TEST(TrampolineTest, SizeMatchesJmp32) {
  EXPECT_EQ(kTrampolineSize, GetOpInfo(Op::kJmp32).length);
}

}  // namespace
}  // namespace kvx
