// Resource-limit and boundary tests: functions too small to splice,
// module-arena exhaustion, stack-space exhaustion, kernel panic behaviour,
// and scheduler starvation corners.

#include <gtest/gtest.h>

#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "kvm/machine.h"

namespace {

using kdiff::SourceTree;

kcc::CompileOptions Monolithic() {
  kcc::CompileOptions options;
  options.function_sections = false;
  options.data_sections = false;
  return options;
}

std::unique_ptr<kvm::Machine> Boot(const SourceTree& tree,
                                   uint32_t memory = 16u << 20) {
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, Monolithic());
  EXPECT_TRUE(objects.ok()) << objects.status().ToString();
  kvm::MachineConfig config;
  config.memory_bytes = memory;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  EXPECT_TRUE(machine.ok()) << machine.status().ToString();
  return machine.ok() ? std::move(machine).value() : nullptr;
}

TEST(LimitsTest, FunctionTooSmallForTrampolineFailsCleanly) {
  // A 1-byte assembly function cannot host the 5-byte jmp32.
  SourceTree tree;
  tree.Write("tiny.kvs", R"(
.text
.global tiny_stub
tiny_stub:
    ret
.global big_fn
big_fn:
    push fp
    mov fp, sp
    mov r0, 9
    mov sp, fp
    pop fp
    ret
)");
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);

  SourceTree post = tree;
  std::string contents = *tree.Read("tiny.kvs");
  contents.replace(contents.find("tiny_stub:\n    ret"),
                   std::string("tiny_stub:\n    ret").size(),
                   "tiny_stub:\n    nop\n    ret");
  post.Write("tiny.kvs", contents);

  ksplice::CreateOptions options;
  options.compile = Monolithic();
  ks::Result<ksplice::CreateResult> created = ksplice::CreateUpdate(
      tree, kdiff::MakeUnifiedDiff(tree, post), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  ksplice::KspliceCore core(machine.get());
  ks::Result<ksplice::ApplyReport> applied = core.Apply(created->package);
  ASSERT_FALSE(applied.ok());
  EXPECT_NE(applied.status().message().find("too small"),
            std::string::npos);
  EXPECT_TRUE(core.applied().empty());
}

TEST(LimitsTest, ModuleArenaExhaustionIsGraceful) {
  SourceTree tree;
  tree.Write("m.kc", "int x = 1;\n");
  std::unique_ptr<kvm::Machine> machine = Boot(tree, 4u << 20);
  ASSERT_NE(machine, nullptr);
  // Grab blobs until the arena runs out; the failure must be a clean
  // ResourceExhausted, and previously loaded blobs stay intact.
  std::vector<kvm::ModuleHandle> handles;
  ks::Status last = ks::OkStatus();
  for (int i = 0; i < 1000; ++i) {
    ks::Result<kvm::ModuleHandle> blob =
        machine->LoadBlob("hog", 64 * 1024);
    if (!blob.ok()) {
      last = blob.status();
      break;
    }
    handles.push_back(*blob);
  }
  ASSERT_FALSE(last.ok());
  EXPECT_EQ(last.code(), ks::ErrorCode::kResourceExhausted);
  EXPECT_FALSE(handles.empty());
  // Freeing returns capacity: the next allocation succeeds again.
  ASSERT_TRUE(machine->UnloadModule(handles.back()).ok());
  EXPECT_TRUE(machine->LoadBlob("again", 64 * 1024).ok());
}

TEST(LimitsTest, StackSpaceExhaustionIsGraceful) {
  SourceTree tree;
  tree.Write("m.kc", "void idle(int n) {\n  sleep(n);\n}\n");
  std::unique_ptr<kvm::Machine> machine = Boot(tree, 4u << 20);
  ASSERT_NE(machine, nullptr);
  ks::Status last = ks::OkStatus();
  int spawned = 0;
  for (int i = 0; i < 10'000; ++i) {
    ks::Result<int> tid = machine->SpawnNamed("idle", 1'000'000, 64 * 1024);
    if (!tid.ok()) {
      last = tid.status();
      break;
    }
    ++spawned;
  }
  ASSERT_FALSE(last.ok());
  EXPECT_EQ(last.code(), ks::ErrorCode::kResourceExhausted);
  EXPECT_GT(spawned, 4);
}

TEST(LimitsTest, HaltInstructionPanicsTheKernel) {
  SourceTree tree;
  tree.Write("m.kvs", R"(
.text
.global do_panic
do_panic:
    halt
)");
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  ASSERT_TRUE(machine->SpawnNamed("do_panic", 0).ok());
  ks::Status run = machine->RunToCompletion();
  EXPECT_TRUE(machine->Halted());
  EXPECT_FALSE(run.ok());
  EXPECT_FALSE(machine->Faults().empty());
}

TEST(LimitsTest, LockHolderExitWithoutUnlockFaultsWaiters) {
  // A thread that exits while holding the big kernel lock starves the
  // waiters; RunToCompletion must report the stall rather than hang.
  SourceTree tree;
  tree.Write("m.kc", R"(
void holder(int unused) {
  lock_kernel();
  /* exits without unlocking */
}
void waiter(int unused) {
  lock_kernel();
  unlock_kernel();
}
)");
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  ASSERT_TRUE(machine->SpawnNamed("holder", 0).ok());
  ASSERT_TRUE(machine->Run(1'000).ok());
  ASSERT_TRUE(machine->SpawnNamed("waiter", 0).ok());
  ks::Status run = machine->RunToCompletion(1'000'000);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.code(), ks::ErrorCode::kAborted);
}

TEST(LimitsTest, GuardPageCatchesNullishAccesses) {
  SourceTree tree;
  tree.Write("m.kc", R"(
void poke(int addr) {
  int *p = (int*)addr;
  *p = 1;
  record(1, 1);
}
)");
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  // Addresses inside the guard page all fault; the first mapped address
  // does not.
  for (uint32_t addr : {0u, 4u, 0xffcu}) {
    ASSERT_TRUE(machine->SpawnNamed("poke", addr).ok());
    ASSERT_TRUE(machine->RunToCompletion().ok());
  }
  EXPECT_EQ(machine->Faults().size(), 3u);
  EXPECT_TRUE(machine->RecordsWithKey(1).empty());
}

}  // namespace
