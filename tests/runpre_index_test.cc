// Tests for the indexed run-pre matcher (two-stage: canonicalize + n-gram
// prefilter, then the precise verifier): canonical-form stability across
// assembler/linker perturbations, the prefilter-superset invariant
// ("prefilter proposes, verifier decides"), regression coverage for the
// fixed-window and branch-normalization overflow bugs, attempt-caching
// across fixpoint passes, the parallel section fan-out, per-candidate
// failure diagnostics, and a seeded fuzz round pitting the indexed matcher
// against the linear fallback.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "base/strings.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "kelf/objfile.h"
#include "ksplice/runpre.h"
#include "kvm/machine.h"
#include "kvx/isa.h"

namespace ksplice {
namespace {

using kdiff::SourceTree;

// Boots a machine from `tree` built monolithically and returns it plus the
// section-mode pre object for `unit` (same shape as runpre_test.cc).
struct MatchSetup {
  std::unique_ptr<kvm::Machine> machine;
  kelf::ObjectFile pre;
};

MatchSetup MakeSetup(const SourceTree& tree, const std::string& unit,
                     int inline_threshold = 24) {
  MatchSetup setup;
  kcc::CompileOptions run_options;
  run_options.inline_threshold = inline_threshold;
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, run_options);
  EXPECT_TRUE(objects.ok()) << objects.status().ToString();
  if (!objects.ok()) {
    return setup;
  }
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  EXPECT_TRUE(machine.ok()) << machine.status().ToString();
  if (!machine.ok()) {
    return setup;
  }
  setup.machine = std::move(machine).value();

  kcc::CompileOptions pre_options = run_options;
  pre_options.function_sections = true;
  pre_options.data_sections = true;
  ks::Result<kelf::ObjectFile> pre =
      kcc::CompileUnit(tree, unit, pre_options);
  EXPECT_TRUE(pre.ok()) << pre.status().ToString();
  if (pre.ok()) {
    setup.pre = std::move(pre).value();
  }
  return setup;
}

// Encoding helpers for hand-built code.
std::vector<uint8_t> EncodeAll(const std::vector<kvx::Insn>& insns) {
  std::vector<uint8_t> out;
  for (const kvx::Insn& insn : insns) {
    std::vector<uint8_t> bytes = kvx::Encode(insn);
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
  return out;
}

kvx::Insn RR(kvx::Op op, uint8_t r1, uint8_t r2) {
  kvx::Insn insn;
  insn.op = op;
  insn.reg1 = r1;
  insn.reg2 = r2;
  return insn;
}

kvx::Insn RI(kvx::Op op, uint8_t r1, uint32_t imm) {
  kvx::Insn insn;
  insn.op = op;
  insn.reg1 = r1;
  insn.imm = imm;
  return insn;
}

kvx::Insn Rel(kvx::Op op, int32_t rel) {
  kvx::Insn insn;
  insn.op = op;
  insn.rel = rel;
  return insn;
}

kvx::Insn Ret() {
  kvx::Insn insn;
  insn.op = kvx::Op::kRet;
  return insn;
}

// A pre object with a single text section `.text.<symbol>` defined by a
// global function symbol, no relocations.
kelf::ObjectFile MakePreObject(const std::string& symbol,
                               std::vector<uint8_t> bytes) {
  kelf::ObjectFile obj("handmade/" + symbol + ".kc");
  kelf::Section text;
  text.name = ".text." + symbol;
  text.kind = kelf::SectionKind::kText;
  text.align = 4;
  text.bytes = std::move(bytes);
  int text_idx = obj.AddSection(std::move(text));
  kelf::Symbol sym;
  sym.name = symbol;
  sym.binding = kelf::SymbolBinding::kGlobal;
  sym.kind = kelf::SymbolKind::kFunction;
  sym.section = text_idx;
  obj.AddSymbol(std::move(sym));
  return obj;
}

// ------------------------------------------------------------------
// Canonicalization (stage 1).

TEST(RunPreIndexTest, CanonicalFormIgnoresNopPaddingAndOperandBytes) {
  // The canonical form must be identical across everything an assembler or
  // linker may vary: nop padding, rel8-vs-rel32 branch width and
  // displacement values, and imm32 operand bytes (relocatable).
  std::vector<uint8_t> a = EncodeAll({
      RI(kvx::Op::kMovRI, 0, 0x11111111),
      RR(kvx::Op::kAddRR, 0, 1),
      Rel(kvx::Op::kJz32, 0x40),
      RR(kvx::Op::kSubRR, 2, 3),
      Ret(),
  });

  std::vector<uint8_t> b = EncodeAll({
      RI(kvx::Op::kMovRI, 0, 0x22222222),  // different imm32 (reloc result)
  });
  kvx::AppendNopFill(b, 7);  // alignment padding
  std::vector<uint8_t> tail = EncodeAll({
      RR(kvx::Op::kAddRR, 0, 1),
      Rel(kvx::Op::kJz8, 0x09),  // short branch form, other displacement
      RR(kvx::Op::kSubRR, 2, 3),
  });
  b.insert(b.end(), tail.begin(), tail.end());
  kvx::AppendNopFill(b, 3);
  std::vector<uint8_t> ret = EncodeAll({Ret()});
  b.insert(b.end(), ret.begin(), ret.end());

  CanonicalPrefix ca = CanonicalizeCode(a, 64);
  CanonicalPrefix cb = CanonicalizeCode(b, 64);
  EXPECT_TRUE(ca.decode_ok);
  EXPECT_TRUE(cb.decode_ok);
  EXPECT_EQ(ca.bytes, cb.bytes);
  EXPECT_EQ(CanonicalGramHash(ca.bytes), CanonicalGramHash(cb.bytes));

  // Register operands are NOT wildcarded: a different register must change
  // the canonical stream.
  std::vector<uint8_t> c = EncodeAll({
      RI(kvx::Op::kMovRI, 0, 0x11111111),
      RR(kvx::Op::kAddRR, 0, 5),  // r5 instead of r1
      Rel(kvx::Op::kJz32, 0x40),
      RR(kvx::Op::kSubRR, 2, 3),
      Ret(),
  });
  CanonicalPrefix cc = CanonicalizeCode(c, 64);
  EXPECT_NE(ca.bytes, cc.bytes);
}

TEST(RunPreIndexTest, PrefilterGramIsSupersetOfTrueMatches) {
  // Soundness of the prefilter: whenever the verifier accepts a
  // (section, candidate) pair, their canonical grams are equal — so an
  // index lookup can never prune a true match. Check it on real compiled
  // code: every matched section's pre canonical gram equals the gram of
  // the run bytes at its matched address.
  SourceTree tree;
  tree.Write("m.kc", R"(
int total = 0;
static int mix(int x) {
  int a = x * 3 + 1;
  int b = a * 5 + x;
  int c = b - a + x * 7;
  return a + b + c;
}
int entry(int x) {
  total = total + mix(x) + mix(x + 1) + mix(x + 2);
  return total;
}
)");
  MatchSetup setup = MakeSetup(tree, "m.kc", /*inline_threshold=*/0);
  ASSERT_NE(setup.machine, nullptr);
  RunPreMatcher matcher(*setup.machine);
  ks::Result<UnitMatch> match = matcher.MatchUnit(setup.pre);
  ASSERT_TRUE(match.ok()) << match.status().ToString();

  for (const auto& [name, matched] : match->sections) {
    const kelf::Section* section = nullptr;
    for (const kelf::Section& candidate : setup.pre.sections()) {
      if (candidate.name == name) {
        section = &candidate;
      }
    }
    ASSERT_NE(section, nullptr) << name;
    CanonicalPrefix pre_prefix =
        CanonicalizeCode(section->bytes, RunPreMatcher::kGramBytes);
    if (pre_prefix.bytes.size() < RunPreMatcher::kGramBytes) {
      continue;  // gram-incomplete sections are never pruned
    }
    // Fetch generously: the run rendering can be longer than the pre.
    ks::Result<std::vector<uint8_t>> run_bytes = setup.machine->ReadBytes(
        matched.run_address,
        static_cast<uint32_t>(section->bytes.size()) + 64);
    ASSERT_TRUE(run_bytes.ok()) << name;
    CanonicalPrefix run_prefix =
        CanonicalizeCode(*run_bytes, RunPreMatcher::kGramBytes);
    ASSERT_GE(run_prefix.bytes.size(), RunPreMatcher::kGramBytes) << name;
    EXPECT_EQ(
        CanonicalGramHash(std::span<const uint8_t>(pre_prefix.bytes)
                              .first(RunPreMatcher::kGramBytes)),
        CanonicalGramHash(std::span<const uint8_t>(run_prefix.bytes)
                              .first(RunPreMatcher::kGramBytes)))
        << name;
  }
}

TEST(RunPreIndexTest, PrefilterPrunesStructurallyDiverseCandidates) {
  // Two same-named statics with structurally different bodies: the
  // prefilter must prune the wrong copy (index_misses > 0) and the match
  // must agree with the linear fallback.
  SourceTree tree;
  tree.Write("a.kc", R"(
static int twin(int x) {
  return x + 1;
}
int entry_a(int x) {
  return twin(x) + twin(x + 1) + twin(x + 2) + twin(x + 3) + twin(x + 4)
       + twin(x + 5);
}
)");
  tree.Write("b.kc", R"(
static int twin(int x) {
  int a = x * 2 + 3;
  int b = a * 5 - x;
  int c = b + a * 7 - x * 11;
  int d = c - b + a;
  return a + b + c + d;
}
int entry_b(int x) {
  return twin(x) + twin(x + 1) + twin(x + 2) + twin(x + 3) + twin(x + 4)
       + twin(x + 5);
}
)");
  MatchSetup setup = MakeSetup(tree, "b.kc", /*inline_threshold=*/0);
  ASSERT_NE(setup.machine, nullptr);
  ASSERT_EQ(setup.machine->SymbolsNamed("twin").size(), 2u);

  RunPreMatcher indexed(*setup.machine);
  MatchStats indexed_stats;
  ks::Result<UnitMatch> indexed_match =
      indexed.MatchUnit(setup.pre, &indexed_stats);
  ASSERT_TRUE(indexed_match.ok()) << indexed_match.status().ToString();

  RunPreMatcher linear(*setup.machine, nullptr,
                       MatcherOptions{.use_index = false});
  MatchStats linear_stats;
  ks::Result<UnitMatch> linear_match =
      linear.MatchUnit(setup.pre, &linear_stats);
  ASSERT_TRUE(linear_match.ok()) << linear_match.status().ToString();

  EXPECT_EQ(indexed_match->symbol_values, linear_match->symbol_values);
  EXPECT_EQ(indexed_stats.sections_matched, linear_stats.sections_matched);
  // b.kc's twin is long enough for a complete gram, so the a.kc copy is
  // pruned by content hash: fewer verifications than the linear scan.
  EXPECT_GT(indexed_stats.index_misses, 0u);
  EXPECT_LT(indexed_stats.candidates_tried, linear_stats.candidates_tried);
}

// ------------------------------------------------------------------
// Bugfix regressions.

TEST(RunPreIndexTest, MatchesRunFunctionWithHeavyNopGrowth) {
  // Regression for the fixed `+256` run-window slack: a run rendering that
  // grew by more than 256 bytes of alignment padding used to falsely abort
  // with "run code ends early". The run image is now fetched in growing
  // chunks, so arbitrary growth matches.
  SourceTree tree;
  tree.Write("k.kc", R"(
int keep(int x) {
  return x + 1;
}
)");
  MatchSetup setup = MakeSetup(tree, "k.kc");
  ASSERT_NE(setup.machine, nullptr);

  std::vector<kvx::Insn> body = {
      RI(kvx::Op::kMovRI, 0, 0x1234),
      RR(kvx::Op::kAddRR, 0, 1),
      RR(kvx::Op::kSubRR, 0, 2),
      RR(kvx::Op::kMulRR, 0, 3),
      Ret(),
  };
  std::vector<uint8_t> pre_bytes = EncodeAll(body);

  // Run rendering: the same instructions with 120 bytes of nop fill after
  // each one — over 480 bytes of growth, far beyond any fixed slack.
  std::vector<uint8_t> run_bytes;
  for (const kvx::Insn& insn : body) {
    std::vector<uint8_t> one = kvx::Encode(insn);
    run_bytes.insert(run_bytes.end(), one.begin(), one.end());
    kvx::AppendNopFill(run_bytes, 120);
  }
  ks::Result<kvm::ModuleHandle> blob = setup.machine->LoadBlob(
      "padded-run", static_cast<uint32_t>(run_bytes.size()) + 16);
  ASSERT_TRUE(blob.ok());
  ks::Result<kvm::ModuleInfo> info = setup.machine->GetModuleInfo(*blob);
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(setup.machine->WriteBytes(info->base, run_bytes).ok());
  uint32_t run_addr = info->base;

  kelf::ObjectFile pre = MakePreObject("padded_fn", pre_bytes);
  auto redirect = [&](const std::string&, const std::string& symbol)
      -> std::optional<std::pair<uint32_t, uint32_t>> {
    if (symbol == "padded_fn") {
      return std::make_pair(run_addr,
                            static_cast<uint32_t>(run_bytes.size()));
    }
    return std::nullopt;
  };

  for (bool use_index : {true, false}) {
    RunPreMatcher matcher(*setup.machine, redirect,
                          MatcherOptions{.use_index = use_index});
    MatchStats stats;
    ks::Result<UnitMatch> match = matcher.MatchUnit(pre, &stats);
    ASSERT_TRUE(match.ok())
        << "use_index=" << use_index << ": " << match.status().ToString();
    ASSERT_TRUE(match->sections.count(".text.padded_fn"));
    EXPECT_EQ(match->sections[".text.padded_fn"].run_address, run_addr);
    // The matched span ends at the final ret; trailing nop fill is not
    // part of the function.
    EXPECT_GT(match->sections[".text.padded_fn"].run_size,
              4u * 120u + static_cast<uint32_t>(pre_bytes.size()) - 1u);
  }
}

TEST(RunPreIndexTest, NormalizeBranchTargetIs64BitSafe) {
  // Regression for the uint32_t overflow: with a window based near the
  // top of the 32-bit address space, `base + size` used to wrap and the
  // in-window check silently failed, skipping nop normalization.
  // Six single-byte nops, so every leading offset is an insn boundary.
  std::vector<uint8_t> window(6, 0x01);
  std::vector<uint8_t> tail = EncodeAll({RR(kvx::Op::kAddRR, 0, 1), Ret()});
  window.insert(window.end(), tail.begin(), tail.end());
  // Pad the window so base + size crosses 2^32 exactly when base is
  // 0xffffff00 (size 0x100 => end 0x100000000).
  kvx::AppendNopFill(window, 0x100 - window.size());
  ASSERT_EQ(window.size(), 0x100u);

  const uint64_t base = 0xffffff00u;
  // A target on the leading nop pad must normalize to the first real
  // instruction even though base + size == 2^32 (wraps to 0 in uint32).
  EXPECT_EQ(NormalizeBranchTarget(window, base, base), base + 6);
  EXPECT_EQ(NormalizeBranchTarget(window, base, base + 2), base + 6);
  // A non-nop target is returned unchanged.
  EXPECT_EQ(NormalizeBranchTarget(window, base, base + 6), base + 6);
  // Targets outside the window pass through untouched.
  EXPECT_EQ(NormalizeBranchTarget(window, base, 0x1000), 0x1000u);
  EXPECT_EQ(NormalizeBranchTarget(window, base, base - 1), base - 1);
}

TEST(RunPreIndexTest, BranchNormalizationWorksAtTopOfMemory) {
  // End-to-end variant: a function whose run rendering needs branch-target
  // nop normalization, placed as close to the top of a maximal 32-bit
  // address space as the machine allows. Seed arithmetic wrapped here.
  SourceTree tree;
  tree.Write("k.kc", R"(
int keep(int x) {
  return x + 1;
}
)");
  kcc::CompileOptions run_options;
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, run_options);
  ASSERT_TRUE(objects.ok());
  kvm::MachineConfig config;
  config.memory_bytes = 0xfffff000u;  // ~4 GiB image
  ks::Result<std::unique_ptr<kvm::Machine>> booted =
      kvm::Machine::Boot(std::move(objects).value(), config);
  if (!booted.ok()) {
    GTEST_SKIP() << "cannot boot a 4 GiB machine: "
                 << booted.status().ToString();
  }
  std::unique_ptr<kvm::Machine> machine = std::move(booted).value();

  // Pre: jmp8 over an add, landing exactly on the ret.
  //   0: jmp8 +3   (ends at 2, target 5)
  //   2: add r0,r1
  //   5: ret
  std::vector<uint8_t> pre_bytes = EncodeAll({
      Rel(kvx::Op::kJmp8, 3),
      RR(kvx::Op::kAddRR, 0, 1),
      Ret(),
  });
  // Run: the ret is pushed out by nop fill, so the branch target (still
  // offset 5) lands on nops and only normalization makes it correspond.
  std::vector<uint8_t> run_bytes = EncodeAll({
      Rel(kvx::Op::kJmp8, 3),
      RR(kvx::Op::kAddRR, 0, 1),
  });
  kvx::AppendNopFill(run_bytes, 5);
  std::vector<uint8_t> ret = EncodeAll({Ret()});
  run_bytes.insert(run_bytes.end(), ret.begin(), ret.end());

  // Within 256 bytes of the top of memory: the seed's uint32 window-end
  // arithmetic (run_start + window size) wraps past 2^32 here.
  uint32_t run_addr =
      config.memory_bytes - static_cast<uint32_t>(run_bytes.size()) - 8;
  ASSERT_TRUE(machine->WriteBytes(run_addr, run_bytes).ok());

  kelf::ObjectFile pre = MakePreObject("skyline_fn", pre_bytes);
  auto redirect = [&](const std::string&, const std::string& symbol)
      -> std::optional<std::pair<uint32_t, uint32_t>> {
    if (symbol == "skyline_fn") {
      return std::make_pair(run_addr,
                            static_cast<uint32_t>(run_bytes.size()));
    }
    return std::nullopt;
  };

  for (bool use_index : {true, false}) {
    RunPreMatcher matcher(*machine, redirect,
                          MatcherOptions{.use_index = use_index});
    ks::Result<UnitMatch> match = matcher.MatchUnit(pre);
    ASSERT_TRUE(match.ok())
        << "use_index=" << use_index << ": " << match.status().ToString();
    ASSERT_TRUE(match->sections.count(".text.skyline_fn"));
    EXPECT_EQ(match->sections[".text.skyline_fn"].run_address, run_addr);
    EXPECT_EQ(match->sections[".text.skyline_fn"].run_size,
              static_cast<uint32_t>(run_bytes.size()));
  }

  // Control: the same shape at a low address matches too.
  uint32_t low_addr = 0;
  {
    ks::Result<kvm::ModuleHandle> blob = machine->LoadBlob(
        "low-run", static_cast<uint32_t>(run_bytes.size()) + 8);
    ASSERT_TRUE(blob.ok());
    ks::Result<kvm::ModuleInfo> info = machine->GetModuleInfo(*blob);
    ASSERT_TRUE(info.ok());
    low_addr = info->base;
    ASSERT_TRUE(machine->WriteBytes(low_addr, run_bytes).ok());
  }
  RunPreMatcher control(
      *machine,
      [&](const std::string&, const std::string& symbol)
          -> std::optional<std::pair<uint32_t, uint32_t>> {
        if (symbol == "skyline_fn") {
          return std::make_pair(low_addr,
                                static_cast<uint32_t>(run_bytes.size()));
        }
        return std::nullopt;
      });
  ks::Result<UnitMatch> low_match = control.MatchUnit(pre);
  ASSERT_TRUE(low_match.ok()) << low_match.status().ToString();
}

TEST(RunPreIndexTest, AllCandidatesFailedReportsEachCandidate) {
  // Regression for the diagnostics bug: when every candidate of an
  // ambiguous symbol fails, the abort used to surface only the last
  // candidate's reason. It must now list each candidate's address and
  // failure (capped).
  SourceTree tree;
  tree.Write("a.kc", R"(
static int clone_fn(int x) {
  return x + 7;
}
int entry_a(int x) {
  return clone_fn(x) + clone_fn(x + 1) + clone_fn(x + 2) + clone_fn(x + 3)
       + clone_fn(x + 4) + clone_fn(x + 5);
}
)");
  tree.Write("b.kc", R"(
static int clone_fn(int x) {
  return x + 7;
}
int entry_b(int x) {
  return clone_fn(x) + clone_fn(x + 1) + clone_fn(x + 2) + clone_fn(x + 3)
       + clone_fn(x + 4) + clone_fn(x + 5);
}
)");
  MatchSetup setup = MakeSetup(tree, "b.kc", /*inline_threshold=*/0);
  ASSERT_NE(setup.machine, nullptr);
  std::vector<kelf::LinkedSymbol> copies =
      setup.machine->SymbolsNamed("clone_fn");
  ASSERT_EQ(copies.size(), 2u);

  // Tamper both run copies so neither can match the pre.
  for (const kelf::LinkedSymbol& copy : copies) {
    ASSERT_TRUE(setup.machine->WriteByte(copy.address, 0xee).ok());
  }

  for (bool use_index : {true, false}) {
    RunPreMatcher matcher(*setup.machine, nullptr,
                          MatcherOptions{.use_index = use_index});
    ks::Result<UnitMatch> match = matcher.MatchUnit(setup.pre);
    ASSERT_FALSE(match.ok()) << "use_index=" << use_index;
    const std::string& message = match.status().message();
    EXPECT_NE(message.find("matches no candidate (2 tried)"),
              std::string::npos)
        << message;
    // Both candidate addresses appear, each with a reason.
    for (const kelf::LinkedSymbol& copy : copies) {
      EXPECT_NE(message.find("candidate " + ks::Hex32(copy.address)),
                std::string::npos)
          << "use_index=" << use_index << "\n"
          << message;
    }
  }
}

// ------------------------------------------------------------------
// Fixpoint behavior: attempt caching, carry-forward, fan-out.

// A corpus whose ambiguity is only resolved by valuation propagated from a
// later section: `dep` copies are byte-identical, `work` copies differ
// only in which `dep` they call (recoverable either way), and the unique
// `entry_b` — last in section order — pins `dep` via its own call. Both
// `dep` and `work` must defer on pass 1 and resolve on pass 2 from the
// cached successes.
SourceTree CarryForwardTree() {
  SourceTree tree;
  tree.Write("a.kc", R"(
static int dep(int x) {
  return x + 7;
}
static int work(int x) {
  return dep(x) * 2 + dep(x + 1);
}
int entry_a(int x) {
  return work(x) + work(x + 1) + work(x + 2) + dep(x + 3);
}
)");
  tree.Write("b.kc", R"(
static int dep(int x) {
  return x + 7;
}
static int work(int x) {
  return dep(x) * 2 + dep(x + 1);
}
int entry_b(int x) {
  return work(x) + work(x + 1) + work(x + 2) + dep(x + 3);
}
)");
  return tree;
}

TEST(RunPreIndexTest, AmbiguitySuccessesCarryForwardAcrossPasses) {
  SourceTree tree = CarryForwardTree();
  MatchSetup setup = MakeSetup(tree, "b.kc", /*inline_threshold=*/0);
  ASSERT_NE(setup.machine, nullptr);
  ASSERT_EQ(setup.machine->SymbolsNamed("dep").size(), 2u);
  ASSERT_EQ(setup.machine->SymbolsNamed("work").size(), 2u);

  MatchStats indexed_stats;
  MatchStats linear_stats;
  ks::Result<UnitMatch> indexed_match = ks::Internal("unset");
  ks::Result<UnitMatch> linear_match = ks::Internal("unset");
  {
    RunPreMatcher matcher(*setup.machine);
    indexed_match = matcher.MatchUnit(setup.pre, &indexed_stats);
  }
  {
    RunPreMatcher matcher(*setup.machine, nullptr,
                          MatcherOptions{.use_index = false});
    linear_match = matcher.MatchUnit(setup.pre, &linear_stats);
  }
  ASSERT_TRUE(indexed_match.ok()) << indexed_match.status().ToString();
  ASSERT_TRUE(linear_match.ok()) << linear_match.status().ToString();
  EXPECT_EQ(indexed_match->symbol_values, linear_match->symbol_values);

  // Both modes: dep and work defer on pass 1 (two verifiable candidates
  // each), entry_b commits and pins the valuation, pass 2 resolves the
  // rest from cached successes.
  for (const MatchStats* stats : {&indexed_stats, &linear_stats}) {
    EXPECT_EQ(stats->fixpoint_passes, 2u);
    EXPECT_EQ(stats->ambiguity_deferrals, 2u);
    EXPECT_EQ(stats->sections_matched, 3u);
    // Exactly one verification per (section, candidate) pair ever: dep has
    // 2 candidates, work has 2, entry_b has 1 — five attempts, no re-walk
    // on pass 2 (this used to double-count).
    EXPECT_EQ(stats->candidates_tried, 5u);
    // Pass 2 re-checks cached successes against the grown valuation
    // instead of re-walking code.
    EXPECT_GE(stats->revalidations, 2u);
  }

  // The recovered statics must be b.kc's copies.
  for (const char* name : {"dep", "work"}) {
    uint32_t recovered = indexed_match->symbol_values.at(name);
    bool bound_to_b = false;
    for (const kelf::LinkedSymbol& sym : setup.machine->SymbolsNamed(name)) {
      if (sym.address == recovered && sym.unit == "b.kc") {
        bound_to_b = true;
      }
    }
    EXPECT_TRUE(bound_to_b) << name;
  }
}

TEST(RunPreIndexTest, ParallelFanOutMatchesSerialDecisions) {
  // The per-section fan-out must be invisible: same decisions, valuations
  // and deterministic counters at any worker count.
  SourceTree tree = CarryForwardTree();
  MatchSetup setup = MakeSetup(tree, "b.kc", /*inline_threshold=*/0);
  ASSERT_NE(setup.machine, nullptr);

  MatchStats serial_stats;
  RunPreMatcher serial(*setup.machine, nullptr,
                       MatcherOptions{.use_index = true, .jobs = 1});
  ks::Result<UnitMatch> serial_match =
      serial.MatchUnit(setup.pre, &serial_stats);
  ASSERT_TRUE(serial_match.ok()) << serial_match.status().ToString();

  MatchStats parallel_stats;
  RunPreMatcher parallel(*setup.machine, nullptr,
                         MatcherOptions{.use_index = true, .jobs = 4});
  ks::Result<UnitMatch> parallel_match =
      parallel.MatchUnit(setup.pre, &parallel_stats);
  ASSERT_TRUE(parallel_match.ok()) << parallel_match.status().ToString();

  EXPECT_EQ(serial_match->symbol_values, parallel_match->symbol_values);
  ASSERT_EQ(serial_match->sections.size(), parallel_match->sections.size());
  for (const auto& [name, matched] : serial_match->sections) {
    ASSERT_TRUE(parallel_match->sections.count(name)) << name;
    EXPECT_EQ(parallel_match->sections.at(name).run_address,
              matched.run_address)
        << name;
    EXPECT_EQ(parallel_match->sections.at(name).run_size, matched.run_size)
        << name;
  }
  EXPECT_EQ(serial_stats.candidates_tried, parallel_stats.candidates_tried);
  EXPECT_EQ(serial_stats.fixpoint_passes, parallel_stats.fixpoint_passes);
  EXPECT_EQ(serial_stats.ambiguity_deferrals,
            parallel_stats.ambiguity_deferrals);
}

// ------------------------------------------------------------------
// Seeded fuzz: the indexed matcher and the linear fallback must agree on
// every decision — acceptance, recovered valuation, matched sections, and
// the exact failure message — across random single-byte tampering of the
// run image.

TEST(RunPreIndexTest, SeededFuzzIndexedAndLinearAgree) {
  SourceTree tree;
  tree.Write("a.kc", R"(
static int pick(int x) {
  return x * 3 + 1;
}
int entry_a(int x) {
  return pick(x) + pick(x + 1) + pick(x + 2) + pick(x + 3) + pick(x + 4);
}
)");
  tree.Write("b.kc", R"(
static int pick(int x) {
  return x * 5 + 2;
}
static int gate(int x) {
  if (x > 3) {
    return pick(x) - 1;
  }
  return pick(x + 1) + 2;
}
int entry_b(int x) {
  return gate(x) + pick(x + 1) + gate(x + 2) + pick(x + 3) + gate(x + 4);
}
)");
  MatchSetup setup = MakeSetup(tree, "b.kc", /*inline_threshold=*/0);
  ASSERT_NE(setup.machine, nullptr);

  // The tamper surface: every run function's matched span.
  RunPreMatcher baseline(*setup.machine);
  ks::Result<UnitMatch> base_match = baseline.MatchUnit(setup.pre);
  ASSERT_TRUE(base_match.ok()) << base_match.status().ToString();
  struct Span {
    uint32_t address;
    uint32_t size;
  };
  std::vector<Span> spans;
  for (const auto& [name, matched] : base_match->sections) {
    spans.push_back(Span{matched.run_address, matched.run_size});
  }
  ASSERT_FALSE(spans.empty());

  uint64_t rng = 0x9e3779b97f4a7c15ull;  // fixed seed: reproducible
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  for (int round = 0; round < 24; ++round) {
    // Tamper one byte in one matched span (or none on round 0).
    uint32_t addr = 0;
    uint8_t original = 0;
    bool tampered = false;
    if (round != 0) {
      const Span& span = spans[next() % spans.size()];
      addr = span.address + static_cast<uint32_t>(next() % span.size);
      ks::Result<std::vector<uint8_t>> prev = setup.machine->ReadBytes(addr, 1);
      ASSERT_TRUE(prev.ok());
      original = (*prev)[0];
      uint8_t flipped = original ^ static_cast<uint8_t>(1u << (next() % 8));
      ASSERT_TRUE(setup.machine->WriteByte(addr, flipped).ok());
      tampered = true;
    }

    RunPreMatcher indexed(*setup.machine);
    RunPreMatcher linear(*setup.machine, nullptr,
                         MatcherOptions{.use_index = false});
    ks::Result<UnitMatch> indexed_match = indexed.MatchUnit(setup.pre);
    ks::Result<UnitMatch> linear_match = linear.MatchUnit(setup.pre);

    EXPECT_EQ(indexed_match.ok(), linear_match.ok()) << "round " << round;
    if (indexed_match.ok() && linear_match.ok()) {
      EXPECT_EQ(indexed_match->symbol_values, linear_match->symbol_values)
          << "round " << round;
      EXPECT_EQ(indexed_match->sections.size(),
                linear_match->sections.size())
          << "round " << round;
      for (const auto& [name, matched] : indexed_match->sections) {
        ASSERT_TRUE(linear_match->sections.count(name))
            << "round " << round << " " << name;
        EXPECT_EQ(linear_match->sections.at(name).run_address,
                  matched.run_address)
            << "round " << round << " " << name;
        EXPECT_EQ(linear_match->sections.at(name).run_size,
                  matched.run_size)
            << "round " << round << " " << name;
      }
    } else if (!indexed_match.ok() && !linear_match.ok()) {
      EXPECT_EQ(indexed_match.status().message(),
                linear_match.status().message())
          << "round " << round;
    }

    if (tampered) {
      ASSERT_TRUE(setup.machine->WriteByte(addr, original).ok());
    }
  }
}

}  // namespace
}  // namespace ksplice
