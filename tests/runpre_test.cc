// Focused tests for run-pre matching (§4): relocation-algebra recovery,
// no-op skipping, rel8/rel32 branch-form tolerance with byte skew,
// ambiguity resolution and its failure modes, and tamper detection.

#include <gtest/gtest.h>

#include "base/strings.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/runpre.h"
#include "kvm/machine.h"
#include "kvx/asm.h"

namespace ksplice {
namespace {

using kdiff::SourceTree;

// Boots a machine from `tree` built monolithically and returns it plus the
// section-mode pre object for `unit`.
struct MatchSetup {
  std::unique_ptr<kvm::Machine> machine;
  kelf::ObjectFile pre;
};

MatchSetup MakeSetup(const SourceTree& tree, const std::string& unit,
                int inline_threshold = 24) {
  MatchSetup setup;
  kcc::CompileOptions run_options;
  run_options.inline_threshold = inline_threshold;
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, run_options);
  EXPECT_TRUE(objects.ok()) << objects.status().ToString();
  if (!objects.ok()) {
    return setup;
  }
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  EXPECT_TRUE(machine.ok()) << machine.status().ToString();
  if (!machine.ok()) {
    return setup;
  }
  setup.machine = std::move(machine).value();

  kcc::CompileOptions pre_options = run_options;
  pre_options.function_sections = true;
  pre_options.data_sections = true;
  ks::Result<kelf::ObjectFile> pre =
      kcc::CompileUnit(tree, unit, pre_options);
  EXPECT_TRUE(pre.ok()) << pre.status().ToString();
  if (pre.ok()) {
    setup.pre = std::move(pre).value();
  }
  return setup;
}

TEST(RunPreTest, MatchesOwnBuildAndRecoversSymbols) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int counter = 5;
static int hidden = 9;
int touch(int d) {
  counter = counter + d;
  hidden = hidden + 1;
  return counter + hidden;
}
int reader() {
  return counter;
}
)");
  MatchSetup setup = MakeSetup(tree, "m.kc");
  ASSERT_NE(setup.machine, nullptr);
  RunPreMatcher matcher(*setup.machine);
  ks::Result<UnitMatch> match = matcher.MatchUnit(setup.pre);
  ASSERT_TRUE(match.ok()) << match.status().ToString();

  // Recovered values agree with kallsyms for every named symbol.
  for (const char* name : {"counter", "hidden", "touch", "reader"}) {
    auto it = match->symbol_values.find(name);
    ASSERT_NE(it, match->symbol_values.end()) << name;
    std::vector<kelf::LinkedSymbol> syms =
        setup.machine->SymbolsNamed(name);
    ASSERT_EQ(syms.size(), 1u) << name;
    EXPECT_EQ(it->second, syms[0].address) << name;
  }
  // Matched sections carry plausible run spans.
  ASSERT_TRUE(match->sections.count(".text.touch"));
  EXPECT_GE(match->sections[".text.touch"].run_size, 5u);
}

TEST(RunPreTest, AbortsWhenRunCodeWasTampered) {
  SourceTree tree;
  tree.Write("m.kc", R"(
int value = 3;
int get_value() {
  return value + 1;
}
)");
  MatchSetup setup = MakeSetup(tree, "m.kc");
  ASSERT_NE(setup.machine, nullptr);

  // Corrupt one byte inside get_value in the run image (a rootkit, a
  // different compiler, or wrong source — all look the same, §4.2).
  std::vector<kelf::LinkedSymbol> syms =
      setup.machine->SymbolsNamed("get_value");
  ASSERT_EQ(syms.size(), 1u);
  uint32_t mid = syms[0].address + 6;
  ASSERT_TRUE(setup.machine
                  ->WriteByte(mid, static_cast<uint8_t>(
                                       *setup.machine->ReadByte(mid) ^ 0x11))
                  .ok());

  RunPreMatcher matcher(*setup.machine);
  ks::Result<UnitMatch> match = matcher.MatchUnit(setup.pre);
  ASSERT_FALSE(match.ok());
  EXPECT_EQ(match.status().code(), ks::ErrorCode::kAborted);
  EXPECT_NE(match.status().message().find("run-pre"), std::string::npos);
}

TEST(RunPreTest, RelocationAlgebraIsExactInverse) {
  // Property: for any symbol address S, addend A, and site P, the matcher
  // recovers S from the stored word. Exercised end-to-end by matching a
  // unit with varied addends (array element references).
  SourceTree tree;
  tree.Write("m.kc", R"(
int table[8];
int pick(int which) {
  if (which == 0) {
    return table[2];
  }
  if (which == 1) {
    return table[5];
  }
  return table[7];
}
)");
  MatchSetup setup = MakeSetup(tree, "m.kc");
  ASSERT_NE(setup.machine, nullptr);
  RunPreMatcher matcher(*setup.machine);
  ks::Result<UnitMatch> match = matcher.MatchUnit(setup.pre);
  ASSERT_TRUE(match.ok()) << match.status().ToString();
  EXPECT_EQ(match->symbol_values["table"],
            setup.machine->SymbolsNamed("table")[0].address);
}

TEST(RunPreTest, ToleratesBranchFormSkewInAssembly) {
  // A hand-written unit with a cross-function jump: monolithic run build
  // resolves it as rel8; the sectioned pre build must use jmp32+reloc.
  // Every instruction after the jump is skewed by 3 bytes — the §4.3
  // "different relative jump offsets" case.
  SourceTree tree;
  tree.Write("e.kvs", R"(
.text
.global fastpath
fastpath:
    push fp
    mov fp, sp
    cmp r0, 0
    jnz .fast
    mov sp, fp
    pop fp
    jmp slowpath      ; tail jump: rel8 in run, rel32+reloc in pre
.fast:
    mov r0, 1
    mov sp, fp
    pop fp
    ret
.global slowpath
slowpath:
    push fp
    mov fp, sp
    mov r0, 2
    mov sp, fp
    pop fp
    ret
)");
  MatchSetup setup = MakeSetup(tree, "e.kvs");
  ASSERT_NE(setup.machine, nullptr);

  // Sanity: the run image's jz must be the short form, the pre's long.
  const kelf::Section* pre_sec = setup.pre.SectionByName(".text.fastpath");
  ASSERT_NE(pre_sec, nullptr);
  ASSERT_FALSE(pre_sec->relocs.empty());

  RunPreMatcher matcher(*setup.machine);
  ks::Result<UnitMatch> match = matcher.MatchUnit(setup.pre);
  ASSERT_TRUE(match.ok()) << match.status().ToString();
  EXPECT_EQ(match->symbol_values["slowpath"],
            setup.machine->SymbolsNamed("slowpath")[0].address);
}

TEST(RunPreTest, ResolvesAmbiguousSectionByContent) {
  // Two units define static `pick` with different bodies; matching one
  // unit's pre object must bind to the right copy by byte comparison.
  SourceTree tree;
  tree.Write("a.kc", R"(
static int pick(int x) {
  return x * 3 + 1;
}
int entry_a(int x) {
  return pick(x) + pick(x + 1) + pick(x + 2) + pick(x + 3) + pick(x + 4)
       + pick(x + 5) + pick(x + 6);
}
)");
  tree.Write("b.kc", R"(
static int pick(int x) {
  return x * 5 + 2;
}
int entry_b(int x) {
  return pick(x) + pick(x + 1) + pick(x + 2) + pick(x + 3) + pick(x + 4)
       + pick(x + 5) + pick(x + 6);
}
)");
  MatchSetup setup = MakeSetup(tree, "b.kc", /*inline_threshold=*/0);
  ASSERT_NE(setup.machine, nullptr);
  ASSERT_EQ(setup.machine->SymbolsNamed("pick").size(), 2u);

  RunPreMatcher matcher(*setup.machine);
  ks::Result<UnitMatch> match = matcher.MatchUnit(setup.pre);
  ASSERT_TRUE(match.ok()) << match.status().ToString();
  // The recovered `pick` must be b.kc's copy.
  uint32_t recovered = match->symbol_values["pick"];
  bool bound_to_b = false;
  for (const kelf::LinkedSymbol& sym : setup.machine->SymbolsNamed("pick")) {
    if (sym.address == recovered && sym.unit == "b.kc") {
      bound_to_b = true;
    }
  }
  EXPECT_TRUE(bound_to_b);
}

TEST(RunPreTest, AbortsOnIrreducibleAmbiguity) {
  // Two byte-identical static functions that nothing disambiguates: the
  // fixpoint cannot converge, and the matcher must refuse rather than
  // guess (§4.3 safety).
  SourceTree tree;
  tree.Write("a.kc", R"(
static int clone_fn(int x) {
  return x + 7;
}
int entry_a(int x) {
  return clone_fn(x) + clone_fn(x + 1) + clone_fn(x + 2) + clone_fn(x + 3)
       + clone_fn(x + 4) + clone_fn(x + 5);
}
)");
  tree.Write("b.kc", R"(
static int clone_fn(int x) {
  return x + 7;
}
int entry_b(int x) {
  return clone_fn(x) + clone_fn(x + 1) + clone_fn(x + 2) + clone_fn(x + 3)
       + clone_fn(x + 4) + clone_fn(x + 5);
}
)");
  MatchSetup setup = MakeSetup(tree, "a.kc", /*inline_threshold=*/0);
  ASSERT_NE(setup.machine, nullptr);

  RunPreMatcher matcher(*setup.machine);
  ks::Result<UnitMatch> match = matcher.MatchUnit(setup.pre);
  // clone_fn matches both candidates and entry_a pins it (entry_a's call
  // reloc recovers a specific address)... unless entry_a itself resolves
  // first. Either a successful, *consistent* resolution or an explicit
  // ambiguity abort is acceptable; silently wrong binding is not.
  if (match.ok()) {
    uint32_t recovered = match->symbol_values["clone_fn"];
    bool bound_to_a = false;
    for (const kelf::LinkedSymbol& sym :
         setup.machine->SymbolsNamed("clone_fn")) {
      if (sym.address == recovered && sym.unit == "a.kc") {
        bound_to_a = true;
      }
    }
    EXPECT_TRUE(bound_to_a)
        << "resolution must bind a.kc's copy via entry_a's relocation";
  } else {
    EXPECT_EQ(match.status().code(), ks::ErrorCode::kAborted);
  }
}

TEST(RunPreTest, MissingCandidateGivesActionableError) {
  SourceTree run_tree;
  run_tree.Write("m.kc", "int real_fn(int x) { return x; }\n");
  SourceTree wrong_tree;
  wrong_tree.Write("m.kc", "int ghost_fn(int x) { return x; }\n");

  MatchSetup setup = MakeSetup(run_tree, "m.kc");
  ASSERT_NE(setup.machine, nullptr);
  kcc::CompileOptions pre_options;
  pre_options.function_sections = true;
  pre_options.data_sections = true;
  ks::Result<kelf::ObjectFile> wrong_pre =
      kcc::CompileUnit(wrong_tree, "m.kc", pre_options);
  ASSERT_TRUE(wrong_pre.ok());

  RunPreMatcher matcher(*setup.machine);
  ks::Result<UnitMatch> match = matcher.MatchUnit(*wrong_pre);
  ASSERT_FALSE(match.ok());
  EXPECT_NE(match.status().message().find("ghost_fn"), std::string::npos);
  EXPECT_NE(match.status().message().find("correspond"), std::string::npos);
}

TEST(RunPreTest, RedirectMatchesReplacementCode) {
  // Stacking support (§5.4): with a redirect in place, matching happens
  // against the redirected address, not the kallsyms one.
  SourceTree tree;
  tree.Write("m.kc", R"(
int current = 1;
int api(int x) {
  current = current + x;
  return current;
}
)");
  MatchSetup setup = MakeSetup(tree, "m.kc");
  ASSERT_NE(setup.machine, nullptr);

  // Copy api's run bytes elsewhere (a fake "previous replacement") and
  // corrupt the original so only the redirect target matches.
  std::vector<kelf::LinkedSymbol> syms = setup.machine->SymbolsNamed("api");
  ASSERT_EQ(syms.size(), 1u);
  uint32_t orig = syms[0].address;
  uint32_t size = syms[0].size;
  ks::Result<std::vector<uint8_t>> bytes =
      setup.machine->ReadBytes(orig, size);
  ASSERT_TRUE(bytes.ok());
  ks::Result<kvm::ModuleHandle> blob =
      setup.machine->LoadBlob("fake-repl", size + 16);
  ASSERT_TRUE(blob.ok());
  ks::Result<kvm::ModuleInfo> info = setup.machine->GetModuleInfo(*blob);
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(setup.machine->WriteBytes(info->base, *bytes).ok());
  ASSERT_TRUE(setup.machine->WriteByte(orig + 6, 0xee).ok());  // corrupt

  uint32_t repl = info->base;
  RunPreMatcher matcher(
      *setup.machine,
      [&](const std::string& unit, const std::string& symbol)
          -> std::optional<std::pair<uint32_t, uint32_t>> {
        if (unit == "m.kc" && symbol == "api") {
          return std::make_pair(repl, size);
        }
        return std::nullopt;
      });
  ks::Result<UnitMatch> match = matcher.MatchUnit(setup.pre);
  ASSERT_TRUE(match.ok()) << match.status().ToString();
  EXPECT_EQ(match->sections[".text.api"].run_address, repl);
}

TEST(RunPreTest, ExtraneousPrePostStyleDifferencesStillAbortRunPre) {
  // §3.2's asymmetry: pre/post differences are harmless, but run/pre
  // differences abort. Build the pre from a semantically-identical but
  // textually different source: object bytes differ => abort.
  SourceTree run_tree;
  run_tree.Write("m.kc", R"(
int f(int x) {
  int y = x + 1;
  return y;
}
)");
  SourceTree variant;
  variant.Write("m.kc", R"(
int f(int x) {
  return x + 1;
}
)");
  MatchSetup setup = MakeSetup(run_tree, "m.kc");
  ASSERT_NE(setup.machine, nullptr);
  kcc::CompileOptions pre_options;
  pre_options.function_sections = true;
  pre_options.data_sections = true;
  ks::Result<kelf::ObjectFile> variant_pre =
      kcc::CompileUnit(variant, "m.kc", pre_options);
  ASSERT_TRUE(variant_pre.ok());
  RunPreMatcher matcher(*setup.machine);
  EXPECT_FALSE(matcher.MatchUnit(*variant_pre).ok());
}

TEST(RunPreTest, AlignmentAbsorbsSkewAndBranchTargetsNormalize) {
  // The hardest §4.3 case: a cross-function branch earlier in the function
  // is rel8 in the run build but rel32+reloc in the pre build (3 bytes of
  // skew), and an intra-function .align between the branch and a loop head
  // absorbs the skew with different amounts of no-op padding. The internal
  // back-branch to the aligned label then has *different displacements and
  // different padding* on each side, so target correspondence must
  // normalize across the no-ops.
  SourceTree tree;
  tree.Write("skew.kvs", R"(
.text
.global skew_fn
skew_fn:
    push fp
    mov fp, sp
    cmp r0, 0
    jnz .go_loop
    mov sp, fp
    pop fp
    jmp bail_out      ; cross-function: rel8 in run, rel32+reloc in pre
.go_loop:
    mov r1, 3
.align 8
.loop:
    sub r1, 1
    jnz .loop
    mov r0, 1
    mov sp, fp
    pop fp
    ret
.global bail_out
bail_out:
    push fp
    mov fp, sp
    mov r0, 2
    mov sp, fp
    pop fp
    ret
)");
  MatchSetup setup = MakeSetup(tree, "skew.kvs");
  ASSERT_NE(setup.machine, nullptr);

  // Confirm the constructed skew is real: pre uses jz32 (reloc), run jz8.
  const kelf::Section* pre_sec = setup.pre.SectionByName(".text.skew_fn");
  ASSERT_NE(pre_sec, nullptr);
  bool pre_has_pcrel = false;
  for (const kelf::Relocation& rel : pre_sec->relocs) {
    if (rel.type == kelf::RelocType::kPcrel32) {
      pre_has_pcrel = true;
    }
  }
  ASSERT_TRUE(pre_has_pcrel);

  RunPreMatcher matcher(*setup.machine);
  ks::Result<UnitMatch> match = matcher.MatchUnit(setup.pre);
  ASSERT_TRUE(match.ok()) << match.status().ToString();
  EXPECT_EQ(match->symbol_values["bail_out"],
            setup.machine->SymbolsNamed("bail_out")[0].address);

  // And the function still runs correctly (sanity that the construction
  // is executable, not just matchable). r0 is zero at thread start, so a
  // direct call takes the bail path.
  ks::Result<uint32_t> r0 = setup.machine->CallFunction(
      setup.machine->SymbolsNamed("skew_fn")[0].address, 0);
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  EXPECT_EQ(*r0, 2u);
}

}  // namespace
}  // namespace ksplice
