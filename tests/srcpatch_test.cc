// Tests for the source-level baseline: it works on easy patches and fails
// (or silently misses code) exactly where the paper says source-level
// systems must (§3.1, §4.1, §4.2, §6.3).

#include <gtest/gtest.h>

#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "kvm/machine.h"
#include "srcpatch/srcpatch.h"

namespace srcpatch {
namespace {

using kdiff::SourceTree;

SourceTree BaselineKernel() {
  SourceTree tree;
  tree.Write("api.h", R"(
int gate(int uid, int req);
int fanout(int a);
int tiny(int x);
int asm_fn();
)");
  tree.Write("gate.kc", R"(
int gate(int uid, int req) {
  if (req > 100) {
    return 1;
  }
  return uid == 0;
}
)");
  tree.Write("inline_host.kc", R"(
#include "api.h"
int tiny(int x) {
  return x + 1;
}
int fanout(int a) {
  return tiny(a) * 2;
}
)");
  tree.Write("dup_a.kc", R"(
static int mode = 3;
int read_mode_a(int unused) { return mode; }
)");
  tree.Write("dup_b.kc", R"(
static int mode = 9;
int read_mode_b(int unused) { return mode; }
)");
  tree.Write("statics.kc", R"(
int with_static(int d) {
  static int acc = 0;
  acc += d;
  return acc;
}
)");
  tree.Write("entry.kvs", R"(
.text
.global asm_fn
asm_fn:
    push fp
    mov fp, sp
    mov r0, 5
    mov sp, fp
    pop fp
    ret
)");
  tree.Write("probes.kc", R"(
#include "api.h"
void probe_gate(int req) { record(300, gate(7, req)); }
void probe_fanout(int a) { record(301, fanout(a)); }
)");
  return tree;
}

kcc::CompileOptions MonolithicBuild() {
  kcc::CompileOptions options;
  options.function_sections = false;
  options.data_sections = false;
  return options;
}

std::unique_ptr<kvm::Machine> BootBaseline(const SourceTree& tree) {
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, MonolithicBuild());
  EXPECT_TRUE(objects.ok()) << objects.status().ToString();
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  EXPECT_TRUE(machine.ok()) << machine.status().ToString();
  return machine.ok() ? std::move(machine).value() : nullptr;
}

std::string Edit(const SourceTree& tree, const std::string& path,
                 const std::string& from, const std::string& to) {
  SourceTree post = tree;
  std::string contents = *tree.Read(path);
  size_t at = contents.find(from);
  EXPECT_NE(at, std::string::npos) << from;
  contents.replace(at, from.size(), to);
  post.Write(path, contents);
  return kdiff::MakeUnifiedDiff(tree, post);
}

uint32_t Probe(kvm::Machine& machine, const std::string& name, uint32_t arg,
               uint32_t key) {
  EXPECT_TRUE(machine.SpawnNamed(name, arg).ok());
  EXPECT_TRUE(machine.RunToCompletion().ok());
  std::vector<uint32_t> records = machine.RecordsWithKey(key);
  EXPECT_FALSE(records.empty());
  return records.empty() ? 0xdeadbeef : records.back();
}

TEST(SourcePatchTest, AppliesSimpleBodyChange) {
  SourceTree tree = BaselineKernel();
  std::unique_ptr<kvm::Machine> machine = BootBaseline(tree);
  ASSERT_NE(machine, nullptr);
  EXPECT_EQ(Probe(*machine, "probe_gate", 150, 300), 1u);

  std::string patch = Edit(tree, "gate.kc", "return 1;", "return 0;");
  SourcePatchOptions options;
  options.compile = MonolithicBuild();
  ks::Result<Report> report =
      SourceLevelApply(*machine, tree, patch, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->outcome, Outcome::kApplied) << report->detail;
  EXPECT_EQ(report->replaced, std::vector<std::string>{"gate"});
  EXPECT_TRUE(report->missed.empty());

  EXPECT_EQ(Probe(*machine, "probe_gate", 150, 300), 0u);
}

TEST(SourcePatchTest, FailsOnAssemblyPatch) {
  SourceTree tree = BaselineKernel();
  std::string patch = Edit(tree, "entry.kvs", "mov r0, 5", "mov r0, 6");
  SourcePatchOptions options;
  options.compile = MonolithicBuild();
  ks::Result<Report> report = AnalyzeSourcePatch(tree, patch, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->outcome, Outcome::kFailedAssembly);
}

TEST(SourcePatchTest, FailsOnSignatureChange) {
  SourceTree tree = BaselineKernel();
  SourceTree post = tree;
  std::string contents = *tree.Read("gate.kc");
  size_t at = contents.find("int gate(int uid, int req)");
  ASSERT_NE(at, std::string::npos);
  contents.replace(at, std::string("int gate(int uid, int req)").size(),
                   "int gate(char uid, int req)");
  post.Write("gate.kc", contents);
  std::string patch = kdiff::MakeUnifiedDiff(tree, post);
  SourcePatchOptions options;
  options.compile = MonolithicBuild();
  ks::Result<Report> report = AnalyzeSourcePatch(tree, patch, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outcome, Outcome::kFailedSignature);
}

TEST(SourcePatchTest, FailsOnStaticLocal) {
  SourceTree tree = BaselineKernel();
  std::string patch =
      Edit(tree, "statics.kc", "acc += d;", "acc += d * 2;");
  SourcePatchOptions options;
  options.compile = MonolithicBuild();
  ks::Result<Report> report = AnalyzeSourcePatch(tree, patch, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outcome, Outcome::kFailedStaticLocal);
}

TEST(SourcePatchTest, FailsOnAmbiguousSymbol) {
  SourceTree tree = BaselineKernel();
  std::unique_ptr<kvm::Machine> machine = BootBaseline(tree);
  ASSERT_NE(machine, nullptr);
  // read_mode_a references `mode`, which exists in two units: the symbol
  // table cannot disambiguate (§4.1).
  std::string patch = Edit(tree, "dup_a.kc", "return mode;",
                           "return mode + 1;");
  SourcePatchOptions options;
  options.compile = MonolithicBuild();
  ks::Result<Report> report =
      SourceLevelApply(*machine, tree, patch, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->outcome, Outcome::kFailedAmbiguous) << report->detail;
}

TEST(SourcePatchTest, SilentlyMissesInlinedCopies) {
  SourceTree tree = BaselineKernel();
  std::unique_ptr<kvm::Machine> machine = BootBaseline(tree);
  ASSERT_NE(machine, nullptr);
  EXPECT_EQ(Probe(*machine, "probe_fanout", 10, 301), 22u);  // (10+1)*2

  // tiny() is inlined into fanout(); the baseline replaces only tiny.
  std::string patch =
      Edit(tree, "inline_host.kc", "return x + 1;", "return x + 5;");
  SourcePatchOptions options;
  options.compile = MonolithicBuild();
  ks::Result<Report> report =
      SourceLevelApply(*machine, tree, patch, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->outcome, Outcome::kApplied) << report->detail;
  // The analysis knows what it missed...
  ASSERT_EQ(report->missed.size(), 1u);
  EXPECT_NE(report->missed[0].find("fanout"), std::string::npos);
  // ...and the live kernel demonstrates the unsafety: fanout still runs
  // the OLD inlined copy (§4.2's data-corruption hazard in miniature).
  EXPECT_EQ(Probe(*machine, "probe_fanout", 10, 301), 22u);
}

TEST(SourcePatchTest, MissesHeaderDrivenCallerChanges) {
  // A header-only prototype change (paper §3.1): at source level no .kc
  // function changed at all.
  SourceTree tree = BaselineKernel();
  SourceTree post = tree;
  std::string h = *tree.Read("api.h");
  size_t at = h.find("int tiny(int x);");
  ASSERT_NE(at, std::string::npos);
  // (no body change; change a comment-free header line to a compatible
  // redeclaration that still alters callers' conversions)
  h.replace(at, std::string("int tiny(int x);").size(),
            "int tiny(char x);");
  post.Write("api.h", h);
  // Keep definition consistent.
  std::string def = *tree.Read("inline_host.kc");
  size_t dat = def.find("int tiny(int x)");
  ASSERT_NE(dat, std::string::npos);
  def.replace(dat, std::string("int tiny(int x)").size(),
              "int tiny(char x)");
  post.Write("inline_host.kc", def);
  std::string patch = kdiff::MakeUnifiedDiff(tree, post);

  SourcePatchOptions options;
  options.compile = MonolithicBuild();
  ks::Result<Report> report = AnalyzeSourcePatch(tree, patch, options);
  ASSERT_TRUE(report.ok());
  // Signature change detection fires here (good); the point is that a
  // source-level system cannot handle this class at all.
  EXPECT_NE(report->outcome, Outcome::kApplied);
}

TEST(SourcePatchTest, OutcomeNames) {
  EXPECT_STREQ(OutcomeName(Outcome::kApplied), "applied");
  EXPECT_STREQ(OutcomeName(Outcome::kFailedAmbiguous), "failed_ambiguous");
  EXPECT_STREQ(OutcomeName(Outcome::kFailedAssembly), "failed_assembly");
}

}  // namespace
}  // namespace srcpatch
