// Tests for the observability layer: trace spans (base/trace.h), the
// metrics registry (base/metrics.h), and the typed per-phase reports
// (ksplice/report.h) produced across a full create -> apply -> undo cycle.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/metrics.h"
#include "base/trace.h"
#include "kcc/compile.h"
#include "kcc/objcache.h"
#include "kdiff/diff.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "ksplice/runpre.h"
#include "kvm/machine.h"

namespace ksplice {
namespace {

using kdiff::SourceTree;

// --------------------------------------------------------- JSON checker
//
// A minimal recursive-descent JSON well-formedness checker, so the
// schema tests validate real syntax instead of grepping for braces.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;  // skip the escaped character
        if (pos_ >= text_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool ValidJson(const std::string& text) { return JsonChecker(text).Valid(); }

// Restores the global trace switch on scope exit so one test cannot leak
// tracing state into the next.
struct ScopedTrace {
  explicit ScopedTrace(bool enabled) {
    ks::ClearTrace();
    ks::SetTraceEnabled(enabled);
  }
  ~ScopedTrace() {
    ks::SetTraceEnabled(false);
    ks::ClearTrace();
  }
};

const ks::TraceEvent* FindEvent(const std::vector<ks::TraceEvent>& events,
                                const std::string& name) {
  for (const ks::TraceEvent& event : events) {
    if (event.name == name) {
      return &event;
    }
  }
  return nullptr;
}

// ------------------------------------------------------------ trace spans

TEST(TraceTest, SpansNestAndRecordDepth) {
  ScopedTrace trace(true);
  {
    ks::TraceSpan outer("test.outer");
    outer.AddTicks(5);
    outer.AddTicks(7);
    outer.Annotate("unit", std::string("sys/vuln.kc"));
    outer.Annotate("bytes", uint64_t{42});
    {
      ks::TraceSpan inner("test.inner");
      EXPECT_TRUE(inner.enabled());
      { ks::TraceSpan innermost("test.innermost"); }
    }
  }
  std::vector<ks::TraceEvent> events = ks::TraceSnapshot();
  ASSERT_EQ(events.size(), 3u);

  const ks::TraceEvent* outer = FindEvent(events, "test.outer");
  const ks::TraceEvent* inner = FindEvent(events, "test.inner");
  const ks::TraceEvent* innermost = FindEvent(events, "test.innermost");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(innermost, nullptr);

  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(innermost->depth, 2);
  EXPECT_EQ(outer->thread, inner->thread);

  // The outer span contains the inner one in time.
  EXPECT_LE(outer->start_ns, inner->start_ns);
  EXPECT_GE(outer->start_ns + outer->dur_ns, inner->start_ns + inner->dur_ns);

  // Ticks accumulate; annotations are preserved as strings.
  EXPECT_EQ(outer->ticks, 12u);
  ASSERT_EQ(outer->args.size(), 2u);
  EXPECT_EQ(outer->args[0].first, "unit");
  EXPECT_EQ(outer->args[0].second, "sys/vuln.kc");
  EXPECT_EQ(outer->args[1].second, "42");
}

TEST(TraceTest, DisabledModeRecordsNothing) {
  ScopedTrace trace(false);
  {
    ks::TraceSpan span("test.disabled");
    EXPECT_FALSE(span.enabled());
    span.AddTicks(100);
    span.Annotate("key", std::string("value"));
  }
  EXPECT_TRUE(ks::TraceSnapshot().empty());
  EXPECT_EQ(ks::TraceDropped(), 0u);
}

TEST(TraceTest, JsonExportIsWellFormedChromeTrace) {
  ScopedTrace trace(true);
  {
    ks::TraceSpan span("test.json_span");
    span.Annotate("note", std::string("with \"quotes\" and \\slashes\\"));
  }
  std::string json = ks::TraceJson();
  EXPECT_TRUE(ValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("test.json_span"), std::string::npos);

  // The summary mentions the span too.
  std::string summary = ks::TraceSummary();
  EXPECT_NE(summary.find("test.json_span"), std::string::npos);
}

// ------------------------------------------------------------- histograms

TEST(MetricsTest, HistogramPowerOfTwoBucketing) {
  ks::Histogram hist;
  for (uint64_t v : {1ull, 2ull, 3ull, 4ull, 1024ull}) {
    hist.Observe(v);
  }
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_EQ(hist.sum(), 1034u);
  EXPECT_EQ(hist.min(), 1u);
  EXPECT_EQ(hist.max(), 1024u);
  EXPECT_DOUBLE_EQ(hist.mean(), 1034.0 / 5.0);

  // Bucket i counts observations in (2^(i-1), 2^i].
  EXPECT_EQ(hist.bucket(0), 1u);   // 1
  EXPECT_EQ(hist.bucket(1), 1u);   // 2
  EXPECT_EQ(hist.bucket(2), 2u);   // 3, 4
  EXPECT_EQ(hist.bucket(10), 1u);  // 1024
  EXPECT_EQ(ks::Histogram::BucketBound(0), 1u);
  EXPECT_EQ(ks::Histogram::BucketBound(10), 1024u);

  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 0u);
}

TEST(MetricsTest, RegistryJsonRoundTrip) {
  ks::Counter& counter = ks::Metrics().GetCounter("test.roundtrip.counter");
  ks::Gauge& gauge = ks::Metrics().GetGauge("test.roundtrip.gauge");
  ks::Histogram& hist = ks::Metrics().GetHistogram("test.roundtrip.hist");
  counter.Reset();
  counter.Add(3);
  gauge.Set(-7);
  hist.Observe(5);

  std::string json = ks::Metrics().ToJson();
  EXPECT_TRUE(ValidJson(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.roundtrip.counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.roundtrip.gauge\":-7"), std::string::npos);

  // The same instrument comes back on lookup (stable references), and the
  // counter snapshot includes it.
  EXPECT_EQ(&counter, &ks::Metrics().GetCounter("test.roundtrip.counter"));
  std::map<std::string, uint64_t> values = ks::Metrics().CounterValues();
  ASSERT_NE(values.find("test.roundtrip.counter"), values.end());
  EXPECT_EQ(values["test.roundtrip.counter"], 3u);
}

TEST(MetricsTest, ObjectCacheHitsAndMissesReachTheRegistry) {
  kdiff::SourceTree tree;
  tree.Write("cached.kc", "int cached_fn(int x) { return x * 3 + 1; }\n");
  kcc::CompileOptions options;
  kcc::ObjectCache cache;

  uint64_t hits_before =
      ks::Metrics().GetCounter("kcc.objcache.hits").value();
  uint64_t misses_before =
      ks::Metrics().GetCounter("kcc.objcache.misses").value();

  bool was_hit = true;
  ASSERT_TRUE(cache.GetOrCompile(tree, "cached.kc", options, &was_hit).ok());
  EXPECT_FALSE(was_hit);
  ASSERT_TRUE(cache.GetOrCompile(tree, "cached.kc", options, &was_hit).ok());
  EXPECT_TRUE(was_hit);

  EXPECT_EQ(ks::Metrics().GetCounter("kcc.objcache.hits").value(),
            hits_before + 1);
  EXPECT_EQ(ks::Metrics().GetCounter("kcc.objcache.misses").value(),
            misses_before + 1);
}

// ----------------------------------------------- reports, full cycle

SourceTree MiniKernelTree() {
  SourceTree tree;
  tree.Write("kapi.h", "int check_access(int uid, int requested);\n");
  tree.Write("sys/vuln.kc", R"(
int check_access(int uid, int requested) {
  if (requested > 100) {
    return 1;
  }
  if (uid == 0) {
    return 1;
  }
  return 0;
}
)");
  tree.Write("sys/probes.kc", R"(
#include "kapi.h"
void probe_access(int requested) { record(200, check_access(1000, requested)); }
)");
  return tree;
}

kcc::CompileOptions MonolithicBuild() {
  kcc::CompileOptions options;
  options.function_sections = false;
  options.data_sections = false;
  return options;
}

std::string FixPatch(const SourceTree& tree) {
  SourceTree post = tree;
  std::string contents = *tree.Read("sys/vuln.kc");
  size_t at = contents.find("return 1;");
  EXPECT_NE(at, std::string::npos);
  contents.replace(at, 9, "return 0;");
  post.Write("sys/vuln.kc", contents);
  return kdiff::MakeUnifiedDiff(tree, post);
}

TEST(ReportTest, FullCyclePopulatesCreateApplyUndoReports) {
  ScopedTrace trace(true);
  SourceTree tree = MiniKernelTree();
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, MonolithicBuild());
  ASSERT_TRUE(objects.ok()) << objects.status().ToString();
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  ASSERT_TRUE(machine.ok()) << machine.status().ToString();

  CreateOptions options;
  options.compile = MonolithicBuild();
  options.id = "obs-test";
  ks::Result<CreateResult> created =
      CreateUpdate(tree, FixPatch(tree), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  // Create report: one unit rebuilt, the changed function identified by
  // name with plausible sizes, wall times measured and properly nested.
  const CreateReport& create_report = created->report;
  EXPECT_EQ(create_report.id, "obs-test");
  EXPECT_EQ(create_report.units_rebuilt, 1u);
  ASSERT_EQ(create_report.units.size(), 1u);
  EXPECT_EQ(create_report.units[0].unit, "sys/vuln.kc");
  EXPECT_GT(create_report.units[0].sections_compared, 0u);
  EXPECT_GT(create_report.units[0].sections_changed, 0u);
  EXPECT_GT(create_report.units[0].pre_text_bytes, 0u);
  EXPECT_EQ(create_report.targets, 1u);
  ASSERT_EQ(create_report.changed_functions.size(), 1u);
  EXPECT_EQ(create_report.changed_functions[0].symbol, "check_access");
  EXPECT_EQ(create_report.changed_functions[0].change, "modified");
  EXPECT_GT(create_report.changed_functions[0].pre_size, 0u);
  EXPECT_GT(create_report.changed_functions[0].post_size, 0u);
  EXPECT_GT(create_report.create_wall_ns, 0u);
  EXPECT_GE(create_report.create_wall_ns, create_report.prepost_wall_ns);
  EXPECT_TRUE(ValidJson(create_report.ToJson())) << create_report.ToJson();

  // MatchStats out-param on a direct matcher call.
  kcc::CompileOptions pre_options = MonolithicBuild();
  pre_options.function_sections = true;
  pre_options.data_sections = true;
  ks::Result<kelf::ObjectFile> pre =
      kcc::CompileUnit(tree, "sys/vuln.kc", pre_options);
  ASSERT_TRUE(pre.ok()) << pre.status().ToString();
  RunPreMatcher matcher(**machine);
  MatchStats stats;
  ASSERT_TRUE(matcher.MatchUnit(*pre, &stats).ok());
  EXPECT_GT(stats.sections_matched, 0u);
  EXPECT_GT(stats.candidates_tried, 0u);
  EXPECT_GT(stats.run_bytes_matched, 0u);
  // Indexed mode decodes each section and anchor once (canonicalized
  // counters) instead of re-walking pre bytes per candidate attempt.
  EXPECT_GT(stats.pre_bytes_canonicalized, 0u);
  EXPECT_GT(stats.run_bytes_canonicalized, 0u);
  EXPECT_GT(stats.symbols_recovered, 0u);
  EXPECT_GE(stats.fixpoint_passes, 1u);
  EXPECT_TRUE(ValidJson(stats.ToJson())) << stats.ToJson();

  // The linear fallback still reports the per-attempt byte walk, with
  // decisions identical to the indexed run.
  RunPreMatcher linear(**machine, nullptr,
                       MatcherOptions{.use_index = false});
  MatchStats linear_stats;
  ks::Result<UnitMatch> linear_match = linear.MatchUnit(*pre, &linear_stats);
  ASSERT_TRUE(linear_match.ok());
  EXPECT_GT(linear_stats.pre_bytes_walked, 0u);
  EXPECT_EQ(linear_stats.sections_matched, stats.sections_matched);
  EXPECT_EQ(linear_stats.candidates_tried, stats.candidates_tried);
  EXPECT_EQ(linear_stats.index_hits, 0u);
  EXPECT_EQ(linear_stats.index_misses, 0u);

  uint64_t applies_before = ks::Metrics().GetCounter("ksplice.applies").value();
  uint64_t pauses_before =
      ks::Metrics().GetHistogram("ksplice.stop_pause_ns").count();

  KspliceCore core(machine->get());
  ks::Result<ApplyReport> applied = core.Apply(created->package);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->id, "obs-test");
  ASSERT_EQ(applied->functions.size(), 1u);
  EXPECT_EQ(applied->functions[0].symbol, "check_access");
  EXPECT_GT(applied->functions[0].trampoline_bytes, 0u);
  EXPECT_GE(applied->attempts, 1);
  EXPECT_EQ(applied->quiescence_retries, applied->attempts - 1);
  EXPECT_GT(applied->trampoline_bytes, 0u);
  EXPECT_GT(applied->primary_bytes, 0u);
  EXPECT_GT(applied->helper_bytes, 0u);
  EXPECT_FALSE(applied->helper_retained);
  EXPECT_GT(applied->match.sections_matched, 0u);
  EXPECT_GT(applied->match.run_bytes_matched, 0u);
  EXPECT_TRUE(ValidJson(applied->ToJson())) << applied->ToJson();

  // The per-process aggregates moved in step with the report.
  EXPECT_EQ(ks::Metrics().GetCounter("ksplice.applies").value(),
            applies_before + 1);
  EXPECT_EQ(ks::Metrics().GetHistogram("ksplice.stop_pause_ns").count(),
            pauses_before + 1);

  ks::Result<UndoReport> undone = core.Undo(applied->id);
  ASSERT_TRUE(undone.ok()) << undone.status().ToString();
  EXPECT_EQ(undone->id, "obs-test");
  EXPECT_EQ(undone->functions_restored, 1u);
  EXPECT_GE(undone->attempts, 1);
  EXPECT_GT(undone->bytes_restored, 0u);
  EXPECT_EQ(undone->bytes_restored, applied->trampoline_bytes);
  EXPECT_GT(undone->primary_bytes_reclaimed, 0u);
  EXPECT_TRUE(ValidJson(undone->ToJson())) << undone->ToJson();

  // The traced pipeline left spans for every phase.
  std::vector<ks::TraceEvent> events = ks::TraceSnapshot();
  EXPECT_NE(FindEvent(events, "create.update"), nullptr);
  EXPECT_NE(FindEvent(events, "prepost.run"), nullptr);
  EXPECT_NE(FindEvent(events, "runpre.match_unit"), nullptr);
  EXPECT_NE(FindEvent(events, "ksplice.apply"), nullptr);
  EXPECT_NE(FindEvent(events, "ksplice.undo"), nullptr);
}

TEST(ReportTest, MatchStatsCountEachCandidateAttemptOnce) {
  // Regression: deferred ambiguous sections used to re-try (and re-count)
  // every candidate on every fixpoint pass, inflating candidates_tried and
  // pre_bytes_walked. With the attempt cache each (section, candidate)
  // pair is verified exactly once, however many passes run.
  SourceTree tree;
  // Two same-named static functions with different bodies: the ambiguous
  // unit defers on pass 1 (both `pick` copies match some candidate until
  // the valuation narrows) only if content alone cannot decide — here the
  // bodies differ, so content decides in one pass, but both candidates
  // must still be tried exactly once.
  tree.Write("a.kc", R"(
static int pick(int x) {
  return x * 3 + 1;
}
int entry_a(int x) {
  return pick(x) + pick(x + 1) + pick(x + 2) + pick(x + 3) + pick(x + 4)
       + pick(x + 5) + pick(x + 6);
}
)");
  tree.Write("b.kc", R"(
static int pick(int x) {
  return x * 5 + 2;
}
int entry_b(int x) {
  return pick(x) + pick(x + 1) + pick(x + 2) + pick(x + 3) + pick(x + 4)
       + pick(x + 5) + pick(x + 6);
}
)");
  kcc::CompileOptions run_options;
  run_options.inline_threshold = 0;
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, run_options);
  ASSERT_TRUE(objects.ok()) << objects.status().ToString();
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), kvm::MachineConfig{});
  ASSERT_TRUE(machine.ok()) << machine.status().ToString();
  ASSERT_EQ((*machine)->SymbolsNamed("pick").size(), 2u);

  kcc::CompileOptions pre_options = run_options;
  pre_options.function_sections = true;
  pre_options.data_sections = true;
  ks::Result<kelf::ObjectFile> pre =
      kcc::CompileUnit(tree, "b.kc", pre_options);
  ASSERT_TRUE(pre.ok()) << pre.status().ToString();

  // Linear mode, so the prefilter cannot reduce the candidate count: the
  // unit has two sections (.text.pick with 2 candidates, .text.entry_b
  // with 1), hence exactly 3 verification attempts — even if ambiguity
  // forces extra fixpoint passes. The b.kc copy of `pick` differs from
  // a.kc's in imm32 constants only, which run-pre content comparison
  // resolves directly.
  RunPreMatcher linear(**machine, nullptr,
                       MatcherOptions{.use_index = false});
  MatchStats linear_stats;
  ks::Result<UnitMatch> linear_match =
      linear.MatchUnit(*pre, &linear_stats);
  ASSERT_TRUE(linear_match.ok()) << linear_match.status().ToString();
  EXPECT_EQ(linear_stats.sections_matched, 2u);
  EXPECT_EQ(linear_stats.candidates_tried, 3u);
  EXPECT_EQ(linear_stats.ambiguity_deferrals, 0u);
  EXPECT_EQ(linear_stats.fixpoint_passes, 1u);

  // The per-attempt pre byte walk is bounded by one full walk of each
  // attempted (section, candidate) pair: no multiple of it can be charged
  // again by later passes.
  const kelf::ObjectFile& pre_obj = *pre;
  uint64_t text_bytes = 0;
  uint64_t pick_bytes = 0;
  for (const kelf::Section& section : pre_obj.sections()) {
    if (section.kind != kelf::SectionKind::kText || section.bytes.empty()) {
      continue;
    }
    text_bytes += section.bytes.size();
    if (section.name == ".text.pick") {
      pick_bytes = section.bytes.size();
    }
  }
  ASSERT_GT(pick_bytes, 0u);
  // 3 attempts: both `pick` candidates walk up to .text.pick bytes, the
  // unique entry_b candidate walks its section once.
  EXPECT_LE(linear_stats.pre_bytes_walked, text_bytes + pick_bytes);
  EXPECT_GT(linear_stats.pre_bytes_walked, 0u);

  // Indexed mode agrees on every decision and never exceeds the linear
  // attempt count.
  RunPreMatcher indexed(**machine);
  MatchStats indexed_stats;
  ks::Result<UnitMatch> indexed_match =
      indexed.MatchUnit(*pre, &indexed_stats);
  ASSERT_TRUE(indexed_match.ok()) << indexed_match.status().ToString();
  EXPECT_EQ(indexed_match->symbol_values, linear_match->symbol_values);
  EXPECT_EQ(indexed_stats.sections_matched, 2u);
  EXPECT_LE(indexed_stats.candidates_tried, linear_stats.candidates_tried);
  EXPECT_EQ(indexed_stats.fixpoint_passes, linear_stats.fixpoint_passes);
}

}  // namespace
}  // namespace ksplice
