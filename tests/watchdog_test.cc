// Post-apply safety net tests (ksplice/watchdog.h, ksplice/quarantine.h,
// fleet soak): a bad patch that applies cleanly and only regresses under
// load is detected within the soak window, attributed to the offending
// update by faulting PC, auto-reverted byte-identically through the undo
// path, and quarantined by package content hash — while innocent
// co-applied updates stay. The fleet layer does the same per node and
// escalates a tripped wave to fleet-wide rollback plus a package
// blacklist, deterministically at any worker count.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "base/faultinject.h"
#include "fleet/fleet.h"
#include "fleet/rollout.h"
#include "kcc/compile.h"
#include "kdiff/diff.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "ksplice/quarantine.h"
#include "ksplice/watchdog.h"
#include "kvm/machine.h"

namespace ksplice {
namespace {

using fleet::Fleet;
using fleet::NodeSpec;
using fleet::RolloutPlan;
using fleet::RunRollout;
using kdiff::SourceTree;

// The injector is process-global; every test starts and ends disarmed.
class WatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override { ks::Faults().Reset(); }
  void TearDown() override { ks::Faults().Reset(); }
};
using FleetSoakTest = WatchdogTest;

kcc::CompileOptions Monolithic() {
  kcc::CompileOptions options;
  options.function_sections = false;
  options.data_sections = false;
  return options;
}

// Two independently patchable units plus workload entries. alpha_op
// carries a BUG() guarded by a never-true condition: the "bad" patch
// rewrites the guard so the trap fires on every call — an update that
// applies cleanly and only oopses under load. beta_bug faults in code no
// update ever touches (the attribution-correctness control).
SourceTree WatchKernel() {
  SourceTree tree;
  tree.Write("alpha.kc", R"(
int alpha_state = 100;
int alpha_guard = 9999;
int alpha_op(int x) {
  int a = x + 1; int b = a + 2; int c = b + 3; int d = c + 4;
  int e = d + 5; int f = e + 6; int g = f + 7; int h = g + 8;
  if (x == alpha_guard) {
    BUG();
  }
  return a + b + c + d + e + f + g + h + alpha_state;
}
void alpha_probe(int x) {
  record(11, alpha_op(x));
}
void alpha_load(int n) {
  int i = 0;
  while (i < n) {
    record(11, alpha_op(i));
    i = i + 1;
  }
}
)");
  tree.Write("beta.kc", R"(
int beta_state = 200;
int beta_op(int x) {
  int a = x * 2; int b = a + 5; int c = b * 2; int d = c + 7;
  int e = d + 3; int f = e * 2; int g = f + 9; int h = g + 4;
  return a + b + c + d + e + f + g + h + beta_state;
}
void beta_probe(int x) {
  record(22, beta_op(x));
}
void beta_bug(int x) {
  if (x >= 0) {
    BUG();
  }
  record(22, x);
}
)");
  tree.Write("spin.kc", R"(
int spin_flag = 1;
int spin_pad = 0;
int spin_op(int n) {
  while (spin_flag) {
    spin_pad = spin_pad + 1;
  }
  return spin_pad + n;
}
void spinner(int n) {
  record(55, spin_op(n));
}
)");
  return tree;
}

std::unique_ptr<kvm::Machine> Boot(const SourceTree& tree,
                                   uint32_t max_log_lines = 4096) {
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(tree, Monolithic());
  EXPECT_TRUE(objects.ok());
  kvm::MachineConfig config;
  config.max_log_lines = max_log_lines;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  EXPECT_TRUE(machine.ok());
  return machine.ok() ? std::move(machine).value() : nullptr;
}

std::string EditTree(const SourceTree& tree, const std::string& path,
                     const std::string& from, const std::string& to) {
  SourceTree post = tree;
  std::string contents = *tree.Read(path);
  size_t at = contents.find(from);
  EXPECT_NE(at, std::string::npos);
  contents.replace(at, from.size(), to);
  post.Write(path, contents);
  return kdiff::MakeUnifiedDiff(tree, post);
}

ks::Result<CreateResult> Create(const SourceTree& tree,
                                const std::string& patch,
                                const std::string& id) {
  CreateOptions options;
  options.compile = Monolithic();
  options.id = id;
  return CreateUpdate(tree, patch, options);
}

// The update that applies cleanly and BUGs on every alpha_op call.
UpdatePackage BadAlphaPackage(const SourceTree& tree,
                              const std::string& id) {
  ks::Result<CreateResult> created = Create(
      tree, EditTree(tree, "alpha.kc", "x == alpha_guard", "x >= 0"), id);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return created.ok() ? std::move(created->package) : UpdatePackage{};
}

// A benign behavior change in beta.kc (the innocent co-applied update).
UpdatePackage InnocentBetaPackage(const SourceTree& tree,
                                  const std::string& id) {
  ks::Result<CreateResult> created = Create(
      tree, EditTree(tree, "beta.kc", "int b = a + 5;", "int b = a + 50;"),
      id);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return created.ok() ? std::move(created->package) : UpdatePackage{};
}

std::vector<uint8_t> KernelImage(const kvm::Machine& machine) {
  ks::Result<std::vector<uint8_t>> bytes = machine.ReadBytes(
      machine.config().kernel_base,
      machine.kernel_end() - machine.config().kernel_base);
  EXPECT_TRUE(bytes.ok());
  return bytes.ok() ? *bytes : std::vector<uint8_t>{};
}

WatchdogOptions FastSoak() {
  WatchdogOptions options;
  options.soak_ticks = 200'000;
  options.sample_ticks = 5'000;
  options.revert_backoff_ticks = 2'000;
  return options;
}

// --------------------------------------------------- kvm health surface

TEST_F(WatchdogTest, BoundedLogsDropOldestAndCountDrops) {
  SourceTree tree = WatchKernel();
  std::unique_ptr<kvm::Machine> machine = Boot(tree, /*max_log_lines=*/4);
  ASSERT_NE(machine, nullptr);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(machine->SpawnNamed("beta_bug", i).ok());
    (void)machine->RunToCompletion();
  }
  // The monotonic counter sees every fault; the rings retain only the
  // newest max_log_lines entries and account for what they evicted.
  EXPECT_EQ(machine->FaultCount(), 8u);
  EXPECT_LE(machine->FaultRecords().size(), 4u);
  EXPECT_LE(machine->Faults().size(), 4u);
  EXPECT_GT(machine->DroppedLogLines(), 0u);
  // The ring keeps the newest records.
  EXPECT_GE(machine->FaultRecords().back().tick,
            machine->FaultRecords().front().tick);
}

// ------------------------------------------------- detection/attribution

// The full end-to-end demo: a bad patch applies cleanly, regresses under
// load inside the soak window, is attributed by faulting PC, reverted
// byte-identically, and quarantined — and the innocent co-applied update
// survives untouched.
TEST_F(WatchdogTest, BadPatchDetectedAttributedRevertedQuarantined) {
  SourceTree tree = WatchKernel();
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  KspliceCore core(machine.get());

  UpdatePackage innocent = InnocentBetaPackage(tree, "innocent");
  ASSERT_TRUE(core.Apply(innocent).ok());
  const std::vector<uint8_t> with_innocent = KernelImage(*machine);

  UpdatePackage bad = BadAlphaPackage(tree, "bad");
  const uint64_t bad_hash = PackageContentHash(bad);
  ASSERT_TRUE(core.Apply(bad).ok());
  ASSERT_EQ(core.applied().size(), 2u);

  ASSERT_TRUE(machine->SpawnNamed("alpha_load", 16).ok());
  HealthMonitor monitor(&core.manager(), FastSoak());
  WatchdogReport report = monitor.Soak();

  ASSERT_GE(report.faults_seen, 1u);
  ASSERT_GE(report.faults_attributed, 1u);
  ASSERT_FALSE(report.attributed.empty());
  EXPECT_EQ(report.attributed[0].update, "bad");
  EXPECT_EQ(report.attributed[0].symbol, "alpha_op");
  EXPECT_NE(report.attributed[0].reason.find("BUG"), std::string::npos);
  EXPECT_TRUE(report.window_closed);

  ASSERT_EQ(report.reverts.size(), 1u);
  const RevertReport& revert = report.reverts[0];
  EXPECT_EQ(revert.id, "bad");
  EXPECT_EQ(revert.package_hash, bad_hash);
  EXPECT_TRUE(revert.reverted);
  EXPECT_TRUE(revert.quarantined);
  EXPECT_EQ(monitor.state(), WatchdogState::kQuarantined);

  // Byte-identical revert: only the innocent update remains, and the
  // kernel image is exactly the innocent-only image.
  ASSERT_EQ(core.applied().size(), 1u);
  EXPECT_EQ(core.applied()[0].id, "innocent");
  EXPECT_EQ(KernelImage(*machine), with_innocent);

  // The status report carries the evidence: per-update attributed-fault
  // counts, machine health, and the quarantine entry.
  StatusReport status = core.Status();
  ASSERT_EQ(status.updates.size(), 1u);
  EXPECT_EQ(status.updates[0].attributed_faults, 0u);
  EXPECT_GE(status.health.faults_attributed, 1u);
  ASSERT_EQ(status.quarantine.size(), 1u);
  EXPECT_EQ(status.quarantine[0].id, "bad");
  EXPECT_EQ(status.quarantine[0].package_hash, bad_hash);
  std::string json = status.ToJson();
  EXPECT_NE(json.find("\"quarantine\""), std::string::npos);
  EXPECT_NE(json.find("\"health\""), std::string::npos);
}

// A fault in code no update touches must never trigger a revert: the
// watchdog reports it as unattributed and the update stack survives.
TEST_F(WatchdogTest, FaultInUnpatchedCodeIsNotAttributed) {
  SourceTree tree = WatchKernel();
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  KspliceCore core(machine.get());
  UpdatePackage innocent = InnocentBetaPackage(tree, "innocent");
  ASSERT_TRUE(core.Apply(innocent).ok());

  // beta_bug traps in pristine kernel text, far from any replacement
  // range or primary module.
  ASSERT_TRUE(machine->SpawnNamed("beta_bug", 1).ok());
  HealthMonitor monitor(&core.manager(), FastSoak());
  WatchdogReport report = monitor.Soak();

  EXPECT_GE(report.faults_seen, 1u);
  EXPECT_EQ(report.faults_attributed, 0u);
  ASSERT_FALSE(report.unattributed.empty());
  EXPECT_NE(report.unattributed[0].find("BUG"), std::string::npos);
  EXPECT_TRUE(report.reverts.empty());
  EXPECT_EQ(monitor.state(), WatchdogState::kMonitoring);
  ASSERT_EQ(core.applied().size(), 1u);
  EXPECT_TRUE(core.quarantine().Entries().empty());
}

// A fault that lands after the soak window closes is attributed and
// reported as evidence, but never auto-reverted.
TEST_F(WatchdogTest, PostWindowFaultReportedNotReverted) {
  SourceTree tree = WatchKernel();
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  KspliceCore core(machine.get());
  UpdatePackage bad = BadAlphaPackage(tree, "bad");
  ASSERT_TRUE(core.Apply(bad).ok());

  // Nothing runs during the window, so it closes clean.
  HealthMonitor monitor(&core.manager(), FastSoak());
  WatchdogReport during = monitor.Soak();
  EXPECT_EQ(during.faults_attributed, 0u);
  EXPECT_TRUE(during.reverts.empty());

  // The regression fires after the window: evidence, not a revert.
  ASSERT_TRUE(machine->SpawnNamed("alpha_load", 4).ok());
  (void)machine->RunToCompletion();
  monitor.Poll();
  const WatchdogReport& report = monitor.report();
  EXPECT_GE(report.faults_attributed, 1u);
  EXPECT_TRUE(report.reverts.empty());
  EXPECT_EQ(monitor.state(), WatchdogState::kAttributed);
  ASSERT_EQ(core.applied().size(), 1u);
  EXPECT_EQ(core.applied()[0].id, "bad");
  EXPECT_TRUE(core.quarantine().Entries().empty());
}

// ----------------------------------------------------------- quarantine

TEST_F(WatchdogTest, QuarantinedPackageRefusedWithoutForce) {
  SourceTree tree = WatchKernel();
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  KspliceCore core(machine.get());
  UpdatePackage bad = BadAlphaPackage(tree, "bad");
  const uint64_t bad_hash = PackageContentHash(bad);
  ASSERT_TRUE(core.Apply(bad).ok());
  ASSERT_TRUE(machine->SpawnNamed("alpha_load", 8).ok());
  HealthMonitor monitor(&core.manager(), FastSoak());
  monitor.Soak();
  ASSERT_TRUE(core.applied().empty());
  ASSERT_TRUE(core.quarantine().Contains(bad_hash));

  // Refused by content hash, with the evidence in the error.
  ks::Result<ApplyReport> refused = core.Apply(bad);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), ks::ErrorCode::kFailedPrecondition);
  EXPECT_NE(refused.status().message().find("quarantined"),
            std::string::npos);

  // Re-creating the package from the same tree and patch does not sneak
  // it past: identical contents hash to the same key regardless of which
  // file they came from.
  UpdatePackage recreated = BadAlphaPackage(tree, "bad");
  EXPECT_EQ(PackageContentHash(recreated), bad_hash);
  EXPECT_FALSE(core.Apply(recreated).ok());

  // --force applies it and clears the quarantine entry.
  ApplyOptions force;
  force.force = true;
  ks::Result<ApplyReport> forced = core.Apply(bad, force);
  ASSERT_TRUE(forced.ok()) << forced.status().ToString();
  EXPECT_FALSE(core.quarantine().Contains(bad_hash));
  ASSERT_TRUE(core.Undo("bad").ok());
}

// --------------------------------------------------------- revert drill

// An injected failure on the first revert attempt exercises the backoff:
// the retry runs suppressed, succeeds, and the restore is byte-identical.
TEST_F(WatchdogTest, RevertBackoffRetriesAfterInjectedFailure) {
  SourceTree tree = WatchKernel();
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  const std::vector<uint8_t> pristine = KernelImage(*machine);
  KspliceCore core(machine.get());
  UpdatePackage bad = BadAlphaPackage(tree, "bad");
  ASSERT_TRUE(core.Apply(bad).ok());
  ASSERT_TRUE(machine->SpawnNamed("alpha_load", 8).ok());

  ASSERT_TRUE(ks::Faults().Configure("ksplice.watchdog.revert=once").ok());
  HealthMonitor monitor(&core.manager(), FastSoak());
  WatchdogReport report = monitor.Soak();
  ks::Faults().Reset();

  ASSERT_EQ(report.reverts.size(), 1u);
  const RevertReport& revert = report.reverts[0];
  EXPECT_EQ(revert.attempts, 2);
  EXPECT_GT(revert.backoff_ticks, 0u);
  EXPECT_TRUE(revert.reverted);
  EXPECT_TRUE(revert.quarantined);
  EXPECT_TRUE(core.applied().empty());
  EXPECT_EQ(KernelImage(*machine), pristine);
}

// When every revert attempt fails (a thread parked inside the patched
// function starves quiescence), the update stays FULLY applied — never
// half-reverted — and the quarantine entry carries the undo error as
// diagnostics.
TEST_F(WatchdogTest, FailedRevertStaysFullyAppliedAndQuarantines) {
  SourceTree tree = WatchKernel();
  std::unique_ptr<kvm::Machine> machine = Boot(tree);
  ASSERT_NE(machine, nullptr);
  KspliceCore core(machine.get());
  ks::Result<CreateResult> created = Create(
      tree,
      EditTree(tree, "spin.kc", "spin_pad = spin_pad + 1;",
               "spin_pad = spin_pad + 2;"),
      "spin");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  const uint64_t spin_hash = PackageContentHash(created->package);
  ASSERT_TRUE(core.Apply(created->package).ok());

  // The spinner legitimately bumps the spin_pad global while the revert
  // backs off; zero that word in both snapshots so the comparison checks
  // code and untouched data, not the workload's own stores.
  ks::Result<uint32_t> pad = machine->GlobalSymbol("spin_pad");
  ASSERT_TRUE(pad.ok());
  const size_t pad_off = *pad - machine->config().kernel_base;
  auto masked_image = [&](const kvm::Machine& m) {
    std::vector<uint8_t> bytes = KernelImage(m);
    for (size_t i = 0; i < 4 && pad_off + i < bytes.size(); ++i) {
      bytes[pad_off + i] = 0;
    }
    return bytes;
  };
  const std::vector<uint8_t> patched = masked_image(*machine);

  // Park a thread inside the patched replacement code.
  ASSERT_TRUE(machine->SpawnNamed("spinner", 7).ok());
  ASSERT_TRUE(machine->Run(10'000).ok());

  WatchdogOptions options = FastSoak();
  options.max_revert_attempts = 2;
  options.rendezvous.max_attempts = 2;
  options.rendezvous.backoff_base_ticks = 500;
  options.rendezvous.backoff_max_ticks = 1'000;
  HealthMonitor monitor(&core.manager(), options);
  AttributedFault trigger;
  trigger.update = "spin";
  trigger.reason = "synthetic drill: operator-forced revert";
  ks::Result<RevertReport> revert = monitor.Revert("spin", trigger);
  ASSERT_TRUE(revert.ok()) << revert.status().ToString();

  EXPECT_FALSE(revert->reverted);
  EXPECT_EQ(revert->attempts, 2);
  EXPECT_FALSE(revert->error.empty());
  EXPECT_TRUE(revert->quarantined);
  EXPECT_EQ(monitor.state(), WatchdogState::kQuarantined);

  // Restore-or-abort: fully applied, byte-identical to the patched image.
  ASSERT_EQ(core.applied().size(), 1u);
  EXPECT_EQ(masked_image(*machine), patched);
  std::optional<QuarantineEntry> entry =
      core.quarantine().Find(spin_hash);
  ASSERT_TRUE(entry.has_value());
  EXPECT_NE(entry->evidence.find("revert failed"), std::string::npos);

  // Unwedge: once the spinner yields, a clean undo still works.
  ks::Result<uint32_t> flag = machine->GlobalSymbol("spin_flag");
  ASSERT_TRUE(flag.ok());
  ASSERT_TRUE(machine->WriteWord(*flag, 0).ok());
  ASSERT_TRUE(machine->RunToCompletion().ok());
  ASSERT_TRUE(core.Undo("spin").ok());
}

// Seeded chaos round: the same KSPLICE_CHAOS_SEED reproduces the same
// watchdog outcome (sampling-pass faults included).
TEST_F(WatchdogTest, ChaosSeedReproducesWatchdogRun) {
  uint64_t seed = 0xBADC0DE;
  if (const char* env = std::getenv("KSPLICE_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 0);
  }
  std::printf("[chaos] KSPLICE_CHAOS_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  SourceTree tree = WatchKernel();

  auto run_once = [&tree, seed]() {
    ks::Faults().Reset();
    std::unique_ptr<kvm::Machine> machine = Boot(tree);
    EXPECT_NE(machine, nullptr);
    KspliceCore core(machine.get());
    UpdatePackage bad = BadAlphaPackage(tree, "bad");
    EXPECT_TRUE(core.Apply(bad).ok());
    EXPECT_TRUE(machine->SpawnNamed("alpha_load", 8).ok());
    ks::Faults().SetSeed(seed);
    ks::Faults().ArmProbability("ksplice.watchdog.sample", 0.5);
    ks::Faults().ArmProbability("ksplice.watchdog.revert", 0.5);
    HealthMonitor monitor(&core.manager(), FastSoak());
    WatchdogReport report = monitor.Soak();
    ks::Faults().Reset();
    struct Outcome {
      uint64_t samples;
      uint64_t attributed;
      size_t reverts;
      int attempts;
      bool reverted;
      size_t applied;
      bool operator==(const Outcome&) const = default;
    };
    Outcome outcome;
    outcome.samples = report.samples;
    outcome.attributed = report.faults_attributed;
    outcome.reverts = report.reverts.size();
    outcome.attempts =
        report.reverts.empty() ? 0 : report.reverts[0].attempts;
    outcome.reverted =
        report.reverts.empty() ? false : report.reverts[0].reverted;
    outcome.applied = core.applied().size();
    return outcome;
  };

  auto first = run_once();
  auto second = run_once();
  EXPECT_EQ(first, second);
  // Retries run suppressed, so even a probability plan cannot wedge the
  // revert: once triggered it always lands by the second attempt.
  if (first.reverts > 0) {
    EXPECT_TRUE(first.reverted);
    EXPECT_EQ(first.applied, 0u);
  }
}

// ----------------------------------------------------------- fleet soak

Fleet MakeWatchFleet(const SourceTree& tree, size_t nodes) {
  Fleet fleet;
  for (size_t i = 0; i < nodes; ++i) {
    std::unique_ptr<kvm::Machine> machine = Boot(tree);
    EXPECT_NE(machine, nullptr);
    NodeSpec spec;
    spec.id = "node-" + std::to_string(i);
    spec.version = "v1";
    EXPECT_TRUE(fleet.AddNode(spec, std::move(machine)).ok());
  }
  return fleet;
}

RolloutPlan SoakPlan(Quarantine* blacklist, int max_in_flight) {
  RolloutPlan plan;
  plan.canary_fraction = 0.0;
  plan.canary_min = 2;
  plan.wave_size = 0;
  plan.max_in_flight = max_in_flight;
  plan.abort_failure_fraction = 0.0;
  plan.soak_ticks = 200'000;
  plan.soak_entry = "alpha_load";
  plan.soak_arg = 8;
  plan.blacklist = blacklist;
  return plan;
}

// The fleet-scale demo: a canary wave soaks under load, both canaries
// auto-revert, the wave trips, the rollout aborts, and the blamed
// package lands in the fleet blacklist — identically at any worker
// count, and a rollout handed that blacklist refuses the package.
TEST_F(FleetSoakTest, SoakAutoRevertsTripsAndBlacklistsDeterministically) {
  SourceTree tree = WatchKernel();
  std::vector<UpdatePackage> packages;
  packages.push_back(BadAlphaPackage(tree, "bad"));
  const uint64_t bad_hash = PackageContentHash(packages[0]);

  auto run = [&](int max_in_flight, Quarantine* blacklist) {
    Fleet fleet = MakeWatchFleet(tree, 4);
    ks::Result<RolloutReport> report =
        RunRollout(fleet, packages, SoakPlan(blacklist, max_in_flight));
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    // Every auto-reverted node is byte-identical to an unpatched boot:
    // its core carries no updates.
    for (size_t i = 0; i < fleet.size(); ++i) {
      EXPECT_TRUE(fleet.core(i).applied().empty());
    }
    return report.ok() ? std::move(report).value() : RolloutReport{};
  };

  Quarantine serial_blacklist;
  RolloutReport serial = run(1, &serial_blacklist);
  EXPECT_TRUE(serial.aborted);
  EXPECT_EQ(serial.auto_reverted, 2u);
  EXPECT_EQ(serial.not_attempted, 2u);
  ASSERT_EQ(serial.wave_reports.size(), 1u);
  EXPECT_TRUE(serial.wave_reports[0].tripped);
  EXPECT_EQ(serial.wave_reports[0].auto_reverted, 2u);
  ASSERT_EQ(serial.blacklisted.size(), 1u);
  EXPECT_TRUE(serial_blacklist.Contains(bad_hash));

  // Determinism across worker counts: same per-node outcomes, same
  // blacklist.
  Quarantine parallel_blacklist;
  RolloutReport parallel = run(8, &parallel_blacklist);
  EXPECT_EQ(serial.blacklisted, parallel.blacklisted);
  EXPECT_EQ(serial.auto_reverted, parallel.auto_reverted);
  ASSERT_EQ(serial.nodes.size(), parallel.nodes.size());
  for (size_t i = 0; i < serial.nodes.size(); ++i) {
    EXPECT_EQ(serial.nodes[i].outcome, parallel.nodes[i].outcome) << i;
    EXPECT_EQ(serial.nodes[i].soak_faults, parallel.nodes[i].soak_faults)
        << i;
  }

  // The blacklist gate: the same package is refused before any node is
  // touched.
  Fleet fresh = MakeWatchFleet(tree, 2);
  ks::Result<RolloutReport> refused =
      RunRollout(fresh, packages, SoakPlan(&serial_blacklist, 1));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), ks::ErrorCode::kFailedPrecondition);
  EXPECT_NE(refused.status().message().find("blacklisted"),
            std::string::npos);
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_TRUE(fresh.core(i).applied().empty());
  }
}

// A healthy package soaks clean: no reverts, no trip, no blacklist.
TEST_F(FleetSoakTest, HealthyPackageSurvivesSoak) {
  SourceTree tree = WatchKernel();
  std::vector<UpdatePackage> packages;
  packages.push_back(InnocentBetaPackage(tree, "innocent"));
  Quarantine blacklist;
  Fleet fleet = MakeWatchFleet(tree, 3);
  ks::Result<RolloutReport> report =
      RunRollout(fleet, packages, SoakPlan(&blacklist, 2));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->aborted);
  EXPECT_EQ(report->patched, 3u);
  EXPECT_EQ(report->auto_reverted, 0u);
  EXPECT_TRUE(report->blacklisted.empty());
  EXPECT_EQ(blacklist.size(), 0u);
  for (size_t i = 0; i < fleet.size(); ++i) {
    ASSERT_EQ(fleet.core(i).applied().size(), 1u);
    EXPECT_EQ(fleet.core(i).applied()[0].id, "innocent");
  }
}

}  // namespace
}  // namespace ksplice
