// ksplice_tool: command-line front end mirroring the paper's §5 workflow
// over on-disk source trees.
//
//   ksplice_tool build   <srcdir>                       compile & report
//   ksplice_tool create  <srcdir> <patch> <out.kspl>    = ksplice-create
//   ksplice_tool inspect <pkg.kspl>                     show a package
//   ksplice_tool demo    <srcdir> <patch> [entry [arg]] boot + hot update
//   ksplice_tool disasm  <srcdir> <unit>                disassemble a unit
//   ksplice_tool export-corpus <dir>                    write the 64-CVE
//                                                       corpus kernel +
//                                                       patches to disk
//
// Source trees on disk contain .kc (KC), .kvs (assembly), and .h files;
// paths are taken relative to <srcdir>.

#include <filesystem>
#include <fstream>
#include <cstdio>

#include "base/strings.h"
#include "corpus/corpus.h"
#include "kcc/compile.h"
#include "kcc/objcache.h"
#include "kdiff/diff.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "kvm/machine.h"
#include "kvx/isa.h"

namespace {

namespace fs = std::filesystem;

ks::Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return ks::NotFound("cannot read " + path.string());
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return contents;
}

ks::Status WriteFile(const fs::path& path, const std::string& contents) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return ks::Internal("cannot write " + path.string());
  }
  out << contents;
  return ks::OkStatus();
}

// Loads every .kc/.kvs/.h file under `dir` into a SourceTree.
ks::Result<kdiff::SourceTree> LoadTree(const std::string& dir) {
  kdiff::SourceTree tree;
  if (!fs::is_directory(dir)) {
    return ks::NotFound(dir + " is not a directory");
  }
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::string ext = entry.path().extension().string();
    if (ext != ".kc" && ext != ".kvs" && ext != ".h") {
      continue;
    }
    KS_ASSIGN_OR_RETURN(std::string contents, ReadFile(entry.path()));
    tree.Write(fs::relative(entry.path(), dir).generic_string(),
               std::move(contents));
  }
  if (tree.size() == 0) {
    return ks::NotFound("no .kc/.kvs/.h files under " + dir);
  }
  return tree;
}

int Fail(const ks::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Build-side parallelism (-j N; 0 = one worker per hardware thread) and
// the tool-lifetime object cache. Only creation fans out — apply-side
// semantics in `demo` are untouched.
int g_jobs = 1;

kcc::ObjectCache& ToolCache() {
  static kcc::ObjectCache* cache = new kcc::ObjectCache();
  return *cache;
}

kcc::CompileOptions DefaultBuild() {
  kcc::CompileOptions options;  // monolithic, like a shipped kernel
  options.jobs = g_jobs;
  options.cache = &ToolCache();
  return options;
}

// ---------------------------------------------------------------- build

int CmdBuild(const std::string& dir) {
  ks::Result<kdiff::SourceTree> tree = LoadTree(dir);
  if (!tree.ok()) {
    return Fail(tree.status());
  }
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(*tree, DefaultBuild());
  if (!objects.ok()) {
    return Fail(objects.status());
  }
  size_t text = 0;
  size_t symbols = 0;
  for (const kelf::ObjectFile& obj : *objects) {
    for (const kelf::Section& section : obj.sections()) {
      if (section.kind == kelf::SectionKind::kText) {
        text += section.bytes.size();
      }
    }
    symbols += obj.symbols().size();
  }
  std::printf("%zu units, %zu text bytes, %zu symbols\n", objects->size(),
              text, symbols);
  return 0;
}

// --------------------------------------------------------------- create

int CmdCreate(const std::string& dir, const std::string& patch_path,
              const std::string& out_path) {
  ks::Result<kdiff::SourceTree> tree = LoadTree(dir);
  if (!tree.ok()) {
    return Fail(tree.status());
  }
  ks::Result<std::string> patch = ReadFile(patch_path);
  if (!patch.ok()) {
    return Fail(patch.status());
  }
  ksplice::CreateOptions options;
  options.compile = DefaultBuild();
  ks::Result<ksplice::CreateResult> created =
      ksplice::CreateUpdate(*tree, *patch, options);
  if (!created.ok()) {
    return Fail(created.status());
  }
  std::vector<uint8_t> bytes = created->package.Serialize();
  ks::Status written = WriteFile(
      out_path, std::string(bytes.begin(), bytes.end()));
  if (!written.ok()) {
    return Fail(written);
  }
  std::printf("Ksplice update %s written to %s (%zu bytes, %zu targets)\n",
              created->package.id.c_str(), out_path.c_str(), bytes.size(),
              created->package.targets.size());
  return 0;
}

// -------------------------------------------------------------- inspect

int CmdInspect(const std::string& pkg_path) {
  ks::Result<std::string> raw = ReadFile(pkg_path);
  if (!raw.ok()) {
    return Fail(raw.status());
  }
  ks::Result<ksplice::UpdatePackage> pkg = ksplice::UpdatePackage::Parse(
      std::vector<uint8_t>(raw->begin(), raw->end()));
  if (!pkg.ok()) {
    return Fail(pkg.status());
  }
  std::printf("update id : %s\n", pkg->id.c_str());
  std::printf("targets   : %zu\n", pkg->targets.size());
  for (const ksplice::Target& target : pkg->targets) {
    std::printf("  %s  (%s in %s)\n", target.symbol.c_str(),
                target.section.c_str(), target.unit.c_str());
  }
  std::printf("helper    : %zu unit(s)\n", pkg->helper_objects.size());
  for (const kelf::ObjectFile& obj : pkg->helper_objects) {
    std::printf("  %s: %zu sections, %zu symbols\n",
                obj.source_name().c_str(), obj.sections().size(),
                obj.symbols().size());
  }
  std::printf("primary   : %zu unit(s)\n", pkg->primary_objects.size());
  for (const kelf::ObjectFile& obj : pkg->primary_objects) {
    for (const kelf::Section& section : obj.sections()) {
      std::printf("  %s %s (%u bytes, %zu relocs)\n",
                  obj.source_name().c_str(), section.name.c_str(),
                  section.size(), section.relocs.size());
    }
  }
  return 0;
}

// ----------------------------------------------------------------- demo

int CmdDemo(const std::string& dir, const std::string& patch_path,
            const std::string& entry, uint32_t arg) {
  ks::Result<kdiff::SourceTree> tree = LoadTree(dir);
  if (!tree.ok()) {
    return Fail(tree.status());
  }
  ks::Result<std::string> patch = ReadFile(patch_path);
  if (!patch.ok()) {
    return Fail(patch.status());
  }
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(*tree, DefaultBuild());
  if (!objects.ok()) {
    return Fail(objects.status());
  }
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  if (!machine.ok()) {
    return Fail(machine.status());
  }
  // Kernels conventionally export a kernel_init entry; run it if present.
  if ((*machine)->GlobalSymbol("kernel_init").ok()) {
    ks::Result<int> init = (*machine)->SpawnNamed("kernel_init", 0);
    if (init.ok()) {
      (void)(*machine)->RunToCompletion();
      std::printf("ran kernel_init\n");
    }
  }
  auto run_entry = [&](const char* when) {
    if (entry.empty()) {
      return;
    }
    ks::Result<int> tid = (*machine)->SpawnNamed(entry, arg);
    if (!tid.ok()) {
      std::printf("%s: cannot run %s: %s\n", when, entry.c_str(),
                  tid.status().ToString().c_str());
      return;
    }
    (void)(*machine)->RunToCompletion();
    std::printf("%s: ran %s(%u); records:", when, entry.c_str(), arg);
    for (const auto& [key, value] : (*machine)->Records()) {
      std::printf(" (%u,%u)", key, value);
    }
    std::printf("\n");
    for (const std::string& line : (*machine)->PrintkLog()) {
      std::printf("%s: printk: %s\n", when, line.c_str());
    }
  };
  run_entry("before");

  ksplice::CreateOptions options;
  options.compile = DefaultBuild();
  ks::Result<ksplice::CreateResult> created =
      ksplice::CreateUpdate(*tree, *patch, options);
  if (!created.ok()) {
    return Fail(created.status());
  }
  ksplice::KspliceCore core(machine->get());
  ks::Result<std::string> applied = core.Apply(created->package);
  if (!applied.ok()) {
    return Fail(applied.status());
  }
  std::printf("applied %s (%zu functions replaced)\n", applied->c_str(),
              core.applied()[0].functions.size());
  run_entry("after");
  return 0;
}

// --------------------------------------------------------------- disasm

int CmdDisasm(const std::string& dir, const std::string& unit) {
  ks::Result<kdiff::SourceTree> tree = LoadTree(dir);
  if (!tree.ok()) {
    return Fail(tree.status());
  }
  kcc::CompileOptions options;
  options.function_sections = true;
  options.data_sections = true;
  ks::Result<kelf::ObjectFile> obj = kcc::CompileUnit(*tree, unit, options);
  if (!obj.ok()) {
    return Fail(obj.status());
  }
  for (const kelf::Section& section : obj->sections()) {
    if (section.kind != kelf::SectionKind::kText) {
      continue;
    }
    std::printf("%s:\n%s", section.name.c_str(),
                kvx::Disassemble(section.bytes, 0).c_str());
    for (const kelf::Relocation& rel : section.relocs) {
      std::printf("  reloc +0x%04x %s %s%+d\n", rel.offset,
                  rel.type == kelf::RelocType::kAbs32 ? "abs32" : "pcrel32",
                  obj->symbols()[static_cast<size_t>(rel.symbol)].name.c_str(),
                  rel.addend);
    }
  }
  return 0;
}

// -------------------------------------------------------- export-corpus

int CmdExportCorpus(const std::string& dir) {
  const kdiff::SourceTree& tree = corpus::KernelSource();
  for (const std::string& path : tree.Paths()) {
    ks::Status written =
        WriteFile(fs::path(dir) / "src" / path, *tree.Read(path));
    if (!written.ok()) {
      return Fail(written);
    }
  }
  int patches = 0;
  for (const corpus::Vulnerability& vuln : corpus::Vulnerabilities()) {
    ks::Result<std::string> patch = corpus::PatchFor(vuln);
    if (!patch.ok()) {
      return Fail(patch.status());
    }
    ks::Status written = WriteFile(
        fs::path(dir) / "patches" / (vuln.cve + ".patch"), *patch);
    if (!written.ok()) {
      return Fail(written);
    }
    ++patches;
    if (vuln.needs_custom_code) {
      ks::Result<std::string> amended = corpus::AmendedPatchFor(vuln);
      if (amended.ok()) {
        (void)WriteFile(
            fs::path(dir) / "patches" / (vuln.cve + ".custom.patch"),
            *amended);
      }
    }
  }
  std::printf("wrote %zu source files and %d patches under %s\n",
              tree.size(), patches, dir.c_str());
  std::printf("try: ksplice_tool demo %s/src %s/patches/CVE-2006-2451.patch "
              "xp_2006_2451\n",
              dir.c_str(), dir.c_str());
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: ksplice_tool [-j N] <command> ...\n"
      "  ksplice_tool build   <srcdir>\n"
      "  ksplice_tool create  <srcdir> <patch> <out.kspl>\n"
      "  ksplice_tool inspect <pkg.kspl>\n"
      "  ksplice_tool demo    <srcdir> <patch> [entry [arg]]\n"
      "  ksplice_tool disasm  <srcdir> <unit>\n"
      "  ksplice_tool export-corpus <dir>\n"
      "  -j N   compile with N worker threads (0 = all hardware threads);\n"
      "         output is byte-identical for every N\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (size_t i = 0; i < args.size();) {
    if (args[i] == "-j" && i + 1 < args.size()) {
      g_jobs = std::atoi(args[i + 1].c_str());
      args.erase(args.begin() + static_cast<long>(i),
                 args.begin() + static_cast<long>(i) + 2);
    } else if (ks::StartsWith(args[i], "-j") && args[i].size() > 2) {
      g_jobs = std::atoi(args[i].c_str() + 2);
      args.erase(args.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
  if (args.empty()) {
    return Usage();
  }
  const std::string& cmd = args[0];
  if (cmd == "build" && args.size() == 2) {
    return CmdBuild(args[1]);
  }
  if (cmd == "create" && args.size() == 4) {
    return CmdCreate(args[1], args[2], args[3]);
  }
  if (cmd == "inspect" && args.size() == 2) {
    return CmdInspect(args[1]);
  }
  if (cmd == "demo" && (args.size() == 3 || args.size() == 4 ||
                        args.size() == 5)) {
    std::string entry = args.size() >= 4 ? args[3] : "";
    uint32_t arg = args.size() == 5
                       ? static_cast<uint32_t>(std::atoi(args[4].c_str()))
                       : 0;
    return CmdDemo(args[1], args[2], entry, arg);
  }
  if (cmd == "disasm" && args.size() == 3) {
    return CmdDisasm(args[1], args[2]);
  }
  if (cmd == "export-corpus" && args.size() == 2) {
    return CmdExportCorpus(args[1]);
  }
  return Usage();
}
