// ksplice_tool: command-line front end mirroring the paper's §5 workflow
// over on-disk source trees.
//
//   ksplice_tool build   <srcdir>                       compile & report
//   ksplice_tool create  <srcdir> <patch> <out.kspl>    = ksplice-create
//   ksplice_tool lint    <pkg.kspl>                     static analysis
//   ksplice_tool inspect <pkg.kspl>                     show a package
//   ksplice_tool demo    <srcdir> <patch> [entry [arg]] boot + hot update
//   ksplice_tool apply   <srcdir> <pkg.kspl>...         boot + apply all
//                                                       packages in ONE
//                                                       rendezvous
//   ksplice_tool status  <srcdir> [pkg.kspl...]         applied-update
//                                                       stack table
//   ksplice_tool rollout [cve...]                       wave/canary rollout
//                                                       across a simulated
//                                                       fleet
//   ksplice_tool disasm  <srcdir> <unit>                disassemble a unit
//   ksplice_tool export-corpus <dir>                    write the 64-CVE
//                                                       corpus kernel +
//                                                       patches to disk
//
// Global flags (any subcommand): -j N, --trace[=FILE], --metrics=FILE,
// --faults=PLAN, --help. Some commands take their own flags (create
// --lint=MODE, lint --json[=FILE] --fail-on=SEV). `<command> --help`
// prints that command's own help, including its flags; an unknown flag, a
// bad flag value or a wrong argument count prints the same help on stderr
// and exits 2. Flags and commands are table-driven — adding one means
// adding a table row.
//
// Exit codes: 0 success, 1 the operation itself failed (bad package,
// apply error, lint findings at --fail-on), 2 usage error.
//
// Source trees on disk contain .kc (KC), .kvs (assembly), and .h files;
// paths are taken relative to <srcdir>.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "base/faultinject.h"
#include "base/metrics.h"
#include "base/strings.h"
#include "base/trace.h"
#include "corpus/corpus.h"
#include "fleet/corpus_fleet.h"
#include "fleet/rollout.h"
#include "kanalyze/kanalyze.h"
#include "kcc/compile.h"
#include "kcc/objcache.h"
#include "kdiff/diff.h"
#include "ksplice/core.h"
#include "ksplice/create.h"
#include "ksplice/watchdog.h"
#include "kvm/machine.h"
#include "kvx/isa.h"

namespace {

namespace fs = std::filesystem;

ks::Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return ks::NotFound("cannot read " + path.string());
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return contents;
}

ks::Status WriteFile(const fs::path& path, const std::string& contents) {
  if (path.has_parent_path()) {
    fs::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return ks::Internal("cannot write " + path.string());
  }
  out << contents;
  return ks::OkStatus();
}

// Loads every .kc/.kvs/.h file under `dir` into a SourceTree.
ks::Result<kdiff::SourceTree> LoadTree(const std::string& dir) {
  kdiff::SourceTree tree;
  if (!fs::is_directory(dir)) {
    return ks::NotFound(dir + " is not a directory");
  }
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::string ext = entry.path().extension().string();
    if (ext != ".kc" && ext != ".kvs" && ext != ".h") {
      continue;
    }
    KS_ASSIGN_OR_RETURN(std::string contents, ReadFile(entry.path()));
    tree.Write(fs::relative(entry.path(), dir).generic_string(),
               std::move(contents));
  }
  if (tree.size() == 0) {
    return ks::NotFound("no .kc/.kvs/.h files under " + dir);
  }
  return tree;
}

int Fail(const ks::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Usage error inside a command handler: prints the message and the active
// command's help, and returns the usage exit code (2). Defined after the
// command table.
struct Command;
int UsageError(const std::string& message);

// ------------------------------------------------------- global options

struct GlobalOptions {
  int jobs = 1;          // -j N (0 = one worker per hardware thread)
  bool use_index = true;  // --no-index: linear run-pre matcher fallback
  std::string faults;    // --faults=PLAN (deterministic fault injection)
  bool trace = false;    // --trace[=FILE]
  std::string trace_file;    // empty => summary table on stderr at exit
  std::string metrics_file;  // --metrics=FILE: registry JSON at exit
  std::string build_date;    // --build-date=S: __DATE__ for this build
  std::string build_time;    // --build-time=S: __TIME__ for this build
  bool help = false;
};

GlobalOptions g_options;

// Per-command flag values (only the active command reads its own).
struct CommandOptions {
  std::string lint_mode;          // create --lint=off|warn|error
  bool json = false;              // lint --json[=FILE]
  std::string json_file;
  std::string fail_on = "error";  // lint --fail-on=note|warning|error
  // rollout flags.
  int nodes = 8;                  // --nodes=N fleet size
  double canary = 0.05;           // --canary=F canary fraction
  int wave = 4;                   // --wave=N post-canary wave size
  int max_in_flight = 4;          // --max-in-flight=N per-wave workers
  double abort_frac = 0.0;        // --abort-frac=F wave failure threshold
  int doom = 0;                   // --doom=K canary-fault the first K nodes
  std::string canary_fault = "ksplice.txn.pre_apply=always";
  uint64_t seed = 0;              // --seed=N rollout order + jitter seed
  // apply --watch / --force (the post-apply safety net, watchdog.h).
  uint64_t watch_ticks = 0;       // --watch[=TICKS] post-apply soak
  std::string watch_entry;        // --watch-entry=NAME workload to spawn
  bool force = false;             // --force re-apply a quarantined package
  // rollout --soak flags.
  uint64_t soak_ticks = 0;        // --soak[=TICKS] post-wave node soak
  uint64_t max_node_faults = 0;   // --max-node-faults=N watchdog tolerance
};

CommandOptions g_cmd;

// One flag. `arg` names the value in help text; kNone takes no
// value, kOptional accepts `--flag` or `--flag=V`, kRequired demands one.
struct FlagSpec {
  const char* name;  // with leading dashes, e.g. "--trace"
  enum Arg { kNone, kOptional, kRequired } arg;
  const char* value_name;
  const char* help;
  void (*apply)(const std::string& value);
};

const FlagSpec kFlags[] = {
    {"-j", FlagSpec::kRequired, "N",
     "compile with N worker threads (0 = all hardware threads); output is "
     "byte-identical for every N",
     [](const std::string& v) { g_options.jobs = std::atoi(v.c_str()); }},
    {"--trace", FlagSpec::kOptional, "FILE",
     "record trace spans; write Chrome trace JSON to FILE, or print a "
     "summary table to stderr when no FILE is given",
     [](const std::string& v) {
       g_options.trace = true;
       g_options.trace_file = v;
     }},
    {"--no-index", FlagSpec::kNone, nullptr,
     "disable the run-pre canonical n-gram index; fall back to the linear "
     "per-candidate matcher (same decisions, more bytes walked)",
     [](const std::string&) { g_options.use_index = false; }},
    {"--metrics", FlagSpec::kRequired, "FILE",
     "write the metrics registry (counters/gauges/histograms) as JSON to "
     "FILE at exit",
     [](const std::string& v) { g_options.metrics_file = v; }},
    {"--faults", FlagSpec::kRequired, "PLAN",
     "arm deterministic fault injection before the command runs: "
     "site=mode[@code] clauses joined by commas, modes off, once, always, "
     "nth:N, prob:P (see base/faultinject.h; KSPLICE_FAULTS is the "
     "equivalent environment variable)",
     [](const std::string& v) { g_options.faults = v; }},
    {"--build-date", FlagSpec::kRequired, "STR",
     "value of __DATE__ for every compile this command performs (default "
     "\"Jan  1 2026\"); .rodata.date sections match content-ignoring, so a "
     "package built at one date applies to a kernel built at another",
     [](const std::string& v) { g_options.build_date = v; }},
    {"--build-time", FlagSpec::kRequired, "STR",
     "value of __TIME__ for every compile this command performs (default "
     "\"00:00:00\")",
     [](const std::string& v) { g_options.build_time = v; }},
    {"--help", FlagSpec::kNone, nullptr, "show help and exit",
     [](const std::string&) { g_options.help = true; }},
};

const FlagSpec kCreateFlags[] = {
    {"--lint", FlagSpec::kRequired, "MODE",
     "static-analysis gate: off, warn (default: record findings in the "
     "report) or error (refuse a package with error-severity findings)",
     [](const std::string& v) { g_cmd.lint_mode = v; }},
};

const FlagSpec kApplyFlags[] = {
    {"--watch", FlagSpec::kOptional, "TICKS",
     "post-apply safety net: soak the machine for TICKS (default 200000) "
     "under the health watchdog; a fault attributed to an applied update "
     "auto-reverts it and quarantines the package, and the command exits 1",
     [](const std::string& v) {
       g_cmd.watch_ticks =
           v.empty() ? 200000 : std::strtoull(v.c_str(), nullptr, 10);
     }},
    {"--watch-entry", FlagSpec::kRequired, "NAME",
     "workload entry spawned before the --watch soak so the patched code "
     "actually runs under load (default: soak whatever is runnable; corpus "
     "kernels ship stress_main)",
     [](const std::string& v) { g_cmd.watch_entry = v; }},
    {"--force", FlagSpec::kNone, nullptr,
     "apply a quarantined package anyway, clearing its quarantine entry",
     [](const std::string&) { g_cmd.force = true; }},
};

const FlagSpec kStatusFlags[] = {
    {"--json", FlagSpec::kOptional, "FILE",
     "emit the status report as JSON (to FILE when given, else stdout) "
     "instead of the table",
     [](const std::string& v) {
       g_cmd.json = true;
       g_cmd.json_file = v;
     }},
};

const FlagSpec kLintFlags[] = {
    {"--json", FlagSpec::kOptional, "FILE",
     "emit the lint report as JSON (to FILE when given, else stdout) "
     "instead of text",
     [](const std::string& v) {
       g_cmd.json = true;
       g_cmd.json_file = v;
     }},
    {"--fail-on", FlagSpec::kRequired, "SEV",
     "exit 1 when any finding has severity SEV (note|warning|error) or "
     "higher (default: error)",
     [](const std::string& v) { g_cmd.fail_on = v; }},
};

const FlagSpec kRolloutFlags[] = {
    {"--lint", FlagSpec::kRequired, "MODE",
     "pre-rollout static-analysis gate over every package: off, warn "
     "(print findings, proceed) or error (default: refuse to start the "
     "rollout when any package has error-severity findings)",
     [](const std::string& v) { g_cmd.lint_mode = v; }},
    {"--nodes", FlagSpec::kRequired, "N",
     "fleet size: N machines round-robin across the corpus kernel release "
     "line (default 8)",
     [](const std::string& v) { g_cmd.nodes = std::atoi(v.c_str()); }},
    {"--canary", FlagSpec::kRequired, "F",
     "canary fraction: the first wave holds max(1, ceil(F * nodes)) nodes "
     "(default 0.05)",
     [](const std::string& v) { g_cmd.canary = std::atof(v.c_str()); }},
    {"--wave", FlagSpec::kRequired, "N",
     "post-canary wave size (0 = the rest of the fleet at once; default 4)",
     [](const std::string& v) { g_cmd.wave = std::atoi(v.c_str()); }},
    {"--max-in-flight", FlagSpec::kRequired, "N",
     "concurrent node applies within a wave (default 4)",
     [](const std::string& v) {
       g_cmd.max_in_flight = std::atoi(v.c_str());
     }},
    {"--abort-frac", FlagSpec::kRequired, "F",
     "abort the rollout (and roll every patched node back) when a wave's "
     "failed fraction exceeds F (default 0.0: any failure trips; stale "
     "skips never count)",
     [](const std::string& v) { g_cmd.abort_frac = std::atof(v.c_str()); }},
    {"--doom", FlagSpec::kRequired, "K",
     "canary-failure drill: arm the --canary-fault plan and let it fire on "
     "the first K nodes in rollout order (everyone else applies "
     "fault-suppressed)",
     [](const std::string& v) { g_cmd.doom = std::atoi(v.c_str()); }},
    {"--canary-fault", FlagSpec::kRequired, "PLAN",
     "fault plan armed for the drill (faultinject grammar; default "
     "ksplice.txn.pre_apply=always)",
     [](const std::string& v) { g_cmd.canary_fault = v; }},
    {"--seed", FlagSpec::kRequired, "N",
     "seeds the rollout order shuffle and per-node rendezvous jitter "
     "(0 = visit nodes in id order; default 0)",
     [](const std::string& v) {
       g_cmd.seed = std::strtoull(v.c_str(), nullptr, 10);
     }},
    {"--soak", FlagSpec::kOptional, "TICKS",
     "post-wave soak: each freshly patched node runs the stress workload "
     "under the health watchdog for TICKS (default 200000); an attributed "
     "regression auto-reverts the node, counts toward --abort-frac, and on "
     "an abort the blamed packages are blacklisted fleet-wide",
     [](const std::string& v) {
       g_cmd.soak_ticks =
           v.empty() ? 200000 : std::strtoull(v.c_str(), nullptr, 10);
     }},
    {"--max-node-faults", FlagSpec::kRequired, "N",
     "attributed faults a node tolerates during its soak before its "
     "auto-revert fires (default 0: any attributed fault is a regression)",
     [](const std::string& v) {
       g_cmd.max_node_faults = std::strtoull(v.c_str(), nullptr, 10);
     }},
    {"--json", FlagSpec::kOptional, "FILE",
     "emit the rollout report as JSON (to FILE when given, else stdout) "
     "instead of the table",
     [](const std::string& v) {
       g_cmd.json = true;
       g_cmd.json_file = v;
     }},
};

// Matches `arg` (argv token i) against `spec`, extracting a glued or
// following-token value. Advances *i when the value is the next token.
bool MatchFlag(const FlagSpec& spec, const std::vector<std::string>& args,
               size_t* i, std::string* value, bool* has_value) {
  const std::string& arg = args[*i];
  std::string name = spec.name;
  if (arg == name) {
    if (spec.arg == FlagSpec::kRequired && *i + 1 < args.size()) {
      // Value in the next argument ("-j 4").
      *value = args[++*i];
      *has_value = true;
    }
    return true;
  }
  if (ks::StartsWith(arg, name + "=")) {
    *value = arg.substr(name.size() + 1);
    *has_value = true;
    return true;
  }
  // Glued short-flag value, e.g. -j8.
  if (name.size() == 2 && name[0] == '-' && name[1] != '-' &&
      ks::StartsWith(arg, name) && arg.size() > 2) {
    *value = arg.substr(2);
    *has_value = true;
    return true;
  }
  return false;
}

// Consumes recognized flags from `args` (anywhere on the command line) —
// the global table plus the active command's `extra` table — leaving
// positional arguments in place. Returns an error for a malformed or
// unknown flag-looking argument.
ks::Status ParseFlags(std::vector<std::string>& args, const FlagSpec* extra,
                      size_t num_extra) {
  std::vector<std::string> rest;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.empty() || arg[0] != '-') {
      rest.push_back(arg);
      continue;
    }
    const FlagSpec* matched = nullptr;
    std::string value;
    bool has_value = false;
    for (const FlagSpec& spec : kFlags) {
      if (MatchFlag(spec, args, &i, &value, &has_value)) {
        matched = &spec;
        break;
      }
    }
    for (size_t e = 0; matched == nullptr && e < num_extra; ++e) {
      if (MatchFlag(extra[e], args, &i, &value, &has_value)) {
        matched = &extra[e];
      }
    }
    if (matched == nullptr) {
      return ks::InvalidArgument("unknown flag " + arg);
    }
    if (matched->arg == FlagSpec::kRequired && !has_value) {
      return ks::InvalidArgument(std::string(matched->name) +
                                 " requires a value");
    }
    if (matched->arg == FlagSpec::kNone && has_value) {
      return ks::InvalidArgument(std::string(matched->name) +
                                 " takes no value");
    }
    matched->apply(value);
  }
  args = std::move(rest);
  return ks::OkStatus();
}

// The tool-lifetime object cache shared by every build in this process.
kcc::ObjectCache& ToolCache() {
  static kcc::ObjectCache* cache = new kcc::ObjectCache();
  return *cache;
}

kcc::CompileOptions DefaultBuild() {
  kcc::CompileOptions options;  // monolithic, like a shipped kernel
  options.jobs = g_options.jobs;
  options.cache = &ToolCache();
  if (!g_options.build_date.empty()) {
    options.build_date = g_options.build_date;
  }
  if (!g_options.build_time.empty()) {
    options.build_time = g_options.build_time;
  }
  return options;
}

// ------------------------------------------------------ report printing

// The one place --json[=FILE] output leaves the tool: stdout when no FILE
// was given, else the file. Returns the command exit code (0 unless the
// write failed).
int EmitJson(const std::string& json) {
  if (g_cmd.json_file.empty()) {
    std::printf("%s\n", json.c_str());
    return 0;
  }
  ks::Status written = WriteFile(g_cmd.json_file, json + "\n");
  return written.ok() ? 0 : Fail(written);
}

void PrintCreateReport(const ksplice::CreateReport& report) {
  std::printf("create report for %s:\n", report.id.c_str());
  std::printf(
      "  %u unit(s) rebuilt; cache %llu hit(s) / %llu miss(es); "
      "prepost %.2f ms of %.2f ms total\n",
      report.units_rebuilt,
      static_cast<unsigned long long>(report.cache_hits),
      static_cast<unsigned long long>(report.cache_misses),
      static_cast<double>(report.prepost_wall_ns) / 1e6,
      static_cast<double>(report.create_wall_ns) / 1e6);
  for (const ksplice::UnitReport& unit : report.units) {
    std::printf(
        "  %-24s %4u/%-4u sections changed, text %u -> %u bytes%s%s\n",
        unit.unit.c_str(), unit.sections_changed, unit.sections_compared,
        unit.pre_text_bytes, unit.post_text_bytes,
        unit.pre_cache_hit ? ", pre cached" : "",
        unit.post_cache_hit ? ", post cached" : "");
  }
  for (const ksplice::ChangedFunction& fn : report.changed_functions) {
    std::printf("  %-8s %s:%s (%u -> %u bytes)\n", fn.change.c_str(),
                fn.unit.c_str(), fn.symbol.c_str(), fn.pre_size,
                fn.post_size);
  }
}

void PrintLintReport(const ksplice::LintReport& report) {
  std::printf(
      "lint: %zu finding(s) — %zu error(s), %zu warning(s), %zu note(s); "
      "%llu function(s), %llu call edge(s), %llu block(s)\n",
      report.findings.size(), report.errors(),
      report.CountAtLeast(ksplice::LintSeverity::kWarning) - report.errors(),
      report.findings.size() -
          report.CountAtLeast(ksplice::LintSeverity::kWarning),
      static_cast<unsigned long long>(report.functions_scanned),
      static_cast<unsigned long long>(report.call_edges),
      static_cast<unsigned long long>(report.blocks_analyzed));
  for (const ksplice::LintFinding& finding : report.findings) {
    std::printf("  %s\n", finding.ToString().c_str());
  }
}

void PrintApplyReport(const ksplice::ApplyReport& report) {
  std::printf(
      "applied %s: %zu function(s) spliced in %.3f ms pause "
      "(%d attempt(s), %d quiescence retr%s)\n",
      report.id.c_str(), report.functions.size(),
      static_cast<double>(report.pause_ns) / 1e6, report.attempts,
      report.quiescence_retries,
      report.quiescence_retries == 1 ? "y" : "ies");
  std::printf(
      "  run-pre: %llu candidate(s), %llu byte(s) matched, %llu "
      "relocation inversions\n",
      static_cast<unsigned long long>(report.match.candidates_tried),
      static_cast<unsigned long long>(report.match.run_bytes_matched),
      static_cast<unsigned long long>(report.match.reloc_sites_inverted));
  std::printf(
      "  memory: primary %u byte(s), helper %llu byte(s)%s, trampolines "
      "%u byte(s)\n",
      report.primary_bytes,
      static_cast<unsigned long long>(report.helper_bytes),
      report.helper_retained ? " (retained)" : " (unloaded)",
      report.trampoline_bytes);
  for (const ksplice::SpliceRecord& fn : report.functions) {
    std::printf("  %s:%s @%08x -> %08x (%u -> %u bytes)\n",
                fn.unit.c_str(), fn.symbol.c_str(), fn.orig_address,
                fn.repl_address, fn.code_size, fn.repl_size);
  }
}

void PrintBatchApplyReport(const ksplice::BatchApplyReport& report) {
  std::printf(
      "applied %u package(s) in one rendezvous: %u function(s) spliced in "
      "%.3f ms pause (%d attempt(s), %d quiescence retr%s)\n",
      report.packages, report.functions_spliced,
      static_cast<double>(report.pause_ns) / 1e6, report.attempts,
      report.quiescence_retries,
      report.quiescence_retries == 1 ? "y" : "ies");
  std::printf("  stages:");
  for (const ksplice::StageTiming& stage : report.stages) {
    std::printf(" %s %.3fms", stage.stage.c_str(),
                static_cast<double>(stage.wall_ns) / 1e6);
  }
  std::printf("\n");
  for (const ksplice::ApplyReport& update : report.updates) {
    PrintApplyReport(update);
  }
}

void PrintStatusReport(const ksplice::StatusReport& report) {
  std::printf("%-24s %9s %7s %11s %12s %11s  %s\n", "update", "functions",
              "helper", "helper B", "primary B", "tramp B", "symbols");
  for (const ksplice::UpdateStatusRow& row : report.updates) {
    std::string symbols;
    for (const std::string& symbol : row.symbols) {
      symbols += (symbols.empty() ? "" : " ") + symbol;
    }
    std::printf("%-24s %9u %7s %11u %12u %11u  %s\n", row.id.c_str(),
                row.functions, row.helper_loaded ? "loaded" : "-",
                row.helper_bytes, row.primary_bytes, row.trampoline_bytes,
                symbols.c_str());
  }
  std::printf("%zu update(s) applied; module arena: %u byte(s) in use\n",
              report.updates.size(), report.arena_bytes_in_use);
  if (report.health.faults_total != 0 || report.health.panicked ||
      !report.quarantine.empty()) {
    std::printf(
        "health: %llu fault(s), %llu attributed, %llu extable fixup(s), "
        "%llu dropped log line(s)%s\n",
        static_cast<unsigned long long>(report.health.faults_total),
        static_cast<unsigned long long>(report.health.faults_attributed),
        static_cast<unsigned long long>(report.health.extable_fixups),
        static_cast<unsigned long long>(report.health.dropped_log_lines),
        report.health.panicked ? ", PANICKED" : "");
  }
  for (const ksplice::QuarantineEntry& entry : report.quarantine) {
    std::printf("quarantined: %s (hash %016llx): %s\n", entry.id.c_str(),
                static_cast<unsigned long long>(entry.package_hash),
                entry.evidence.c_str());
  }
}

// Runs the --watch soak over an already-applied core: spawns the
// workload (if any), soaks under the watchdog, and prints what happened.
// Returns 1 when the watchdog auto-reverted anything, else 0.
int RunWatch(ksplice::KspliceCore& core, kvm::Machine* machine) {
  if (!g_cmd.watch_entry.empty()) {
    ks::Result<int> tid = machine->SpawnNamed(g_cmd.watch_entry, 0);
    if (!tid.ok()) {
      return Fail(tid.status());
    }
  }
  ksplice::WatchdogOptions options;
  options.soak_ticks = g_cmd.watch_ticks;
  ksplice::HealthMonitor monitor(&core.manager(), options);
  ksplice::WatchdogReport soak = monitor.Soak();
  std::printf(
      "watchdog: %llu-tick soak, %llu sample(s): %llu fault(s), "
      "%llu attributed, %llu extable fixup(s)%s\n",
      static_cast<unsigned long long>(soak.window_ticks),
      static_cast<unsigned long long>(soak.samples),
      static_cast<unsigned long long>(soak.faults_seen),
      static_cast<unsigned long long>(soak.faults_attributed),
      static_cast<unsigned long long>(soak.extable_fixups),
      soak.panicked ? ", PANICKED" : "");
  for (const std::string& line : soak.unattributed) {
    std::printf("watchdog: unattributed: %s\n", line.c_str());
  }
  for (const ksplice::RevertReport& revert : soak.reverts) {
    std::printf(
        "watchdog: auto-revert %s after %d attempt(s): %s; "
        "quarantined hash %016llx (%s)\n",
        revert.id.c_str(), revert.attempts,
        revert.reverted ? "reverted" : ("FAILED: " + revert.error).c_str(),
        static_cast<unsigned long long>(revert.package_hash),
        revert.trigger.reason.c_str());
  }
  if (!soak.reverts.empty()) {
    PrintStatusReport(core.Status());
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------- build

int CmdBuild(const std::vector<std::string>& args) {
  ks::Result<kdiff::SourceTree> tree = LoadTree(args[0]);
  if (!tree.ok()) {
    return Fail(tree.status());
  }
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(*tree, DefaultBuild());
  if (!objects.ok()) {
    return Fail(objects.status());
  }
  size_t text = 0;
  size_t symbols = 0;
  for (const kelf::ObjectFile& obj : *objects) {
    for (const kelf::Section& section : obj.sections()) {
      if (section.kind == kelf::SectionKind::kText) {
        text += section.bytes.size();
      }
    }
    symbols += obj.symbols().size();
  }
  std::printf("%zu units, %zu text bytes, %zu symbols\n", objects->size(),
              text, symbols);
  return 0;
}

// --------------------------------------------------------------- create

int CmdCreate(const std::vector<std::string>& args) {
  const std::string& out_path = args[2];
  ks::Result<kdiff::SourceTree> tree = LoadTree(args[0]);
  if (!tree.ok()) {
    return Fail(tree.status());
  }
  ks::Result<std::string> patch = ReadFile(args[1]);
  if (!patch.ok()) {
    return Fail(patch.status());
  }
  ksplice::CreateOptions options;
  options.compile = DefaultBuild();
  if (!g_cmd.lint_mode.empty()) {
    if (g_cmd.lint_mode == "off") {
      options.lint = ksplice::LintMode::kOff;
    } else if (g_cmd.lint_mode == "warn") {
      options.lint = ksplice::LintMode::kWarn;
    } else if (g_cmd.lint_mode == "error") {
      options.lint = ksplice::LintMode::kError;
    } else {
      return UsageError("--lint=" + g_cmd.lint_mode +
                        " is not off, warn or error");
    }
  }
  ks::Result<ksplice::CreateResult> created =
      ksplice::CreateUpdate(*tree, *patch, options);
  if (!created.ok()) {
    return Fail(created.status());
  }
  std::vector<uint8_t> bytes = created->package.Serialize();
  ks::Status written = WriteFile(
      out_path, std::string(bytes.begin(), bytes.end()));
  if (!written.ok()) {
    return Fail(written);
  }
  // The typed report rides along as JSON so `inspect` can show how the
  // package came to be.
  (void)WriteFile(out_path + ".report.json",
                  created->report.ToJson() + "\n");
  std::printf("Ksplice update %s written to %s (%zu bytes, %zu targets)\n",
              created->package.id.c_str(), out_path.c_str(), bytes.size(),
              created->package.targets.size());
  PrintCreateReport(created->report);
  if (!created->report.lint.findings.empty()) {
    PrintLintReport(created->report.lint);
  }
  return 0;
}

// ----------------------------------------------------------------- lint

int CmdLint(const std::vector<std::string>& args) {
  ksplice::LintSeverity threshold;
  if (g_cmd.fail_on == "note") {
    threshold = ksplice::LintSeverity::kNote;
  } else if (g_cmd.fail_on == "warning") {
    threshold = ksplice::LintSeverity::kWarning;
  } else if (g_cmd.fail_on == "error") {
    threshold = ksplice::LintSeverity::kError;
  } else {
    return UsageError("--fail-on=" + g_cmd.fail_on +
                      " is not note, warning or error");
  }
  ks::Result<std::string> raw = ReadFile(args[0]);
  if (!raw.ok()) {
    return Fail(raw.status());
  }
  ks::Result<ksplice::UpdatePackage> pkg = ksplice::UpdatePackage::Parse(
      std::vector<uint8_t>(raw->begin(), raw->end()));
  if (!pkg.ok()) {
    return Fail(pkg.status());
  }
  kanalyze::AnalyzeOptions lint_options;
  lint_options.jobs = g_options.jobs;
  lint_options.cache = &ToolCache();
  ks::Result<ksplice::LintReport> report =
      kanalyze::AnalyzePackage(*pkg, lint_options);
  if (!report.ok()) {
    return Fail(report.status());
  }
  if (g_cmd.json) {
    int rc = EmitJson(report->ToJson());
    if (rc != 0) {
      return rc;
    }
  } else {
    std::printf("lint report for %s:\n", report->id.c_str());
    PrintLintReport(*report);
  }
  return report->CountAtLeast(threshold) > 0 ? 1 : 0;
}

// -------------------------------------------------------------- inspect

int CmdInspect(const std::vector<std::string>& args) {
  const std::string& pkg_path = args[0];
  ks::Result<std::string> raw = ReadFile(pkg_path);
  if (!raw.ok()) {
    return Fail(raw.status());
  }
  ks::Result<ksplice::UpdatePackage> pkg = ksplice::UpdatePackage::Parse(
      std::vector<uint8_t>(raw->begin(), raw->end()));
  if (!pkg.ok()) {
    return Fail(pkg.status());
  }
  std::printf("update id : %s\n", pkg->id.c_str());
  std::printf("targets   : %zu\n", pkg->targets.size());
  for (const ksplice::Target& target : pkg->targets) {
    std::printf("  %s  (%s in %s)\n", target.symbol.c_str(),
                target.section.c_str(), target.unit.c_str());
  }
  std::printf("helper    : %zu unit(s)\n", pkg->helper_objects.size());
  for (const kelf::ObjectFile& obj : pkg->helper_objects) {
    std::printf("  %s: %zu sections, %zu symbols\n",
                obj.source_name().c_str(), obj.sections().size(),
                obj.symbols().size());
  }
  std::printf("primary   : %zu unit(s)\n", pkg->primary_objects.size());
  for (const kelf::ObjectFile& obj : pkg->primary_objects) {
    for (const kelf::Section& section : obj.sections()) {
      std::printf("  %s %s (%u bytes, %zu relocs)\n",
                  obj.source_name().c_str(), section.name.c_str(),
                  section.size(), section.relocs.size());
    }
  }
  // The create report, when the package was written by `create`.
  ks::Result<std::string> report = ReadFile(pkg_path + ".report.json");
  if (report.ok()) {
    std::printf("report    : %s", report->c_str());
  }
  return 0;
}

// ----------------------------------------------------------------- demo

int CmdDemo(const std::vector<std::string>& args) {
  std::string entry = args.size() >= 3 ? args[2] : "";
  uint32_t arg = args.size() == 4
                     ? static_cast<uint32_t>(std::atoi(args[3].c_str()))
                     : 0;
  ks::Result<kdiff::SourceTree> tree = LoadTree(args[0]);
  if (!tree.ok()) {
    return Fail(tree.status());
  }
  ks::Result<std::string> patch = ReadFile(args[1]);
  if (!patch.ok()) {
    return Fail(patch.status());
  }
  ks::Result<std::vector<kelf::ObjectFile>> objects =
      kcc::BuildTree(*tree, DefaultBuild());
  if (!objects.ok()) {
    return Fail(objects.status());
  }
  kvm::MachineConfig config;
  ks::Result<std::unique_ptr<kvm::Machine>> machine =
      kvm::Machine::Boot(std::move(objects).value(), config);
  if (!machine.ok()) {
    return Fail(machine.status());
  }
  // Kernels conventionally export a kernel_init entry; run it if present.
  if ((*machine)->GlobalSymbol("kernel_init").ok()) {
    ks::Result<int> init = (*machine)->SpawnNamed("kernel_init", 0);
    if (init.ok()) {
      (void)(*machine)->RunToCompletion();
      std::printf("ran kernel_init\n");
    }
  }
  auto run_entry = [&](const char* when) {
    if (entry.empty()) {
      return;
    }
    ks::Result<int> tid = (*machine)->SpawnNamed(entry, arg);
    if (!tid.ok()) {
      std::printf("%s: cannot run %s: %s\n", when, entry.c_str(),
                  tid.status().ToString().c_str());
      return;
    }
    (void)(*machine)->RunToCompletion();
    std::printf("%s: ran %s(%u); records:", when, entry.c_str(), arg);
    for (const auto& [key, value] : (*machine)->Records()) {
      std::printf(" (%u,%u)", key, value);
    }
    std::printf("\n");
    for (const std::string& line : (*machine)->PrintkLog()) {
      std::printf("%s: printk: %s\n", when, line.c_str());
    }
  };
  run_entry("before");

  ksplice::CreateOptions options;
  options.compile = DefaultBuild();
  ks::Result<ksplice::CreateResult> created =
      ksplice::CreateUpdate(*tree, *patch, options);
  if (!created.ok()) {
    return Fail(created.status());
  }
  PrintCreateReport(created->report);
  ksplice::KspliceCore core(machine->get());
  ksplice::ApplyOptions apply_options;
  apply_options.use_index = g_options.use_index;
  ks::Result<ksplice::ApplyReport> applied =
      core.Apply(created->package, apply_options);
  if (!applied.ok()) {
    return Fail(applied.status());
  }
  PrintApplyReport(*applied);
  run_entry("after");
  return 0;
}

// -------------------------------------------------------- apply / status

ks::Result<std::unique_ptr<kvm::Machine>> BootDir(const std::string& dir) {
  KS_ASSIGN_OR_RETURN(kdiff::SourceTree tree, LoadTree(dir));
  KS_ASSIGN_OR_RETURN(std::vector<kelf::ObjectFile> objects,
                      kcc::BuildTree(tree, DefaultBuild()));
  kvm::MachineConfig config;
  return kvm::Machine::Boot(std::move(objects), config);
}

ks::Result<std::vector<ksplice::UpdatePackage>> LoadPackages(
    const std::vector<std::string>& paths) {
  std::vector<ksplice::UpdatePackage> packages;
  for (const std::string& path : paths) {
    KS_ASSIGN_OR_RETURN(std::string raw, ReadFile(path));
    ks::Result<ksplice::UpdatePackage> package = ksplice::UpdatePackage::Parse(
        std::vector<uint8_t>(raw.begin(), raw.end()));
    if (!package.ok()) {
      ks::Status status = package.status();
      return status.WithContext("parsing " + path);
    }
    packages.push_back(std::move(package).value());
  }
  return packages;
}

// Boots args[0] and applies every remaining argument as a package — all
// of them in one transaction with a single stop_machine rendezvous.
int CmdApply(const std::vector<std::string>& args) {
  ks::Result<std::unique_ptr<kvm::Machine>> machine = BootDir(args[0]);
  if (!machine.ok()) {
    return Fail(machine.status());
  }
  ks::Result<std::vector<ksplice::UpdatePackage>> packages = LoadPackages(
      std::vector<std::string>(args.begin() + 1, args.end()));
  if (!packages.ok()) {
    return Fail(packages.status());
  }
  ksplice::KspliceCore core(machine->get());
  ksplice::ApplyOptions options;
  options.jobs = g_options.jobs;
  options.use_index = g_options.use_index;
  options.force = g_cmd.force;
  if (packages->size() == 1) {
    ks::Result<ksplice::ApplyReport> applied =
        core.Apply(packages->front(), options);
    if (!applied.ok()) {
      return Fail(applied.status());
    }
    PrintApplyReport(*applied);
  } else {
    ks::Result<ksplice::BatchApplyReport> applied =
        core.ApplyAll(*packages, options);
    if (!applied.ok()) {
      return Fail(applied.status());
    }
    PrintBatchApplyReport(*applied);
  }
  PrintStatusReport(core.Status());
  if (g_cmd.watch_ticks != 0) {
    return RunWatch(core, machine->get());
  }
  return 0;
}

// Boots args[0], applies any packages given after it, and prints the
// applied-update stack (the live analogue of Ksplice's /sys status).
int CmdStatus(const std::vector<std::string>& args) {
  ks::Result<std::unique_ptr<kvm::Machine>> machine = BootDir(args[0]);
  if (!machine.ok()) {
    return Fail(machine.status());
  }
  ks::Result<std::vector<ksplice::UpdatePackage>> packages = LoadPackages(
      std::vector<std::string>(args.begin() + 1, args.end()));
  if (!packages.ok()) {
    return Fail(packages.status());
  }
  ksplice::KspliceCore core(machine->get());
  if (!packages->empty()) {
    ksplice::ApplyOptions options;
    options.jobs = g_options.jobs;
    options.use_index = g_options.use_index;
    ks::Result<ksplice::BatchApplyReport> applied =
        core.ApplyAll(*packages, options);
    if (!applied.ok()) {
      return Fail(applied.status());
    }
  }
  ksplice::StatusReport report = core.Status();
  // An applied update with faults attributed to it is a live regression:
  // report it and exit 1 so scripts can gate on machine health.
  int health_rc = 0;
  for (const ksplice::UpdateStatusRow& row : report.updates) {
    if (row.attributed_faults > 0) {
      health_rc = 1;
    }
  }
  if (g_cmd.json) {
    int rc = EmitJson(report.ToJson());
    return rc != 0 ? rc : health_rc;
  }
  PrintStatusReport(report);
  return health_rc;
}

// -------------------------------------------------------------- rollout

// Builds one package per CVE argument from the v1 corpus source (the
// distro's single package for every installed kernel release).
ks::Result<std::vector<ksplice::UpdatePackage>> BuildCorpusPackages(
    const std::vector<std::string>& cves) {
  std::vector<ksplice::UpdatePackage> packages;
  for (const std::string& cve : cves) {
    const corpus::Vulnerability* vuln = nullptr;
    for (const corpus::Vulnerability& candidate :
         corpus::Vulnerabilities()) {
      if (candidate.cve == cve) {
        vuln = &candidate;
      }
    }
    if (vuln == nullptr) {
      return ks::NotFound("no corpus entry for " + cve);
    }
    KS_ASSIGN_OR_RETURN(std::string patch, corpus::PatchFor(*vuln));
    ksplice::CreateOptions options;
    options.compile = corpus::RunBuildOptions();
    options.compile.jobs = g_options.jobs;
    options.compile.cache = &ToolCache();
    options.id = vuln->cve;
    KS_ASSIGN_OR_RETURN(
        ksplice::CreateResult created,
        ksplice::CreateUpdate(corpus::KernelSource(), patch, options));
    packages.push_back(std::move(created.package));
  }
  return packages;
}

void PrintRolloutReport(const ksplice::RolloutReport& report) {
  std::printf("rollout %s over %u node(s): %s\n", report.id.c_str(),
              report.fleet_size,
              report.aborted ? "ABORTED (rolled back)" : "completed");
  std::printf("%5s %7s %6s %8s %8s %6s %7s %8s %9s\n", "wave", "canary",
              "nodes", "patched", "already", "stale", "failed", "reverted",
              "pause ms");
  for (const ksplice::RolloutWaveReport& wave : report.wave_reports) {
    std::printf("%5d %7s %6u %8u %8u %6u %7u %8u %9.3f%s\n", wave.wave,
                wave.canary ? "yes" : "-", wave.nodes, wave.patched,
                wave.already_applied, wave.skipped_stale, wave.failed,
                wave.auto_reverted,
                static_cast<double>(wave.max_pause_ns) / 1e6,
                wave.tripped ? "  << tripped" : "");
  }
  std::printf(
      "totals: %u patched, %u already applied, %u skipped stale, "
      "%u failed, %u auto-reverted, %u rolled back, %u not attempted\n",
      report.patched, report.already_applied, report.skipped_stale,
      report.failed, report.auto_reverted, report.rolled_back,
      report.not_attempted);
  for (const std::string& tag : report.blacklisted) {
    std::printf("blacklisted: %s\n", tag.c_str());
  }
  std::printf(
      "%.1f machines/sec; pause p50 %.3f ms, p99 %.3f ms, max %.3f ms\n",
      report.nodes_per_sec,
      static_cast<double>(report.pause_p50_ns) / 1e6,
      static_cast<double>(report.pause_p99_ns) / 1e6,
      static_cast<double>(report.pause_max_ns) / 1e6);
}

// Rolls package(s) — corpus CVEs and/or on-disk .kspl files — across a
// mixed-release fleet, after a static-analysis gate over every package.
// Exits 1 when the gate refuses, the rollout aborted, or any node failed.
int CmdRollout(const std::vector<std::string>& args) {
  if (g_cmd.nodes <= 0) {
    return UsageError("--nodes must be positive");
  }
  if (g_cmd.doom < 0 || g_cmd.doom > g_cmd.nodes) {
    return UsageError("--doom must be between 0 and --nodes");
  }
  std::string lint_mode = g_cmd.lint_mode.empty() ? "error" : g_cmd.lint_mode;
  if (lint_mode != "off" && lint_mode != "warn" && lint_mode != "error") {
    return UsageError("--lint=" + lint_mode + " is not off, warn or error");
  }
  std::vector<std::string> cves;
  std::vector<std::string> package_paths;
  for (const std::string& arg : args) {
    (ks::EndsWith(arg, ".kspl") ? package_paths : cves).push_back(arg);
  }
  if (cves.empty() && package_paths.empty()) {
    // Applies cleanly on every corpus release (mm/vmsplice drifted in
    // none of them), so the default rollout exercises the whole fleet.
    cves.push_back("CVE-2008-0600");
  }
  ks::Result<std::vector<ksplice::UpdatePackage>> packages =
      BuildCorpusPackages(cves);
  if (!packages.ok()) {
    return Fail(packages.status());
  }
  ks::Result<std::vector<ksplice::UpdatePackage>> loaded =
      LoadPackages(package_paths);
  if (!loaded.ok()) {
    return Fail(loaded.status());
  }
  for (ksplice::UpdatePackage& pkg : *loaded) {
    packages->push_back(std::move(pkg));
  }

  // The gate: a package that static analysis can condemn must be refused
  // before any node is touched.
  if (lint_mode != "off") {
    kanalyze::AnalyzeOptions lint_options;
    lint_options.jobs = g_options.jobs;
    lint_options.cache = &ToolCache();
    for (const ksplice::UpdatePackage& pkg : *packages) {
      ks::Result<ksplice::LintReport> lint =
          kanalyze::AnalyzePackage(pkg, lint_options);
      if (!lint.ok()) {
        return Fail(lint.status());
      }
      if (lint->errors() == 0) {
        continue;
      }
      std::fprintf(stderr,
                   "rollout: package %s has %zu error-severity lint "
                   "finding(s):\n",
                   lint->id.c_str(), lint->errors());
      for (const ksplice::LintFinding& finding : lint->findings) {
        if (finding.severity == ksplice::LintSeverity::kError) {
          std::fprintf(stderr, "  %s\n", finding.ToString().c_str());
        }
      }
      if (lint_mode == "error") {
        std::fprintf(stderr,
                     "rollout refused before touching any node "
                     "(--lint=warn to override)\n");
        return 1;
      }
    }
  }

  fleet::CorpusFleetOptions fleet_options;
  fleet_options.nodes = static_cast<size_t>(g_cmd.nodes);
  fleet_options.doomed = static_cast<size_t>(g_cmd.doom);
  fleet_options.seed = g_cmd.seed;
  ks::Result<fleet::Fleet> machines = fleet::MakeCorpusFleet(fleet_options);
  if (!machines.ok()) {
    return Fail(machines.status());
  }

  fleet::RolloutPlan plan;
  plan.canary_fraction = g_cmd.canary;
  plan.wave_size = static_cast<uint32_t>(g_cmd.wave);
  plan.max_in_flight = g_cmd.max_in_flight;
  plan.abort_failure_fraction = g_cmd.abort_frac;
  plan.seed = g_cmd.seed;
  if (g_cmd.doom > 0) {
    plan.canary_fault_plan = g_cmd.canary_fault;
  }
  plan.soak_ticks = g_cmd.soak_ticks;
  plan.max_faults_per_node = g_cmd.max_node_faults;
  if (plan.soak_ticks != 0) {
    plan.soak_entry = "stress_main";  // every corpus kernel ships it
  }
  plan.apply.use_index = g_options.use_index;
  ks::Result<ksplice::RolloutReport> report =
      fleet::RunRollout(*machines, *packages, plan);
  if (!report.ok()) {
    return Fail(report.status());
  }

  if (g_cmd.json) {
    int rc = EmitJson(report->ToJson());
    if (rc != 0) {
      return rc;
    }
  } else {
    PrintRolloutReport(*report);
  }
  return (report->aborted || report->failed > 0 ||
          report->auto_reverted > 0)
             ? 1
             : 0;
}

// --------------------------------------------------------------- disasm

int CmdDisasm(const std::vector<std::string>& args) {
  ks::Result<kdiff::SourceTree> tree = LoadTree(args[0]);
  if (!tree.ok()) {
    return Fail(tree.status());
  }
  kcc::CompileOptions options;
  options.function_sections = true;
  options.data_sections = true;
  ks::Result<kelf::ObjectFile> obj =
      kcc::CompileUnit(*tree, args[1], options);
  if (!obj.ok()) {
    return Fail(obj.status());
  }
  for (const kelf::Section& section : obj->sections()) {
    if (section.kind != kelf::SectionKind::kText) {
      continue;
    }
    std::printf("%s:\n%s", section.name.c_str(),
                kvx::Disassemble(section.bytes, 0).c_str());
    for (const kelf::Relocation& rel : section.relocs) {
      std::printf("  reloc +0x%04x %s %s%+d\n", rel.offset,
                  rel.type == kelf::RelocType::kAbs32 ? "abs32" : "pcrel32",
                  obj->symbols()[static_cast<size_t>(rel.symbol)].name.c_str(),
                  rel.addend);
    }
  }
  return 0;
}

// -------------------------------------------------------- export-corpus

int CmdExportCorpus(const std::vector<std::string>& args) {
  const std::string& dir = args[0];
  const kdiff::SourceTree& tree = corpus::KernelSource();
  for (const std::string& path : tree.Paths()) {
    ks::Status written =
        WriteFile(fs::path(dir) / "src" / path, *tree.Read(path));
    if (!written.ok()) {
      return Fail(written);
    }
  }
  int patches = 0;
  for (const corpus::Vulnerability& vuln : corpus::Vulnerabilities()) {
    ks::Result<std::string> patch = corpus::PatchFor(vuln);
    if (!patch.ok()) {
      return Fail(patch.status());
    }
    ks::Status written = WriteFile(
        fs::path(dir) / "patches" / (vuln.cve + ".patch"), *patch);
    if (!written.ok()) {
      return Fail(written);
    }
    ++patches;
    if (vuln.needs_custom_code) {
      ks::Result<std::string> amended = corpus::AmendedPatchFor(vuln);
      if (amended.ok()) {
        (void)WriteFile(
            fs::path(dir) / "patches" / (vuln.cve + ".custom.patch"),
            *amended);
      }
    }
  }
  std::printf("wrote %zu source files and %d patches under %s\n",
              tree.size(), patches, dir.c_str());
  std::printf("try: ksplice_tool demo %s/src %s/patches/CVE-2006-2451.patch "
              "xp_2006_2451\n",
              dir.c_str(), dir.c_str());
  return 0;
}

// -------------------------------------------------------- command table

struct Command {
  const char* name;
  const char* synopsis;   // positional arguments
  const char* summary;    // one line for the global help
  size_t min_args;
  size_t max_args;
  int (*handler)(const std::vector<std::string>& args);
  const char* help;       // extra detail for `<command> --help`
  // Command-specific flags, listed in the command's help and accepted
  // only when this command runs.
  const FlagSpec* flags = nullptr;
  size_t num_flags = 0;
};

const Command kCommands[] = {
    {"build", "<srcdir>", "compile a source tree and report its size", 1, 1,
     CmdBuild,
     "Compiles every .kc/.kvs unit under <srcdir> (monolithic, like a\n"
     "shipped kernel) and prints unit/text/symbol totals."},
    {"create", "<srcdir> <patch> <out.kspl>",
     "build an update package from a unified diff (ksplice-create)", 3, 3,
     CmdCreate,
     "Runs the pre-post double build and section diff, extracts changed\n"
     "code, and writes the package to <out.kspl> plus a typed\n"
     "<out.kspl>.report.json (per-unit compile/cache/diff statistics, the\n"
     "changed-function list and the kanalyze lint findings).",
     kCreateFlags, std::size(kCreateFlags)},
    {"lint", "<pkg.kspl>",
     "statically analyze a package for patch-safety hazards", 1, 1, CmdLint,
     "Runs the kanalyze passes — call graph, CFG/bytecode verification,\n"
     "pre-vs-post ABI/layout diff, quiescence risk — over <pkg.kspl> and\n"
     "prints the typed findings (rule id KSAxxx, severity, location, fix\n"
     "hint). Exits 1 when a finding meets --fail-on (default: error).",
     kLintFlags, std::size(kLintFlags)},
    {"inspect", "<pkg.kspl>", "show a package's targets and objects", 1, 1,
     CmdInspect,
     "Parses <pkg.kspl> and lists targets, helper and primary objects.\n"
     "When <pkg.kspl>.report.json exists (written by create), prints the\n"
     "create report too."},
    {"demo", "<srcdir> <patch> [entry [arg]]",
     "boot the tree, hot-apply the patch, compare behaviour", 2, 4, CmdDemo,
     "Boots the tree in the simulated kernel, optionally runs [entry]\n"
     "before and after, creates the update from <patch> and applies it\n"
     "live, printing the typed create and apply reports."},
    {"apply", "<srcdir> <pkg.kspl>...",
     "boot the tree and apply package(s) in one rendezvous", 2, 64,
     CmdApply,
     "Boots <srcdir> in the simulated kernel and applies every package in\n"
     "ONE transaction: a single combined quiescence check and stop_machine\n"
     "pause covers all of them, and any failure rolls the whole batch\n"
     "back. Prints the typed apply report(s) and the resulting update\n"
     "stack. Packages must target disjoint functions; stacked updates to\n"
     "the same function apply in separate transactions. --watch soaks the\n"
     "machine under the health watchdog afterwards: an attributed fault\n"
     "auto-reverts the update, quarantines the package (a re-apply then\n"
     "needs --force), and exits 1.",
     kApplyFlags, std::size(kApplyFlags)},
    {"status", "<srcdir> [pkg.kspl...]",
     "show the applied-update stack after applying package(s)", 1, 64,
     CmdStatus,
     "Boots <srcdir>, applies any packages given (one transaction, like\n"
     "apply), and prints one row per applied update: functions spliced,\n"
     "helper retention, module/trampoline bytes and patched symbols —\n"
     "the live analogue of Ksplice's /sys update status. The report also\n"
     "carries machine health (fault/fixup counts, per-update attributed\n"
     "faults) and the package quarantine; any update with attributed\n"
     "faults makes the command exit 1.",
     kStatusFlags, std::size(kStatusFlags)},
    {"rollout", "[cve|pkg.kspl ...]",
     "wave/canary rollout of update package(s) across a fleet", 0, 8,
     CmdRollout,
     "Boots --nodes machines spread round-robin across the corpus kernel\n"
     "release line, builds one package per CVE from the v1 source (default\n"
     "CVE-2008-0600) and loads any .kspl arguments from disk, then rolls\n"
     "the batch out canary wave first. Every package passes the --lint\n"
     "static-analysis gate before any node is touched: error-severity\n"
     "findings refuse the rollout (default --lint=error). A node on a\n"
     "release whose development touched the patched unit is skipped by\n"
     "run-pre matching (counted stale, not failed). When a wave's failed\n"
     "fraction exceeds --abort-frac the rollout aborts and every patched\n"
     "node is rolled back. --doom=K drills that path: the first K nodes in\n"
     "rollout order apply with the --canary-fault plan live. --soak runs\n"
     "each patched node under the health watchdog with the stress workload:\n"
     "attributed regressions auto-revert the node, count toward\n"
     "--abort-frac, and an abort blacklists the blamed packages. Exits 1\n"
     "when the gate refused, the rollout aborted, any node failed, or any\n"
     "node auto-reverted.",
     kRolloutFlags, std::size(kRolloutFlags)},
    {"disasm", "<srcdir> <unit>", "disassemble one compilation unit", 2, 2,
     CmdDisasm,
     "Compiles <unit> with -ffunction-sections and prints each text\n"
     "section's disassembly and relocations."},
    {"export-corpus", "<dir>",
     "write the 64-CVE corpus kernel + patches to disk", 1, 1,
     CmdExportCorpus,
     "Writes the corpus kernel source under <dir>/src and every CVE's fix\n"
     "(and amended Table-1 patch) under <dir>/patches."},
};

void PrintGlobalHelp() {
  std::fprintf(stderr, "usage: ksplice_tool [flags] <command> ...\n\n");
  std::fprintf(stderr, "commands:\n");
  for (const Command& cmd : kCommands) {
    std::fprintf(stderr, "  %-13s %-34s %s\n", cmd.name, cmd.synopsis,
                 cmd.summary);
  }
  std::fprintf(stderr, "\nflags:\n");
  for (const FlagSpec& spec : kFlags) {
    std::string name = spec.name;
    if (spec.arg == FlagSpec::kRequired) {
      name += std::string(" ") + spec.value_name;
    } else if (spec.arg == FlagSpec::kOptional) {
      name += std::string("[=") + spec.value_name + "]";
    }
    std::fprintf(stderr, "  %-18s %s\n", name.c_str(), spec.help);
  }
  std::fprintf(stderr,
               "\n`ksplice_tool <command> --help` describes one command.\n");
}

const Command* g_active_command = nullptr;

void PrintCommandHelp(const Command& cmd);

int UsageError(const std::string& message) {
  std::fprintf(stderr, "error: %s\n\n", message.c_str());
  if (g_active_command != nullptr) {
    PrintCommandHelp(*g_active_command);
  }
  return 2;
}

void PrintCommandHelp(const Command& cmd) {
  std::fprintf(stderr, "usage: ksplice_tool [flags] %s %s\n\n%s\n%s\n",
               cmd.name, cmd.synopsis, cmd.summary, cmd.help);
  if (cmd.num_flags > 0) {
    std::fprintf(stderr, "\nflags (in addition to the global ones):\n");
    for (size_t i = 0; i < cmd.num_flags; ++i) {
      const FlagSpec& spec = cmd.flags[i];
      std::string name = spec.name;
      if (spec.arg == FlagSpec::kRequired) {
        name += std::string("=") + spec.value_name;
      } else if (spec.arg == FlagSpec::kOptional) {
        name += std::string("[=") + spec.value_name + "]";
      }
      std::fprintf(stderr, "  %-18s %s\n", name.c_str(), spec.help);
    }
  }
}

// Finds the command named by the first positional-looking argument
// without consuming anything: flag tokens are skipped, as is the value
// token of a known value-in-next-argument flag. Returns nullptr when no
// argument names a command; *name gets the candidate (empty when the
// command line has no positional arguments at all).
const Command* LocateCommand(const std::vector<std::string>& args,
                             std::string* name) {
  name->clear();
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!arg.empty() && arg[0] == '-') {
      // Skip a known flag's detached value so `-j 4 create ...` does not
      // mistake "4" for the command.
      auto skips_next = [&](const FlagSpec& spec) {
        return spec.arg == FlagSpec::kRequired && arg == spec.name;
      };
      bool skip = false;
      for (const FlagSpec& spec : kFlags) {
        skip = skip || skips_next(spec);
      }
      for (const Command& cmd : kCommands) {
        for (size_t f = 0; f < cmd.num_flags; ++f) {
          skip = skip || skips_next(cmd.flags[f]);
        }
      }
      if (skip) {
        ++i;
      }
      continue;
    }
    *name = arg;
    for (const Command& cmd : kCommands) {
      if (arg == cmd.name) {
        return &cmd;
      }
    }
    return nullptr;
  }
  return nullptr;
}

// Trace/metrics emission at exit, whatever the command did.
int Finish(int code) {
  if (g_options.trace) {
    if (g_options.trace_file.empty()) {
      std::fprintf(stderr, "%s", ks::TraceSummary().c_str());
    } else {
      ks::Status written = ks::WriteTraceJson(g_options.trace_file);
      if (!written.ok()) {
        std::fprintf(stderr, "trace write failed: %s\n",
                     written.ToString().c_str());
      }
    }
  }
  if (!g_options.metrics_file.empty()) {
    ks::Status written = ks::Metrics().WriteJson(g_options.metrics_file);
    if (!written.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   written.ToString().c_str());
    }
  }
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  // The command is located before flags are parsed so that a flag error
  // can print that command's own help (and accept its own flags).
  std::string command_name;
  const Command* command = LocateCommand(args, &command_name);
  if (command == nullptr && !command_name.empty()) {
    std::fprintf(stderr, "error: unknown command '%s'\n\n",
                 command_name.c_str());
    PrintGlobalHelp();
    return 2;
  }
  ks::Status parsed = ParseFlags(
      args, command != nullptr ? command->flags : nullptr,
      command != nullptr ? command->num_flags : 0);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n\n", parsed.ToString().c_str());
    if (command != nullptr) {
      PrintCommandHelp(*command);
    } else {
      PrintGlobalHelp();
    }
    return 2;
  }
  if (command == nullptr) {
    PrintGlobalHelp();
    return g_options.help ? 0 : 2;
  }
  if (g_options.help) {
    PrintCommandHelp(*command);
    return 0;
  }
  std::vector<std::string> positional(args.begin() + 1, args.end());
  if (positional.size() < command->min_args ||
      positional.size() > command->max_args) {
    std::fprintf(stderr,
                 "error: %s expects %zu..%zu argument(s), got %zu\n\n",
                 command->name, command->min_args, command->max_args,
                 positional.size());
    PrintCommandHelp(*command);
    return 2;
  }
  if (!g_options.faults.empty()) {
    ks::Status armed = ks::Faults().Configure(g_options.faults);
    if (!armed.ok()) {
      std::fprintf(stderr, "error: %s\n\n", armed.ToString().c_str());
      PrintGlobalHelp();
      return 2;
    }
  }
  if (g_options.trace) {
    ks::SetTraceEnabled(true);
  }
  g_active_command = command;
  return Finish(command->handler(positional));
}
